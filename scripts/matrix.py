"""Run the full Figure 6/7/8 matrix: all designs x all workloads."""

import time

import repro
from repro.analysis.stats import geomean


def main():
    t0 = time.time()
    rows = {}
    for name in repro.ALL_WORKLOADS:
        wl = repro.make_workload(name)
        res = repro.compare_designs(repro.ALL_DESIGNS, wl)
        base = res["B"]
        rows[name] = res
        line = " ".join(
            f"{d}:{r.speedup_over(base):.2f}" for d, r in res.items()
        )
        eline = " ".join(
            f"{d}:{r.energy_ratio_over(base):.2f}" for d, r in res.items()
        )
        hline = " ".join(
            f"{d}:{r.hops_ratio_over(base):.2f}" for d, r in res.items()
        )
        print(f"{name:7} spd  {line}", flush=True)
        print(f"{name:7} eng  {eline}", flush=True)
        print(f"{name:7} hops {hline}", flush=True)

    print("\ngeomean speedups:")
    for d in repro.ALL_DESIGNS:
        if d == "B":
            continue
        g = geomean([rows[w][d].speedup_over(rows[w]["B"])
                     for w in repro.ALL_WORKLOADS])
        print(f"  {d}: {g:.3f}")
    print(f"\ntotal {time.time()-t0:.0f}s")


if __name__ == "__main__":
    main()
