"""Run the full Figure 6/7/8 matrix: all designs x all workloads.

The grid itself is no longer defined here — it is the committed
``campaigns/full_matrix.json`` campaign, expanded and executed through
the declarative campaign subsystem (same run keys, same cache entries
as ``repro sweep`` and any ``--server`` submission of the same file).
A second invocation with unchanged configs replays from
``.repro_cache/`` in well under a second.  ``--no-cache`` forces live
runs; ``--jobs 1`` reproduces the old serial path (bit-identical
results either way).
"""

import argparse
import time
from pathlib import Path

import repro
from repro.analysis.stats import geomean
from repro.campaign import load_campaign, run_campaign

CAMPAIGN_FILE = Path(__file__).resolve().parent.parent / "campaigns" \
    / "full_matrix.json"


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("-j", "--jobs", type=int, default=None,
                    help="worker processes (default: all cores)")
    ap.add_argument("--no-cache", action="store_true",
                    help="bypass the on-disk result cache")
    ap.add_argument("-q", "--quiet", action="store_true",
                    help="suppress per-point progress lines")
    args = ap.parse_args(argv)

    t0 = time.time()
    campaign = load_campaign(CAMPAIGN_FILE)
    report = run_campaign(
        campaign, campaign.expand(),
        cache=False if args.no_cache else "default",
        jobs=args.jobs,
        progress=None if args.quiet else (lambda m: print(m, flush=True)),
    )
    rows = report.results()
    for o in report.failures:
        print(f"FAILED {o.point.label}: "
              f"{o.error.strip().splitlines()[-1]}")

    for name in repro.ALL_WORKLOADS:
        res = rows.get(name, {})
        if "B" not in res:
            continue
        base = res["B"]
        line = " ".join(
            f"{d}:{r.speedup_over(base):.2f}" for d, r in res.items()
        )
        eline = " ".join(
            f"{d}:{r.energy_ratio_over(base):.2f}" for d, r in res.items()
        )
        hline = " ".join(
            f"{d}:{r.hops_ratio_over(base):.2f}" for d, r in res.items()
        )
        print(f"{name:7} spd  {line}", flush=True)
        print(f"{name:7} eng  {eline}", flush=True)
        print(f"{name:7} hops {hline}", flush=True)

    complete = [w for w in repro.ALL_WORKLOADS
                if all(d in rows.get(w, {}) for d in repro.ALL_DESIGNS)]
    if complete:
        print("\ngeomean speedups:")
        for d in repro.ALL_DESIGNS:
            if d == "B":
                continue
            g = geomean([rows[w][d].speedup_over(rows[w]["B"])
                         for w in complete])
            print(f"  {d}: {g:.3f}")
    print(f"\n{report.summary()}")
    print(f"total {time.time()-t0:.1f}s")
    return 1 if report.failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
