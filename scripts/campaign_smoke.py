"""CI gate for the campaign subsystem: cold then warm, warm all hits.

Runs the tiny committed ``campaigns/smoke.json`` campaign twice
against a throwaway cache root:

* the **cold** pass must simulate every point (``source == "run"``),
* the **warm** pass must answer every point from the cache
  (``source == "cache"`` — zero new executions),

and both passes must agree on every run key.  This is the end-to-end
half of the ``campaign-smoke`` CI job; the other half is
``repro campaign validate campaigns/*.json``.
"""

import os
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-campaign-smoke-") \
            as tmp:
        os.environ["REPRO_CACHE_DIR"] = tmp
        os.environ["REPRO_NO_HISTORY"] = "1"

        from repro.campaign import load_campaign, run_campaign
        from repro.sweep.runtime import WorkerRuntime

        campaign = load_campaign(ROOT / "campaigns" / "smoke.json")
        expansion = campaign.expand()
        print(f"campaign {campaign.name!r}: {len(expansion.points)} "
              f"point(s), fingerprint {expansion.fingerprint}")

        # One injected runtime across both passes: multi-campaign
        # drivers pay pool/memo startup once (docs/architecture.md §15).
        with WorkerRuntime(jobs=1) as rt:
            cold = run_campaign(campaign, expansion, jobs=1, runtime=rt)
            print(f"cold: {cold.summary()}")
            bad = [o for o in cold.outcomes if o.source not in ("run",
                                                                "retry")]
            if cold.failures or bad:
                print("error: cold pass should simulate every point",
                      file=sys.stderr)
                return 1

            warm = run_campaign(campaign, campaign.expand(), jobs=1,
                                runtime=rt)
        print(f"warm: {warm.summary()}")
        misses = [o for o in warm.outcomes if o.source != "cache"]
        if warm.failures or misses:
            print(f"error: warm pass had {len(misses)} non-cache "
                  f"point(s) — the campaign path is not key-stable",
                  file=sys.stderr)
            return 1

        cold_keys = [o.key for o in cold.outcomes]
        warm_keys = [o.key for o in warm.outcomes]
        if cold_keys != warm_keys or None in cold_keys:
            print("error: cold/warm run keys disagree", file=sys.stderr)
            return 1
        print(f"ok: {len(warm_keys)} point(s) replayed warm from the "
              f"cache with zero new executions")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
