"""CI gate for the insight plane: classify + scrape, end to end.

Runs the tiny committed ``campaigns/smoke.json`` campaign against a
throwaway cache root, builds the bottleneck-classification report
over its ``report.json``, and asserts:

* every campaign point classifies into a known bottleneck class with
  **non-zero confidence** (a zero-margin classification means the
  occupancy model degenerated);
* the report JSON is **byte-identical** across two builds (the
  determinism contract of ``docs/insight.md``);

then starts a live experiment server on the warmed cache and asserts
``GET /v1/metrics`` scrapes cleanly: the Prometheus content type, a
healthy number of metric families, and the family names the
dashboards key on.  This is the ``report-smoke`` CI job.
"""

import os
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

REQUIRED_FAMILIES = (
    "repro_server_requests_total",
    "repro_server_ops_total",
    "repro_server_jobs",
    "repro_server_jobs_in_flight",
    "repro_cache_ops_total",
    "repro_cache_entries",
    "repro_history_records",
    "repro_runtime_memo_events_total",
)
MIN_FAMILIES = 12


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-report-smoke-") \
            as tmp:
        cache_root = str(Path(tmp) / "cache")
        os.environ["REPRO_CACHE_DIR"] = cache_root
        os.environ["REPRO_NO_HISTORY"] = "1"

        from repro.campaign import load_campaign, run_campaign
        from repro.insight import build_report
        from repro.insight.attribution import BOTTLENECK_CLASSES
        from repro.insight.metrics_plane import PROMETHEUS_CONTENT_TYPE
        from repro.service.client import ServiceClient
        from repro.service.server import run_in_thread
        from repro.sweep.cache import default_cache

        campaign = load_campaign(ROOT / "campaigns" / "smoke.json")
        expansion = campaign.expand()
        outcome = run_campaign(campaign, expansion, jobs=1)
        print(f"campaign: {outcome.summary()}")
        if outcome.failures:
            print("error: smoke campaign had failing points",
                  file=sys.stderr)
            return 1
        report_path = outcome.write(Path(tmp) / "artifacts")
        print(f"wrote {report_path}")

        # -- classification: every point, a real class, a real margin
        insight = build_report(report_path, cache=default_cache())
        if len(insight.points) != len(expansion.points):
            print(f"error: classified {len(insight.points)} of "
                  f"{len(expansion.points)} points", file=sys.stderr)
            return 1
        for point in insight.points:
            profile = point.profile
            print(f"  {point.label}: {profile.describe()}")
            if profile.primary not in BOTTLENECK_CLASSES:
                print(f"error: {point.label} classified as unknown "
                      f"class {profile.primary!r}", file=sys.stderr)
                return 1
            if profile.confidence <= 0.0:
                print(f"error: {point.label} classified with zero "
                      f"confidence — degenerate occupancy model",
                      file=sys.stderr)
                return 1
        if build_report(report_path, cache=default_cache()).to_json() \
                != insight.to_json():
            print("error: report JSON is not deterministic",
                  file=sys.stderr)
            return 1
        print("classification ok: every point classified, "
              "non-zero confidence, byte-stable JSON")

        # -- /v1/metrics against a live server on the warmed cache
        handle = run_in_thread(workers=0, cache_root=cache_root)
        try:
            client = ServiceClient(handle.base_url, timeout=60.0)
            answer = client.submit(
                {"design": "B", "workload": "pr", "mesh": "2x2"},
                wait=True)
            print(f"submit on warm cache: {answer['status']}")
            content_type, text = client.metrics()
            if content_type != PROMETHEUS_CONTENT_TYPE:
                print(f"error: /v1/metrics content type "
                      f"{content_type!r}", file=sys.stderr)
                return 1
            families = [line.split()[2] for line in text.splitlines()
                        if line.startswith("# TYPE ")]
            print(f"/v1/metrics: {len(families)} families")
            if len(families) < MIN_FAMILIES:
                print(f"error: expected >= {MIN_FAMILIES} metric "
                      f"families, got {len(families)}", file=sys.stderr)
                return 1
            missing = [n for n in REQUIRED_FAMILIES
                       if n not in families]
            if missing:
                print(f"error: missing metric families: {missing}",
                      file=sys.stderr)
                return 1
        finally:
            handle.stop()
        print("metrics ok: prometheus content type, "
              f"{len(families)} families, all required names present")
    return 0


if __name__ == "__main__":
    sys.exit(main())
