#!/usr/bin/env python
"""Check that every relative Markdown link in the docs resolves.

Scans ``README.md``, ``docs/*.md`` and ``campaigns/README.md`` for
inline links and validates:

* relative file targets exist (resolved against the linking file's
  directory);
* ``#fragment`` targets — both same-file and cross-file — match a
  heading in the target document, using GitHub's anchor slugging
  (lowercase, spaces to dashes, punctuation dropped);
* bare ``BENCH_*.json`` / top-level file references inside code spans
  are ignored (only ``[text](target)`` links are checked).

External links (``http://``, ``https://``, ``mailto:``) are skipped —
CI must not depend on the network.  Exits non-zero listing every
broken link.  Run from anywhere: paths are anchored to the repo root.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# [text](target) — excluding images is unnecessary (same resolution
# rules), but ignore links inside fenced code blocks below.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
FENCE_RE = re.compile(r"^(```|~~~)")


def github_slug(heading: str) -> str:
    """GitHub's heading → anchor transformation (ASCII subset)."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip())
    # drop markdown emphasis and trailing anchors
    text = re.sub(r"[*_]", "", text)
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    anchors: set[str] = set()
    in_fence = False
    seen: dict[str, int] = {}
    for line in path.read_text(encoding="utf-8").splitlines():
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if not m:
            continue
        slug = github_slug(m.group(1))
        n = seen.get(slug, 0)
        seen[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def iter_links(path: Path):
    in_fence = False
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in LINK_RE.finditer(line):
            yield lineno, m.group(1)


def main() -> int:
    files = [REPO / "README.md"] + sorted((REPO / "docs").glob("*.md"))
    files += sorted((REPO / "campaigns").glob("*.md"))
    errors: list[str] = []
    for src in files:
        for lineno, target in iter_links(src):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            where = f"{src.relative_to(REPO)}:{lineno}"
            file_part, _, fragment = target.partition("#")
            if file_part:
                dest = (src.parent / file_part).resolve()
                if not dest.exists():
                    errors.append(f"{where}: broken link -> {target}")
                    continue
            else:
                dest = src
            if fragment:
                if dest.suffix != ".md":
                    continue  # anchors only checked in markdown
                if fragment not in anchors_of(dest):
                    errors.append(
                        f"{where}: missing anchor -> {target}"
                    )
    if errors:
        print(f"{len(errors)} broken docs link(s):")
        for err in errors:
            print(f"  {err}")
        return 1
    print(f"docs links ok ({len(files)} files checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
