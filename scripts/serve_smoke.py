#!/usr/bin/env python3
"""CI smoke test for the experiment server (`python -m repro serve`).

Exercises the full service loop the way a user would, across real
process boundaries:

1. start the server CLI as a subprocess (ephemeral port, a scratch
   cache root, a real worker-process pool);
2. submit one small point through the thin client -> it simulates and
   lands in the shared cache (worker-side execution log shows exactly
   one execution);
3. resubmit the identical spec -> answered ``cached`` with zero new
   worker executions, and the served bytes equal the on-disk entry;
4. POST /v1/shutdown -> the server process exits cleanly (code 0).

Exits non-zero with a diagnostic on the first violated check.
Run from the repository root:  PYTHONPATH=src python scripts/serve_smoke.py
"""

import json
import os
import re
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.service.client import ServiceClient  # noqa: E402
from repro.service.worker import EXEC_LOG_NAME, count_executions  # noqa: E402
from repro.sweep.cache import ResultCache  # noqa: E402

SPEC = {"design": "O", "workload": "pr", "mesh": "2x2"}
START_TIMEOUT_S = 60.0


def fail(message: str) -> None:
    print(f"serve-smoke: FAIL — {message}")
    sys.exit(1)


def ok(message: str) -> None:
    print(f"serve-smoke: ok — {message}")


def wait_for_url(proc: subprocess.Popen) -> str:
    """Read the server's announce line and pull the base URL out."""
    deadline = time.monotonic() + START_TIMEOUT_S
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            if proc.poll() is not None:
                fail(f"server exited early with code {proc.returncode}")
            time.sleep(0.1)
            continue
        print(f"  server: {line.rstrip()}")
        match = re.search(r"http://[\d.]+:\d+", line)
        if match:
            return match.group(0)
    fail("server never announced its URL")


def main() -> None:
    cache_root = Path(tempfile.mkdtemp(prefix="repro-serve-smoke-"))
    exec_log = str(cache_root / EXEC_LOG_NAME)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", "2", "--cache-dir", str(cache_root)],
        cwd=ROOT, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env={**os.environ,
                        "PYTHONPATH": str(ROOT / "src"),
                        "PYTHONUNBUFFERED": "1"},
    )
    try:
        url = wait_for_url(proc)
        client = ServiceClient(url, timeout=300.0)

        health = client.health()
        if not health.get("ok") or health.get("mode") != "processes":
            fail(f"unexpected health answer {health}")
        ok(f"server up at {url} ({health['pool']}-wide process pool)")

        cold = client.submit(SPEC, wait=True)
        if cold.get("status") != "done":
            fail(f"cold submit did not simulate: {cold}")
        executed = count_executions(exec_log)
        if executed != 1:
            fail(f"expected exactly 1 worker execution, log shows "
                 f"{executed}")
        key = cold["key"]
        ok(f"cold submit simulated once (key {key[:12]}…, "
           f"{cold.get('elapsed_s', 0.0):.2f}s)")

        warm = client.submit(SPEC, wait=True)
        if warm.get("status") != "cached":
            fail(f"warm resubmit was not served from cache: {warm}")
        if warm.get("key") != key:
            fail(f"warm key {warm.get('key')!r} != cold key {key!r}")
        executed = count_executions(exec_log)
        if executed != 1:
            fail(f"warm resubmit re-executed: log shows {executed}")
        ok("warm resubmit answered from cache, no new execution")

        served = client.result_bytes(key)
        disk = ResultCache(root=cache_root).path_for(key).read_bytes()
        if served != disk:
            fail("served result bytes differ from the on-disk entry")
        payload = json.loads(served)
        if payload.get("key") != key:
            fail(f"served payload names key {payload.get('key')!r}")
        ok(f"served bytes identical to cache entry ({len(served)} B)")

        client.shutdown()
        proc.wait(timeout=30.0)
        if proc.returncode != 0:
            fail(f"server exited with code {proc.returncode}")
        ok("clean shutdown")
        print("serve-smoke: PASS")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10.0)


if __name__ == "__main__":
    main()
