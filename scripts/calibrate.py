"""Calibration sweep: find generator/model parameters whose PageRank
design ordering best matches the paper's Figure 6/8 shape.

Target shape (paper, pr-ish):
  speedups:  Sm ~0.86, Sl ~1.14, Sh ~1.23, C ~1.0, O ~1.7
  hops:      Sm ~0.93, Sl ~1.5-2.0, Sh ~1.45, C ~0.79, O ~0.9

Every point goes through the content-addressed result cache
(``.repro_cache/``): re-running after tweaking the grid only simulates
the new points — the workload's custom graph is hashed structurally
into the run key, so a regenerated-but-identical dataset still hits.
"""

import dataclasses
import itertools
import sys

import numpy as np

import repro
from repro.config import experiment_config, SramConfig, MemoryConfig
from repro.sweep import cached_simulate
from repro.workloads.datasets import community_powerlaw_graph
from repro.workloads.pagerank import PageRankWorkload

TARGET_SPD = {"Sm": 0.86, "Sl": 1.14, "Sh": 1.23, "C": 1.0, "O": 1.7}
TARGET_HOP = {"Sm": 0.93, "Sl": 1.7, "Sh": 1.45, "C": 0.79, "O": 0.9}


def score(res, base):
    s = 0.0
    for d, t in TARGET_SPD.items():
        s += (np.log(res[d].speedup_over(base)) - np.log(t)) ** 2
    for d, t in TARGET_HOP.items():
        s += 0.5 * (np.log(max(1e-6, res[d].hops_ratio_over(base))) - np.log(t)) ** 2
    return s


def run(intra, hubf, nhubs, service, hide, alpha, interval, n=2048, m=10):
    g = community_powerlaw_graph(
        n, m, communities=128, intra_fraction=intra,
        num_hubs=nhubs, hub_edge_fraction=hubf, hub_skew=0.4,
    )
    pr = PageRankWorkload(graph=g)
    cfg = experiment_config(
        sram=SramConfig(l1d_bytes=2048, prefetch_buffer_bytes=256),
        memory=MemoryConfig(service_ns=service),
    )
    cfg = cfg.with_(scheduler=dataclasses.replace(
        cfg.scheduler, exchange_interval_cycles=interval,
        hybrid_alpha=alpha, prefetch_hide_fraction=hide))
    base = cached_simulate("B", pr, cfg)
    res = {d: cached_simulate(d, pr, cfg)
           for d in ["Sm", "Sl", "Sh", "C", "O"]}
    return base, res


def main():
    grid = list(itertools.product(
        [0.2, 0.35],          # intra
        [0.8],                # hub fraction
        [128],                # num hubs
        [0.0, 3.0],           # service_ns (0 = contention off)
        [0.6, 0.8],           # hide
        [3.0],                # alpha
        [250],                # interval
    ))
    results = []
    for params in grid:
        try:
            base, res = run(*params)
        except Exception as e:  # keep sweeping
            print(f"params={params} FAILED: {e}", flush=True)
            continue
        sc = score(res, base)
        row = " ".join(
            f"{d}:{res[d].speedup_over(base):.2f}/{res[d].hops_ratio_over(base):.2f}"
            for d in ["Sm", "Sl", "Sh", "C", "O"]
        )
        print(f"score={sc:6.3f} intra={params[0]} hubs={params[2]} svc={params[3]} "
              f"a={params[5]} | Bimb={base.load_imbalance():.1f} | {row}",
              flush=True)
        results.append((sc, params))
    results.sort()
    print("\nBEST:")
    for sc, p in results[:3]:
        print(f"  score={sc:.3f} params={p}")


if __name__ == "__main__":
    main()
