"""The campaign resolver: one point's worth of config resolution, plus
the DSI-style document machinery campaigns are built from.

Two layers live here on purpose:

* **Point resolution** — the key-preserving transformation from a spec
  dict (``design`` / ``workload`` / ``mesh`` / ``engine`` / ``seed`` /
  config-section overrides) to a validated
  :class:`~repro.config.SystemConfig`.  This is the code that used to
  live inside :class:`repro.service.spec.ExperimentSpec`; the spec is
  now a thin wrapper over these functions, so a single experiment spec
  is literally a single-point campaign.  The transformations are
  exactly the ones the CLI applies (``scaled`` for the mesh, section
  ``dataclasses.replace`` for overrides), which is what makes a
  campaign point's run key byte-identical to the equivalent ``repro
  run`` / ``repro sweep`` invocation.

* **Document machinery** — what a campaign *file* needs on top of a
  point: ``${section.key}`` cross-references with cycle detection,
  ``$RUNTIME_VALUE`` substitution from ``--set key=value`` / the
  environment, deep merges for the override layers, and dotted-path
  get/set used by axes and ``--set``.

Everything raises :class:`SpecError` (a ``ValueError``): a malformed
spec or campaign is a *client* error — the CLI renders it as one line,
the server answers HTTP 400, and nothing crashes.
"""

from __future__ import annotations

import dataclasses
import enum
import json
import os
import re
import typing
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.config import SystemConfig, experiment_config

#: config sections a spec may override (every SystemConfig section).
CONFIG_SECTIONS = ("topology", "core", "memory", "noc", "sram", "cache",
                   "scheduler")

#: the keys one experiment point understands — in a spec dict, in a
#: campaign ``base`` / ``overrides`` layer, and as the first segment of
#: an axis or ``--set`` path.
POINT_KEYS = ("design", "workload", "workload_kwargs", "mesh", "engine",
              "seed", "config", "faults", "label", "trace_id")

#: environment prefix for ``$RUNTIME_VALUE`` lookups: the placeholder
#: at document path ``base.seed`` reads ``REPRO_CAMPAIGN_BASE_SEED``.
ENV_PREFIX = "REPRO_CAMPAIGN_"

#: ``${path.to.key}`` — path segments only, so prose mentioning
#: ``${schedules.*}`` in a description stays literal text.
_REF_RE = re.compile(r"\$\{([A-Za-z0-9_][A-Za-z0-9_.\-]*)\}")


class SpecError(ValueError):
    """A malformed experiment spec or campaign (client error)."""


# ----------------------------------------------------------------------
# point resolution (the former ExperimentSpec internals)
# ----------------------------------------------------------------------
def coerce_field(section: Any, name: str, value: Any) -> Any:
    """Coerce a JSON value onto a config dataclass field's type.

    Enums accept their ``.value`` strings; scalar fields reject
    clearly-wrong JSON types up front (a string where a number belongs)
    with a path-qualified message instead of letting
    ``dataclasses.replace`` produce something the config's
    ``validate()`` reports obliquely later.
    """
    hints = typing.get_type_hints(type(section))
    target = hints.get(name)
    if target is None:
        return value
    origin = typing.get_origin(target)
    if origin is Union:  # Optional[...] fields like hybrid_alpha
        args = [a for a in typing.get_args(target) if a is not type(None)]
        if len(args) == 1:
            target = args[0]
        if value is None:
            return value
    if isinstance(target, type) and issubclass(target, enum.Enum) \
            and not isinstance(value, target):
        try:
            return target(value)
        except ValueError:
            choices = sorted(m.value for m in target)
            raise SpecError(
                f"config.{name}: {value!r} is not one of {choices}"
            )
    if target is int and not (isinstance(value, int)
                              and not isinstance(value, bool)):
        raise SpecError(f"config.{name}: expected int, got {value!r}")
    if target is float and not (isinstance(value, (int, float))
                                and not isinstance(value, bool)):
        raise SpecError(f"config.{name}: expected float, got {value!r}")
    if target is bool and not isinstance(value, bool):
        raise SpecError(f"config.{name}: expected bool, got {value!r}")
    if target is str and not isinstance(value, str):
        raise SpecError(f"config.{name}: expected str, got {value!r}")
    return value


def apply_sections(cfg: SystemConfig,
                   overrides: Dict[str, Any]) -> SystemConfig:
    """Apply ``{section: {field: value}}`` overrides to a config."""
    if not isinstance(overrides, dict):
        raise SpecError(f"config must be an object of sections, "
                        f"got {type(overrides).__name__}")
    for section_name, fields in overrides.items():
        if section_name not in CONFIG_SECTIONS:
            raise SpecError(
                f"unknown config section {section_name!r}; expected one "
                f"of {sorted(CONFIG_SECTIONS)}"
            )
        if not isinstance(fields, dict):
            raise SpecError(
                f"config.{section_name} must be an object of fields"
            )
        section = getattr(cfg, section_name)
        known = {f.name for f in dataclasses.fields(section)}
        coerced = {}
        for name, value in fields.items():
            if name not in known:
                raise SpecError(
                    f"unknown field {name!r} in config.{section_name}; "
                    f"expected one of {sorted(known)}"
                )
            coerced[name] = coerce_field(section, name, value)
        try:
            cfg = cfg.with_(**{
                section_name: dataclasses.replace(section, **coerced)
            })
        except (TypeError, ValueError) as exc:
            raise SpecError(f"config.{section_name}: {exc}")
    return cfg


def parse_mesh(mesh: str) -> Tuple[int, int]:
    try:
        rows, cols = (int(v) for v in str(mesh).lower().split("x"))
        return rows, cols
    except ValueError:
        raise SpecError(f"mesh must look like '4x4', got {mesh!r}")


def resolve_system_config(
    mesh: Optional[str] = None,
    config: Optional[Dict[str, Any]] = None,
    engine: Optional[str] = None,
    seed: Optional[int] = None,
) -> SystemConfig:
    """The full :class:`SystemConfig` one experiment point describes.

    Field-for-field the CLI's transformations, in the CLI's order —
    this is the key-preserving core every spec and campaign point
    resolves through.
    """
    cfg = experiment_config()
    if mesh:
        cfg = cfg.scaled(*parse_mesh(mesh))
    cfg = apply_sections(cfg, config or {})
    if engine:
        cfg = cfg.with_(memory=dataclasses.replace(
            cfg.memory, access_engine=engine))
    if seed is not None:
        cfg = cfg.with_(seed=seed)
    try:
        return cfg.validate()
    except ValueError as exc:
        raise SpecError(f"invalid configuration: {exc}")


def validate_point(data: Any) -> Dict[str, Any]:
    """Parse and validate one experiment-point payload.

    Returns the normalized constructor kwargs for
    :class:`repro.service.spec.ExperimentSpec`; raises
    :class:`SpecError` with the same actionable messages the service
    has always answered as HTTP 400.
    """
    if not isinstance(data, dict):
        raise SpecError("spec must be a JSON object")
    unknown = set(data) - set(POINT_KEYS)
    if unknown:
        raise SpecError(
            f"unknown spec key(s) {sorted(unknown)}; expected a "
            f"subset of {sorted(POINT_KEYS)}"
        )
    from repro.core.system import DESIGN_POINTS
    from repro.workloads.base import WORKLOAD_FACTORIES

    design = data.get("design")
    if design not in DESIGN_POINTS:
        raise SpecError(
            f"unknown design {design!r}; expected one of "
            f"{sorted(DESIGN_POINTS)}"
        )
    workload = data.get("workload")
    if workload not in WORKLOAD_FACTORIES:
        raise SpecError(
            f"unknown workload {workload!r}; expected one of "
            f"{sorted(WORKLOAD_FACTORIES)}"
        )
    kwargs = data.get("workload_kwargs") or {}
    if not isinstance(kwargs, dict):
        raise SpecError("workload_kwargs must be an object")
    seed = data.get("seed")
    if seed is not None and not isinstance(seed, int):
        raise SpecError(f"seed must be an integer, got {seed!r}")
    faults = data.get("faults")
    if faults is not None and not isinstance(faults, dict):
        raise SpecError("faults must be a FaultSchedule object")
    return {
        "design": design, "workload": workload,
        "workload_kwargs": dict(kwargs),
        "mesh": data.get("mesh"), "engine": data.get("engine"),
        "seed": seed, "config": dict(data.get("config") or {}),
        "faults": faults, "label": str(data.get("label") or ""),
        # Non-semantic correlation annotation: accepted and carried,
        # never hashed into the run key (see repro.insight.trace).
        "trace_id": str(data.get("trace_id") or ""),
    }


# ----------------------------------------------------------------------
# dotted paths and deep merges
# ----------------------------------------------------------------------
_MISSING = object()


def split_path(path: str) -> List[str]:
    segments = [s for s in str(path).split(".") if s]
    if not segments:
        raise SpecError(f"empty path {path!r}")
    return segments


def get_path(tree: Any, path: str, default: Any = _MISSING) -> Any:
    """Read ``tree["a"]["b"]...`` for a dotted path (lists by index)."""
    node = tree
    for seg in split_path(path):
        if isinstance(node, list):
            try:
                node = node[int(seg)]
                continue
            except (ValueError, IndexError):
                node = _MISSING
        elif isinstance(node, dict) and seg in node:
            node = node[seg]
            continue
        else:
            node = _MISSING
        if node is _MISSING:
            if default is _MISSING:
                raise SpecError(f"no such key {path!r} (at {seg!r})")
            return default
    return node


def set_path(tree: Dict[str, Any], path: str, value: Any) -> None:
    """Assign into nested dicts along a dotted path, creating levels."""
    segments = split_path(path)
    node = tree
    for seg in segments[:-1]:
        child = node.get(seg)
        if not isinstance(child, dict):
            child = {}
            node[seg] = child
        node = child
    node[segments[-1]] = value


def deep_merge(base: Any, override: Any) -> Any:
    """Merge ``override`` onto ``base``: dicts recursively, everything
    else (lists included) replaced wholesale.  Inputs are not mutated."""
    if isinstance(base, dict) and isinstance(override, dict):
        merged = {k: v for k, v in base.items()}
        for key, value in override.items():
            if key in merged:
                merged[key] = deep_merge(merged[key], value)
            else:
                merged[key] = value
        return merged
    if isinstance(override, dict):
        return {k: deep_merge(None, v) if isinstance(v, dict) else v
                for k, v in override.items()}
    if isinstance(override, list):
        return list(override)
    return override


# ----------------------------------------------------------------------
# --set parsing and $RUNTIME_VALUE / ${...} resolution
# ----------------------------------------------------------------------
def parse_scalar(text: str) -> Any:
    """``--set`` / environment values: JSON when it parses, str else."""
    try:
        return json.loads(text)
    except ValueError:
        return text


def parse_set_args(entries: Optional[List[str]]) -> Dict[str, Any]:
    """``["a.b=1", "c=x"]`` → ``{"a.b": 1, "c": "x"}``."""
    out: Dict[str, Any] = {}
    for entry in entries or []:
        key, sep, value = str(entry).partition("=")
        key = key.strip()
        if not sep or not key:
            raise SpecError(
                f"--set needs key=value, got {entry!r}")
        out[key] = parse_scalar(value)
    return out


def runtime_env_key(path: str) -> str:
    """Document path → environment variable name for a placeholder."""
    return ENV_PREFIX + re.sub(r"[^A-Za-z0-9]+", "_", path).upper()


def interpolate(doc: Any, runtime: Optional[Mapping[str, Any]] = None,
                env: Optional[Mapping[str, str]] = None) -> Any:
    """Resolve ``${path.to.key}`` references and ``$RUNTIME_VALUE``
    placeholders across a whole campaign document.

    * A string that is exactly one reference is replaced by the
      referenced value with its type intact (so
      ``"${schedules.u4}"`` splices a whole schedule object);
      embedded references interpolate as text.
    * References chase through other references; a cycle raises a
      :class:`SpecError` naming the chain.
    * ``$RUNTIME_VALUE`` at document path ``p`` resolves from
      ``runtime[p]`` (the CLI's ``--set p=value``), then from the
      environment variable :func:`runtime_env_key` of ``p``; a missing
      binding is an error that spells out both fixes.
    """
    runtime = runtime or {}
    env = os.environ if env is None else env
    memo: Dict[str, Any] = {}
    stack: List[str] = []

    def resolve_ref(ref: str) -> Any:
        if ref in memo:
            return memo[ref]
        if ref in stack:
            chain = " -> ".join(stack[stack.index(ref):] + [ref])
            raise SpecError(f"circular ${{...}} reference: {chain}")
        stack.append(ref)
        try:
            value = resolve(get_path(doc, ref), ref)
        finally:
            stack.pop()
        memo[ref] = value
        return value

    def resolve(value: Any, path: str) -> Any:
        if isinstance(value, str):
            if value == "$RUNTIME_VALUE":
                if path in runtime:
                    return runtime[path]
                env_key = runtime_env_key(path)
                if env_key in env:
                    return parse_scalar(env[env_key])
                raise SpecError(
                    f"{path}: $RUNTIME_VALUE has no runtime binding — "
                    f"pass --set {path}=VALUE or export {env_key}"
                )
            whole = _REF_RE.fullmatch(value)
            if whole:
                return resolve_ref(whole.group(1))

            def _sub(match: "re.Match[str]") -> str:
                ref_value = resolve_ref(match.group(1))
                if isinstance(ref_value, (dict, list)):
                    raise SpecError(
                        f"{path}: ${{{match.group(1)}}} is not a scalar "
                        f"and cannot be embedded in a string"
                    )
                return str(ref_value)

            return _REF_RE.sub(_sub, value)
        if isinstance(value, dict):
            return {k: resolve(v, f"{path}.{k}" if path else str(k))
                    for k, v in value.items()}
        if isinstance(value, list):
            return [resolve(v, f"{path}.{i}")
                    for i, v in enumerate(value)]
        return value

    return resolve(doc, "")
