"""Campaign files: load, validate, and expand into experiment points.

A campaign document is a JSON object (YAML is accepted too when PyYAML
happens to be installed — never required)::

    {
      "name": "full_matrix",
      "description": "the standard 48-point grid",
      "base":      { ... one experiment-point layer ... },
      "axes":      {"workload": ["pr", "bfs"], "design": ["B", "O"]},
      "include":   [ {point fragments appended after the grid} ],
      "exclude":   [ {"design": "C", "workload": "pr"} ],
      "overrides": { ... point layer applied after the axes ... },
      "schedules": { ... named fault schedules for ${schedules.x} ... },
      "telemetry": {"progress_jsonl": "events.jsonl"},
      "artifacts": {"dir": "campaign_out/full_matrix", "csv": true}
    }

Expansion is deterministic: axes cross-product in declaration order
(first axis outermost), then ``include`` entries in order.  Each point
is the deep merge of ``base`` < its axis assignments < ``overrides`` <
CLI ``--set`` entries, the same precedence the docs promise.  Dotted
axis names (``"config.cache.num_camps"``) assign into nested config
sections.  ``${path.to.key}`` cross-references and ``$RUNTIME_VALUE``
placeholders are resolved before expansion by
:func:`repro.campaign.resolver.interpolate`.

A ``faults`` value on a point may be a literal
``FaultSchedule.to_dict()`` payload or the declarative
``{"random": {"unit_fails": 4, ...}}`` form, which is materialized
through :func:`repro.faults.make_random_schedule` against the point's
*resolved* topology and seed — so the same campaign file scales with
``mesh`` and stays reproducible.
"""

from __future__ import annotations

import copy
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.campaign.resolver import (
    POINT_KEYS,
    SpecError,
    deep_merge,
    get_path,
    interpolate,
    resolve_system_config,
    set_path,
    split_path,
)

#: top-level campaign-document keys.
DOC_KEYS = ("name", "description", "base", "axes", "matrix", "include",
            "exclude", "overrides", "schedules", "telemetry", "artifacts")

#: keyword arguments ``{"random": {...}}`` fault blocks may carry —
#: everything :func:`repro.faults.make_random_schedule` takes except
#: the topology, which comes from the point's resolved config.
RANDOM_FAULT_KEYS = ("unit_fails", "link_fails", "vault_slowdowns",
                     "seed", "first_timestamp", "timestamp_spread",
                     "vault_factor", "duration_phases")


@dataclass
class CampaignPoint:
    """One expanded point: a resolvable spec plus its provenance."""

    index: int
    label: str
    spec: Any  # ExperimentSpec (typed loosely to avoid an import cycle)
    assignments: Dict[str, Any] = field(default_factory=dict)


@dataclass
class Expansion:
    """The result of expanding one campaign document."""

    points: List[CampaignPoint]
    fingerprint: str
    duplicates_dropped: int = 0

    def __len__(self) -> int:
        return len(self.points)


def _expect(value: Any, kind: type, path: str, what: str) -> Any:
    if value is not None and not isinstance(value, kind):
        raise SpecError(f"{path}: expected {what}, "
                        f"got {type(value).__name__}")
    return value


def _fault_label(value: Any) -> str:
    """A compact, stable label fragment for a faults assignment."""
    if not value:
        return "healthy"
    if isinstance(value, dict) and "random" in value:
        params = value["random"] or {}
        parts = "".join(
            f"{tag}{params[name]}"
            for tag, name in (("u", "unit_fails"), ("l", "link_fails"),
                              ("v", "vault_slowdowns"))
            if params.get(name))
        return parts or "healthy"
    from repro.sweep.keys import stable_hash

    return "f" + stable_hash(value)[:6]


def _axis_label_fragment(axis: str, value: Any) -> str:
    short = split_path(axis)[-1]
    if axis == "faults" or short == "faults":
        return _fault_label(value)
    if isinstance(value, (dict, list)):
        from repro.sweep.keys import stable_hash

        return f"{short}={stable_hash(value)[:6]}"
    return f"{short}={value}"


def _materialize_faults(point: Dict[str, Any], label: str) -> None:
    """Normalize a point's ``faults`` value in place.

    ``None`` / empty disappears, a declarative ``{"random": {...}}``
    block becomes the seed-derived :class:`FaultSchedule` payload, and
    a literal ``{"events": [...]}`` payload passes through untouched.
    """
    faults = point.get("faults")
    if not faults:
        point.pop("faults", None)
        return
    if not isinstance(faults, dict) or "random" not in faults:
        return
    extra = set(faults) - {"random"}
    if extra:
        raise SpecError(
            f"{label}: faults.random cannot be combined with "
            f"{sorted(extra)}")
    params = faults["random"] or {}
    if not isinstance(params, dict):
        raise SpecError(f"{label}: faults.random must be an object")
    unknown = set(params) - set(RANDOM_FAULT_KEYS)
    if unknown:
        raise SpecError(
            f"{label}: unknown faults.random key(s) {sorted(unknown)}; "
            f"expected a subset of {sorted(RANDOM_FAULT_KEYS)}")
    cfg = resolve_system_config(
        mesh=point.get("mesh"), config=point.get("config"),
        engine=point.get("engine"), seed=point.get("seed"))
    from repro.arch.topology import Topology
    from repro.faults.schedule import make_random_schedule

    topo = Topology(cfg.topology, num_groups=cfg.cache.num_groups())
    kwargs = dict(params)
    kwargs.setdefault("seed", cfg.seed)
    try:
        schedule = make_random_schedule(
            topo.num_units, topo.mesh_links(), **kwargs)
    except (TypeError, ValueError) as exc:
        raise SpecError(f"{label}: faults.random: {exc}")
    if schedule:
        point["faults"] = schedule.to_dict()
    else:
        point.pop("faults", None)


@dataclass
class CampaignSpec:
    """One loaded (but not yet expanded) campaign document."""

    name: str
    description: str = ""
    doc: Dict[str, Any] = field(default_factory=dict)
    path: Optional[Path] = None
    source_sha256: str = ""

    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Any,
                  path: Optional[Path] = None,
                  source_sha256: str = "") -> "CampaignSpec":
        if not isinstance(data, dict):
            raise SpecError("campaign must be a JSON object")
        unknown = set(data) - set(DOC_KEYS)
        if unknown:
            raise SpecError(
                f"unknown campaign key(s) {sorted(unknown)}; expected "
                f"a subset of {sorted(DOC_KEYS)}")
        if "axes" in data and "matrix" in data:
            raise SpecError(
                "give either 'axes' or its alias 'matrix', not both")
        name = data.get("name")
        if not name or not isinstance(name, str):
            raise SpecError("name: campaign needs a non-empty string name")
        _expect(data.get("description"), str, "description", "a string")
        _expect(data.get("base"), dict, "base", "an object")
        _expect(data.get("overrides"), dict, "overrides", "an object")
        _expect(data.get("schedules"), dict, "schedules", "an object")
        _expect(data.get("telemetry"), dict, "telemetry", "an object")
        _expect(data.get("artifacts"), dict, "artifacts", "an object")
        axes = _expect(data.get("axes", data.get("matrix")), dict,
                       "axes", "an object of value lists")
        for axis, values in (axes or {}).items():
            if not isinstance(values, list) or not values:
                raise SpecError(
                    f"axes.{axis}: expected a non-empty list of values")
            if split_path(axis)[0] not in POINT_KEYS:
                raise SpecError(
                    f"axes.{axis}: unknown point key; the first path "
                    f"segment must be one of {sorted(POINT_KEYS)}")
        for section in ("include", "exclude"):
            entries = _expect(data.get(section), list, section,
                              "a list of objects")
            for i, entry in enumerate(entries or []):
                _expect(entry, dict, f"{section}.{i}", "an object")
        return cls(name=name,
                   description=str(data.get("description") or ""),
                   doc=copy.deepcopy(data), path=path,
                   source_sha256=source_sha256)

    def to_dict(self) -> Dict[str, Any]:
        return copy.deepcopy(self.doc)

    # ------------------------------------------------------------------
    def expand(self, sets: Optional[Mapping[str, Any]] = None,
               env: Optional[Mapping[str, str]] = None) -> Expansion:
        """Resolve and expand this campaign into experiment points.

        ``sets`` is the parsed ``--set`` map: entries whose first path
        segment is a campaign key patch the document before
        interpolation (and double as ``$RUNTIME_VALUE`` bindings);
        entries whose first segment is a point key are the final
        override layer on every point.
        """
        from repro.service.spec import ExperimentSpec

        sets = dict(sets or {})
        doc_sets, point_sets = {}, {}
        for key, value in sets.items():
            head = split_path(key)[0]
            if head in DOC_KEYS:
                doc_sets[key] = value
            elif head in POINT_KEYS:
                point_sets[key] = value
            else:
                raise SpecError(
                    f"--set {key}: unknown path; the first segment must "
                    f"be a campaign key ({sorted(DOC_KEYS)}) or a point "
                    f"key ({sorted(POINT_KEYS)})")

        doc = copy.deepcopy(self.doc)
        for key, value in doc_sets.items():
            set_path(doc, key, value)
        doc = interpolate(doc, runtime=sets, env=env)

        base = doc.get("base") or {}
        overrides = doc.get("overrides") or {}
        axes: Dict[str, List[Any]] = \
            doc.get("axes", doc.get("matrix")) or {}
        self._check_point_layer(base, "base")
        self._check_point_layer(overrides, "overrides")

        combos: List[Dict[str, Any]]
        if axes:
            combos = [dict(zip(axes.keys(), values))
                      for values in itertools.product(*axes.values())]
        else:
            combos = [{}]

        raw_points: List[Tuple[Dict[str, Any], Dict[str, Any]]] = []
        for combo in combos:
            point = copy.deepcopy(base)
            for axis, value in combo.items():
                set_path(point, axis, copy.deepcopy(value))
            if self._excluded(point, doc.get("exclude") or []):
                continue
            point = deep_merge(point, overrides)
            raw_points.append((point, dict(combo)))
        for i, entry in enumerate(doc.get("include") or []):
            self._check_point_layer(entry, f"include.{i}")
            point = deep_merge(deep_merge(base, entry), overrides)
            raw_points.append((point, {"include": i}))

        points: List[CampaignPoint] = []
        seen: Dict[str, int] = {}
        duplicates = 0
        for point, assignments in raw_points:
            for key, value in point_sets.items():
                set_path(point, key, value)
            label = self._label_for(point, assignments, axes)
            _materialize_faults(point, label)
            if "label" not in point:
                point["label"] = label
            identity = json.dumps(point, sort_keys=True, default=str)
            if identity in seen:
                duplicates += 1
                continue
            seen[identity] = len(points)
            try:
                spec = ExperimentSpec.from_dict(point)
            except SpecError as exc:
                raise SpecError(f"point {label!r}: {exc}") from None
            points.append(CampaignPoint(
                index=len(points), label=spec.label,
                spec=spec, assignments=assignments))

        from repro.sweep.keys import stable_hash

        fingerprint = stable_hash({
            "name": self.name,
            "points": [p.spec.to_dict() for p in points],
        })[:16]
        return Expansion(points=points, fingerprint=fingerprint,
                         duplicates_dropped=duplicates)

    # ------------------------------------------------------------------
    @staticmethod
    def _check_point_layer(layer: Any, path: str) -> None:
        if not isinstance(layer, dict):
            raise SpecError(f"{path}: expected an object")
        unknown = set(layer) - set(POINT_KEYS)
        if unknown:
            raise SpecError(
                f"{path}: unknown point key(s) {sorted(unknown)}; "
                f"expected a subset of {sorted(POINT_KEYS)}")

    @staticmethod
    def _excluded(point: Dict[str, Any],
                  excludes: List[Dict[str, Any]]) -> bool:
        sentinel = object()
        for entry in excludes:
            flat: Dict[str, Any] = {}

            def _flatten(node: Any, prefix: str) -> None:
                if isinstance(node, dict) and node:
                    for k, v in node.items():
                        _flatten(v, f"{prefix}.{k}" if prefix else str(k))
                else:
                    flat[prefix] = node

            _flatten(entry, "")
            if flat and all(
                    get_path(point, path, sentinel) == value
                    for path, value in flat.items()):
                return True
        return False

    @staticmethod
    def _label_for(point: Dict[str, Any], assignments: Dict[str, Any],
                   axes: Dict[str, Any]) -> str:
        if point.get("label"):
            return str(point["label"])
        stem = f"{point.get('design')}/{point.get('workload')}"
        extras = [_axis_label_fragment(axis, assignments.get(axis))
                  for axis in axes
                  if axis in assignments
                  and axis not in ("design", "workload")]
        if "include" in assignments:
            extras.append(f"include{assignments['include']}")
        return stem + ("" if not extras else " " + " ".join(extras))


# ----------------------------------------------------------------------
# loading
# ----------------------------------------------------------------------
def load_campaign(path: Any) -> CampaignSpec:
    """Load a campaign file (JSON; YAML accepted when PyYAML exists)."""
    import hashlib

    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise SpecError(f"cannot read campaign file {path}: {exc}")
    digest = hashlib.sha256(raw).hexdigest()
    text = raw.decode("utf-8")
    try:
        data = json.loads(text)
    except ValueError as json_exc:
        data = None
        if path.suffix.lower() in (".yml", ".yaml"):
            try:
                import yaml  # type: ignore
            except ImportError:
                raise SpecError(
                    f"{path}: YAML campaign but PyYAML is not "
                    f"installed; use JSON") from None
            try:
                data = yaml.safe_load(text)
            except yaml.YAMLError as exc:
                raise SpecError(f"{path}: invalid YAML: {exc}") from None
        if data is None:
            raise SpecError(
                f"{path}: invalid JSON: {json_exc}") from None
    try:
        return CampaignSpec.from_dict(data, path=path,
                                      source_sha256=digest)
    except SpecError as exc:
        raise SpecError(f"{path}: {exc}") from None
