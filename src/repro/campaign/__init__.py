"""Declarative experiment campaigns: one committed file per study.

A campaign file (JSON natively, YAML when PyYAML happens to be
installed) describes a whole experiment — base configuration, an
``axes`` grid with include/exclude lists, ``${...}`` cross-references,
``$RUNTIME_VALUE`` placeholders, fault schedules, an ``overrides``
layer, telemetry and artifact options — and resolves to the same run
keys the CLI and the experiment server compute, so campaigns, flags,
and server submissions all share one cache.

Lazy exports (PEP 562) keep ``import repro.campaign`` light and break
the cycle with :mod:`repro.service.spec`, which imports the resolver
while :mod:`repro.campaign.spec` imports the spec class back.
"""

from typing import TYPE_CHECKING

_EXPORTS = {
    "SpecError": ("repro.campaign.resolver", "SpecError"),
    "interpolate": ("repro.campaign.resolver", "interpolate"),
    "parse_set_args": ("repro.campaign.resolver", "parse_set_args"),
    "resolve_system_config": ("repro.campaign.resolver",
                              "resolve_system_config"),
    "CampaignSpec": ("repro.campaign.spec", "CampaignSpec"),
    "CampaignPoint": ("repro.campaign.spec", "CampaignPoint"),
    "Expansion": ("repro.campaign.spec", "Expansion"),
    "load_campaign": ("repro.campaign.spec", "load_campaign"),
    "CampaignReport": ("repro.campaign.runner", "CampaignReport"),
    "run_campaign": ("repro.campaign.runner", "run_campaign"),
    "run_campaign_via_server": ("repro.campaign.runner",
                                "run_campaign_via_server"),
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), attr)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))


if TYPE_CHECKING:  # pragma: no cover — typing-time only
    from repro.campaign.resolver import (  # noqa: F401
        SpecError,
        interpolate,
        parse_set_args,
        resolve_system_config,
    )
    from repro.campaign.runner import (  # noqa: F401
        CampaignReport,
        run_campaign,
        run_campaign_via_server,
    )
    from repro.campaign.spec import (  # noqa: F401
        CampaignPoint,
        CampaignSpec,
        Expansion,
        load_campaign,
    )
