"""Campaign execution and the archived campaign report.

Two execution paths, one result shape:

* :func:`run_campaign` — local: every expanded point becomes a
  :class:`~repro.sweep.runner.SweepPoint` and the existing sweep
  engine does what it always does (parent-side cache hits, process
  fan-out, one retry, typed progress events).  Workloads with factory
  kwargs are materialized *before* the sweep so the runner's
  parent-side key matches :meth:`ExperimentSpec.run_key` exactly.
* :func:`run_campaign_via_server` — remote: the raw campaign document
  goes to ``POST /v1/campaign``, the server expands it worker-side and
  dedupes per point by run key; completion is then long-polled point
  by point, with the same typed events re-emitted locally.

Either way the outcome is a :class:`CampaignReport`: per-point metric
rows keyed by run key (the cross-link into the history ledger and the
result cache), the expansion fingerprint, and the campaign file's own
SHA-256 — enough to answer "what exactly ran, from which spec, and
where are the bytes" from the artifact directory alone.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

from repro.campaign.spec import CampaignPoint, CampaignSpec, Expansion


@dataclass
class CampaignOutcome:
    """What happened to one campaign point."""

    point: CampaignPoint
    key: Optional[str] = None
    #: "cache" | "run" | "retry" | "failed"
    source: str = "run"
    result: Any = None  # RunResult | None
    error: str = ""
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.result is not None


@dataclass
class CampaignReport:
    """Everything one campaign execution produced."""

    name: str
    fingerprint: str
    outcomes: List[CampaignOutcome] = field(default_factory=list)
    elapsed_s: float = 0.0
    duplicates_dropped: int = 0
    spec_path: str = ""
    spec_sha256: str = ""
    server: str = ""
    history_path: str = ""
    #: submission-time correlation id (repro.insight.trace) — pure
    #: annotation; absent from the archived report when unset so
    #: pre-trace reports keep their exact byte layout.
    trace_id: str = ""

    @property
    def failures(self) -> List[CampaignOutcome]:
        return [o for o in self.outcomes if not o.ok]

    def results(self) -> Dict[str, Dict[str, Any]]:
        """Successful results as ``{workload: {design: RunResult}}``."""
        grid: Dict[str, Dict[str, Any]] = {}
        for o in self.outcomes:
            if o.ok:
                grid.setdefault(o.result.workload, {})[o.result.design] \
                    = o.result
        return grid

    def summary(self) -> str:
        hit = sum(1 for o in self.outcomes if o.source == "cache")
        ran = sum(1 for o in self.outcomes
                  if o.source in ("run", "retry"))
        return (f"campaign {self.name!r} [{self.fingerprint}]: "
                f"{len(self.outcomes)} points in {self.elapsed_s:.1f}s "
                f"({hit} cached, {ran} simulated, "
                f"{len(self.failures)} failed)")

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        from repro.analysis.export import result_row

        out = {
            "schema": 1,
            "name": self.name,
            "fingerprint": self.fingerprint,
            "spec_path": self.spec_path,
            "spec_sha256": self.spec_sha256,
            "server": self.server,
            "history_path": self.history_path,
            "elapsed_s": self.elapsed_s,
            "duplicates_dropped": self.duplicates_dropped,
            "points": [
                {
                    "label": o.point.label,
                    "key": o.key,
                    "source": o.source,
                    "error": o.error,
                    "elapsed_s": o.elapsed_s,
                    "assignments": o.point.assignments,
                    "spec": o.point.spec.to_dict(),
                    "metrics": result_row(o.result) if o.ok else None,
                }
                for o in self.outcomes
            ],
        }
        if self.trace_id:
            out["trace_id"] = self.trace_id
        return out

    def write(self, out_dir: Any,
              artifacts: Optional[Mapping[str, Any]] = None) -> Path:
        """Archive the report (and optional exports) under ``out_dir``.

        ``artifacts`` is the campaign's ``artifacts`` section:
        ``csv: true`` / ``json: true`` additionally export the metric
        rows of every successful point through
        :mod:`repro.analysis.export`.
        """
        from repro.analysis.export import write_csv, write_json

        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        report_path = out_dir / "report.json"
        report_path.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
        artifacts = artifacts or {}
        results = [o.result for o in self.outcomes if o.ok]
        if artifacts.get("csv"):
            write_csv(str(out_dir / "results.csv"), results)
        if artifacts.get("json"):
            write_json(str(out_dir / "results.json"), results)
        return report_path

    @classmethod
    def load(cls, path: Any) -> Dict[str, Any]:
        """The archived report payload (plain dict; results live in
        the cache, addressed by each point's ``key``)."""
        return json.loads(Path(path).read_text(encoding="utf-8"))


def _default_history_path() -> str:
    try:
        from repro.observatory.history import (default_history_path,
                                               history_enabled)

        return str(default_history_path()) if history_enabled() else ""
    except Exception:
        return ""


def _report_skeleton(campaign: CampaignSpec,
                     expansion: Expansion) -> CampaignReport:
    return CampaignReport(
        name=campaign.name,
        fingerprint=expansion.fingerprint,
        duplicates_dropped=expansion.duplicates_dropped,
        spec_path=str(campaign.path or ""),
        spec_sha256=campaign.source_sha256,
        history_path=_default_history_path(),
    )


def stamp_trace(expansion: Expansion, trace_id: str) -> str:
    """Annotate every expanded point with a correlation id.

    Must run *after* :meth:`CampaignSpec.expand`: the expansion
    fingerprint hashes the points' spec dicts, and the trace id is a
    per-submission annotation that must never shift a content
    fingerprint.  Specs that already carry an id keep it.
    """
    for point in expansion.points:
        if not point.spec.trace_id:
            point.spec.trace_id = trace_id
    return trace_id


def _traced_events(events, trace_id: str):
    """Wrap an events callback so every ProgressEvent carries the id."""
    if events is None or not trace_id:
        return events

    def _fan(ev):
        if not ev.trace_id:
            ev.trace_id = trace_id
        events(ev)

    return _fan


# ----------------------------------------------------------------------
# local execution through the sweep engine
# ----------------------------------------------------------------------
def run_campaign(
    campaign: CampaignSpec,
    expansion: Expansion,
    cache: Any = "default",
    jobs: Optional[int] = None,
    progress=None,
    events=None,
    runtime: Any = None,
    trace_id: str = "",
) -> CampaignReport:
    """Run an expanded campaign locally via :class:`SweepRunner`.

    ``runtime`` follows the runner's semantics: ``None`` gives this
    campaign its own warm :class:`~repro.sweep.runtime.WorkerRuntime`,
    an instance shares one across campaigns (multi-campaign drivers pay
    pool startup once), ``False`` forces the legacy cold path.
    ``trace_id`` (optional) stamps every point and progress event for
    end-to-end correlation — annotation only, keys untouched.
    """
    from repro.sweep.runner import SweepPoint, SweepRunner

    if trace_id:
        stamp_trace(expansion, trace_id)
        events = _traced_events(events, trace_id)
    report = _report_skeleton(campaign, expansion)
    report.trace_id = trace_id
    sweep_points = []
    for point in expansion.points:
        spec = point.spec
        sweep_points.append(SweepPoint(
            design=spec.design,
            workload=spec.workload_for_key(),
            config=spec.resolved_config(),
            label=point.label,
            fault_schedule=spec.fault_schedule(),
        ))
    runner = SweepRunner(cache=cache, jobs=jobs, progress=progress,
                         events=events, runtime=runtime)
    sweep = runner.run(sweep_points)
    report.elapsed_s = sweep.elapsed_s
    for point, outcome in zip(expansion.points, sweep.outcomes):
        report.outcomes.append(CampaignOutcome(
            point=point, key=outcome.key, source=outcome.source,
            result=outcome.result, error=outcome.error or "",
            elapsed_s=outcome.elapsed_s))
    return report


# ----------------------------------------------------------------------
# remote execution through the experiment server
# ----------------------------------------------------------------------
def run_campaign_via_server(
    client: Any,
    campaign: CampaignSpec,
    sets: Optional[Mapping[str, Any]] = None,
    events=None,
    trace_id: str = "",
) -> CampaignReport:
    """Run a campaign through ``POST /v1/campaign``.

    The *document* travels, not the expansion: the server expands the
    same bytes worker-side (so client and server agree on the
    fingerprint) and answers with one ``{label, key, status}`` row per
    deduped point.  Points the server reports as already terminal are
    collected immediately; the rest are long-polled via ``/v1/submit``
    exactly like ``repro sweep --server``.
    """
    from repro.observatory.progress import ProgressEvent
    from repro.service.client import ServiceError

    def emit(**kwargs):
        if events is not None:
            try:
                events(ProgressEvent(trace_id=trace_id, **kwargs))
            except Exception:
                pass  # observability never fails the run

    t0 = time.time()
    answer = client.campaign(campaign.to_dict(), sets=sets)
    expansion = campaign.expand(sets=sets)
    report = _report_skeleton(campaign, expansion)
    report.server = client.base_url
    report.trace_id = trace_id
    if trace_id:
        # Stamp after expand(): the fingerprint (already computed, and
        # already checked against the server's) must stay content-only.
        stamp_trace(expansion, trace_id)
    rows = answer.get("points", [])
    if answer.get("fingerprint") not in ("", None, report.fingerprint):
        raise ServiceError(
            f"server expanded a different campaign: fingerprint "
            f"{answer.get('fingerprint')} != {report.fingerprint}")
    if len(rows) != len(expansion.points):
        raise ServiceError(
            f"server expanded {len(rows)} points, client expected "
            f"{len(expansion.points)}")

    total = len(rows)
    emit(event="begin", total=total, jobs=int(answer.get("pool") or 1))
    done = 0
    for index, (point, row) in enumerate(zip(expansion.points, rows)):
        status = row.get("status")
        key = row.get("key")
        if status not in ("cached", "done", "failed"):
            emit(event="started", label=point.label, index=index,
                 total=total)
            final = client.submit(point.spec.to_dict(), wait=True)
            status = final.get("status")
            row = dict(row, **final)
        done += 1
        outcome = CampaignOutcome(
            point=point, key=key,
            source="cache" if status == "cached" else
                   ("run" if status == "done" else "failed"),
            error=str(row.get("error") or ""),
            elapsed_s=float(row.get("elapsed_s") or 0.0))
        if status in ("cached", "done"):
            try:
                outcome.result = client.result(key)
            except (ServiceError, ValueError, KeyError) as exc:
                outcome.source = "failed"
                outcome.error = f"result fetch failed: {exc}"
        if outcome.source == "cache":
            emit(event="cached", label=point.label, index=index,
                 done=done, total=total, source="cache")
        elif outcome.source == "run":
            emit(event="done", label=point.label, index=index,
                 done=done, total=total, source="run",
                 elapsed_s=outcome.elapsed_s)
        else:
            emit(event="failed", label=point.label, done=done,
                 total=total, source="failed", error=outcome.error)
        report.outcomes.append(outcome)
    report.elapsed_s = time.time() - t0
    emit(event="end", done=done, total=total,
         elapsed_s=report.elapsed_s)
    return report
