"""ABNDP reproduction: co-optimizing data access and load balance in NDP.

A from-scratch Python implementation of the system described in

    Boyu Tian, Qihang Chen, Mingyu Gao.
    "ABNDP: Co-optimizing Data Access and Load Balance in Near-Data
    Processing." ASPLOS 2023.

The package contains a task-grain discrete-event simulator of a
3D-stacked NDP machine (``repro.arch``, ``repro.runtime``), the paper's
two contributions — the Traveller Cache distributed DRAM cache and the
hybrid task scheduler (``repro.core``) — the eight evaluated workloads
(``repro.workloads``), and the analysis utilities behind every table
and figure (``repro.analysis``).

Quick start::

    import repro
    result = repro.simulate("O", "pr")       # full ABNDP on Page Rank
    base = repro.simulate("B", "pr")
    print(result.speedup_over(base))
"""

from repro.config import (
    CacheConfig,
    CacheStyle,
    CampMapping,
    CoreConfig,
    MemoryConfig,
    NocConfig,
    ReplacementPolicy,
    SchedulerConfig,
    SchedulingPolicy,
    SramConfig,
    SystemConfig,
    TopologyConfig,
    default_config,
    describe_config,
    experiment_config,
)
from repro.analysis.metrics import RunResult
from repro.core.host import HostModel
from repro.core.system import DESIGN_POINTS, DesignPoint, NdpSystem, build_system
from repro.simulate import (
    ALL_DESIGNS,
    ALL_WORKLOADS,
    DETAIL_WORKLOADS,
    compare_designs,
    simulate,
    sweep_configs,
)
from repro.workloads.base import WORKLOAD_FACTORIES, Workload, make_workload

# Fault-injection & resilience subsystem (docs/resilience.md).
from repro.faults import (
    FaultEvent,
    FaultKind,
    FaultSchedule,
    ResilienceStats,
    make_random_schedule,
    run_fault_campaign,
)

# The sweep engine: parallel grid runs + the content-addressed result
# cache.  ``repro.sweep`` is the package (its module object stays
# callable with the legacy ``sweep(design, workload, configs)``
# signature — see the package docstring).
from repro import sweep
from repro.sweep import (
    ResultCache,
    SweepRunner,
    cached_simulate,
    run_matrix,
    run_point,
)

__version__ = "1.0.0"

__all__ = [
    # configuration
    "SystemConfig",
    "TopologyConfig",
    "CoreConfig",
    "MemoryConfig",
    "NocConfig",
    "SramConfig",
    "CacheConfig",
    "SchedulerConfig",
    "CacheStyle",
    "CampMapping",
    "ReplacementPolicy",
    "SchedulingPolicy",
    "default_config",
    "describe_config",
    "experiment_config",
    # machines and designs
    "NdpSystem",
    "DesignPoint",
    "DESIGN_POINTS",
    "build_system",
    "HostModel",
    # running
    "simulate",
    "compare_designs",
    "sweep",
    "sweep_configs",
    "cached_simulate",
    "run_point",
    "run_matrix",
    "SweepRunner",
    "ResultCache",
    "ALL_DESIGNS",
    "ALL_WORKLOADS",
    "DETAIL_WORKLOADS",
    # workloads
    "Workload",
    "make_workload",
    "WORKLOAD_FACTORIES",
    # faults & resilience
    "FaultEvent",
    "FaultKind",
    "FaultSchedule",
    "ResilienceStats",
    "make_random_schedule",
    "run_fault_campaign",
    # results
    "RunResult",
    "__version__",
]
