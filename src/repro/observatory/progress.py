"""Live progress for sweep runs: typed per-point events and renderers.

The sweep runner (:class:`repro.sweep.runner.SweepRunner`) emits one
:class:`ProgressEvent` per state change — sweep begin/end, point
started / cached / done / retried / failed — through an ``events``
callback.  This module provides the consumers:

* :class:`SweepProgress` — a single-line TTY status (points done/total,
  cache hit rate, failures, ETA) that degrades to plain per-point
  lines on non-TTY streams, and to silence under ``--quiet``;
* :class:`JsonlProgress` — a machine-readable one-event-per-line JSONL
  stream (``--progress-jsonl``);
* :func:`tee` — fan one event out to several consumers.

Everything here is side-effect-only observability: a renderer that
throws (closed pipe, full disk) never fails the sweep.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import asdict, dataclass, field
from typing import IO, Callable, List, Optional


@dataclass
class ProgressEvent:
    """One state change of a sweep run.

    ``event`` is one of ``begin`` (sweep starts; ``total``/``jobs``
    set), ``started`` (a point was dispatched to a worker), ``cached``
    / ``done`` / ``retried`` / ``failed`` (a point resolved; ``done``
    counts points resolved so far), and ``end`` (sweep finished;
    ``elapsed_s`` is the whole sweep).
    """

    event: str
    label: str = ""
    index: int = -1
    done: int = 0
    total: int = 0
    jobs: int = 0
    source: str = ""
    elapsed_s: float = 0.0
    error: str = ""
    #: correlation id minted at submission (see repro.insight.trace);
    #: empty on untraced runs and then absent from to_dict(), so the
    #: NDJSON wire format is unchanged for every pre-existing consumer.
    trace_id: str = ""

    def to_dict(self) -> dict:
        return {k: v for k, v in asdict(self).items()
                if v not in ("", -1) or k == "event"}


EventFn = Callable[[ProgressEvent], None]


def tee(*consumers: Optional[EventFn]) -> EventFn:
    """One event callback fanning out to every non-None consumer."""
    active: List[EventFn] = [c for c in consumers if c is not None]

    def _fan(event: ProgressEvent) -> None:
        for consumer in active:
            try:
                consumer(event)
            except Exception:
                pass  # observability must never fail the sweep

    return _fan


class SweepProgress:
    """Renders progress events as a live status line (or plain lines).

    ``live=None`` auto-detects: the single-line ``\\r``-refreshing
    status is used only when ``stream`` is a TTY; otherwise each
    resolving point logs one plain line (CI logs stay readable and
    stdout JSON consumers see nothing — the stream defaults to
    stderr).  ``enabled=False`` (``--quiet``) silences both.
    """

    def __init__(self, stream: Optional[IO[str]] = None,
                 live: Optional[bool] = None, enabled: bool = True):
        self.stream = stream if stream is not None else sys.stderr
        if live is None:
            try:
                live = bool(self.stream.isatty())
            except (AttributeError, ValueError):
                live = False
        self.live = live
        self.enabled = enabled
        # counters maintained from the event stream
        self.total = 0
        self.jobs = 1
        self.done = 0
        self.cached = 0
        self.failed = 0
        self.started = 0
        self.live_done = 0
        self._live_elapsed = 0.0
        self._t_begin: Optional[float] = None
        self._t_first_live: Optional[float] = None
        self._last_len = 0

    # ------------------------------------------------------------------
    def __call__(self, ev: ProgressEvent) -> None:
        if ev.event == "begin":
            self.total = ev.total
            self.jobs = max(1, ev.jobs)
            self._t_begin = time.time()
        elif ev.event == "started":
            self.started += 1
            if self._t_first_live is None:
                self._t_first_live = time.time()
        elif ev.event == "cached":
            self.done = ev.done
            self.cached += 1
        elif ev.event in ("done", "retried"):
            self.done = ev.done
            self.live_done += 1
            self._live_elapsed += ev.elapsed_s
        elif ev.event == "failed":
            self.done = ev.done
            self.failed += 1
        if not self.enabled:
            return
        if self.live:
            self._render_line(final=ev.event == "end")
        else:
            self._render_plain(ev)

    # ------------------------------------------------------------------
    def eta_s(self) -> Optional[float]:
        """Seconds until the sweep finishes, from live completions."""
        remaining = self.total - self.done
        if remaining <= 0 or self.live_done == 0 or \
                self._t_first_live is None:
            return None
        rate = self.live_done / max(1e-9, time.time() - self._t_first_live)
        return remaining / rate if rate > 0 else None

    def status_line(self) -> str:
        resolved = max(1, self.done)
        parts = [f"sweep {self.done}/{self.total}"]
        parts.append(f"{self.cached} cached "
                     f"({self.cached / resolved:.0%} hits)")
        if self.failed:
            parts.append(f"{self.failed} FAILED")
        eta = self.eta_s()
        if eta is not None:
            parts.append(f"eta {eta:.0f}s")
        return " | ".join(parts)

    # ------------------------------------------------------------------
    def _write(self, text: str) -> None:
        try:
            self.stream.write(text)
            self.stream.flush()
        except (OSError, ValueError):
            self.enabled = False

    def _render_line(self, final: bool = False) -> None:
        line = self.status_line()
        pad = max(0, self._last_len - len(line))
        self._last_len = len(line)
        self._write("\r" + line + " " * pad + ("\n" if final else ""))

    def _render_plain(self, ev: ProgressEvent) -> None:
        if ev.event == "cached":
            self._write(f"[{ev.done}/{ev.total}] {ev.label:16} cached\n")
        elif ev.event == "done":
            self._write(f"[{ev.done}/{ev.total}] {ev.label:16} "
                        f"ran {ev.elapsed_s:.1f}s\n")
        elif ev.event == "retried":
            self._write(f"[{ev.done}/{ev.total}] {ev.label:16} "
                        f"retried ok ({ev.elapsed_s:.1f}s)\n")
        elif ev.event == "failed":
            last = ev.error.strip().splitlines()[-1] if ev.error else "?"
            self._write(f"[{ev.done}/{ev.total}] {ev.label:16} "
                        f"FAILED: {last}\n")
        elif ev.event == "end":
            self._write(self.status_line() + "\n")


class JsonlProgress:
    """Appends every event as one JSON line (``--progress-jsonl``)."""

    def __init__(self, path: str):
        self.path = path
        self._fh: Optional[IO[str]] = None
        self.events_written = 0
        self._broken = False

    def __call__(self, ev: ProgressEvent) -> None:
        if self._broken:
            return
        try:
            if self._fh is None:
                self._fh = open(self.path, "a")
            payload = dict(ev.to_dict(), t=round(time.time(), 3))
            self._fh.write(json.dumps(payload, sort_keys=True) + "\n")
            self._fh.flush()
            self.events_written += 1
            if ev.event == "end":
                self.close()
        except OSError:
            self._broken = True

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None


@dataclass
class EventCollector:
    """Test/debug helper: records every event it sees."""

    events: List[ProgressEvent] = field(default_factory=list)

    def __call__(self, ev: ProgressEvent) -> None:
        self.events.append(ev)

    def kinds(self) -> List[str]:
        return [e.event for e in self.events]
