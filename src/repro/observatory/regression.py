"""Perf-regression detection over the ``BENCH_*.json`` trajectory.

Two complementary detectors, both deterministic (no permutation
tests — CI gates must not flake):

* **Tolerance bands** — a candidate record is compared against a
  baseline per metric; a relative move beyond the band *in the bad
  direction* (wall time up, throughput down) is a regression.
  Semantic fields (``makespan_cycles``, ``tasks``, ``accesses`` of
  shared points) are held to near-exact equality: the simulator is
  seeded and deterministic, so any drift there is a behaviour change,
  not noise — the strictest and most portable part of the gate.
* **Change-point scan** — an e-divisive-lite pass over a metric
  series: every candidate split is scored by the Welch statistic
  ``|mean(left) - mean(right)| / se`` and a split is flagged when the
  score clears ``z_threshold`` *and* the mean shift clears
  ``min_rel`` (both guards, so flat-but-noisy series pass and
  zero-noise steps are still caught).  This is the means-only core of
  the e-divisive method MongoDB's DSI uses for its perf CI.

Records compare only within *compatible groups* (same engine *tier*,
mesh, seed, design/workload sets): scalar and batched are both exact
tiers and produce identical results, so a scalar→batched switch only
shows up as a wall-time improvement, while the statistical ``vector``
tier forms its own group — its makespans are compared through the
equivalence bands of :mod:`repro.core.vector_engine`, never through
the near-exact semantic check.  Cross-machine absolute seconds are
only trusted as far as the caller's tolerance allows (see the
``regression-gate`` CI step for the documented band).
"""

from __future__ import annotations

import json
import math
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.config import engine_tier
from repro.core.vector_engine import MAKESPAN_BAND
from repro.observatory.history import HistoryLedger, default_ledger

#: default relative tolerance for wall/throughput metrics (10%).
DEFAULT_TOLERANCE = 0.10

#: near-exact band for semantic (deterministic) fields.
SEMANTIC_RTOL = 1e-9

#: Welch-statistic threshold for the change-point scan.
Z_THRESHOLD = 3.0

#: minimum relative mean shift a change point must also clear.
MIN_REL_SHIFT = 0.05

#: metric -> +1 when "up is bad", -1 when "down is bad".
BAD_DIRECTION = {
    "wall_s": +1,
    "cpu_s": +1,
    "tasks_per_s": -1,
    "accesses_per_s": -1,
}

_BENCH_RE = re.compile(r"^BENCH_(\d+)\.json$")


# ----------------------------------------------------------------------
# findings
# ----------------------------------------------------------------------
@dataclass
class Finding:
    """One checked comparison (pass or fail)."""

    metric: str
    kind: str                 # "semantic" | "tolerance" | "change-point"
    baseline: float
    candidate: float
    rel_change: float
    regression: bool
    message: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "metric": self.metric, "kind": self.kind,
            "baseline": self.baseline, "candidate": self.candidate,
            "rel_change": self.rel_change if math.isfinite(self.rel_change)
            else None,
            "regression": self.regression, "message": self.message,
        }


@dataclass
class RegressionReport:
    """Everything the detector checked and what it flagged."""

    findings: List[Finding] = field(default_factory=list)
    checks: int = 0
    notes: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[Finding]:
        return [f for f in self.findings if f.regression]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "checks": self.checks,
            "regressions": len(self.regressions),
            "findings": [f.to_dict() for f in self.findings],
            "notes": list(self.notes),
        }

    def summary(self) -> str:
        if self.ok:
            return (f"no regressions across {self.checks} checks"
                    + (f" ({len(self.findings)} notable moves, all "
                       f"improvements or in-band)" if self.findings
                       else ""))
        worst = max(self.regressions,
                    key=lambda f: abs(f.rel_change)
                    if math.isfinite(f.rel_change) else math.inf)
        return (f"{len(self.regressions)} regression(s) across "
                f"{self.checks} checks; worst: {worst.message}")

    def render(self) -> str:
        lines = []
        for note in self.notes:
            lines.append(f"note: {note}")
        for f in self.findings:
            mark = "REGRESSION" if f.regression else "ok"
            lines.append(f"  [{mark:10}] {f.message}")
        lines.append(self.summary())
        return "\n".join(lines)


def _rel(baseline: float, candidate: float) -> float:
    if baseline == 0:
        return 0.0 if candidate == 0 else math.inf
    return (candidate - baseline) / abs(baseline)


# ----------------------------------------------------------------------
# change-point scan (e-divisive-lite on means)
# ----------------------------------------------------------------------
@dataclass
class ChangePoint:
    """One detected shift in a metric series."""

    index: int           #: first point of the *after* segment
    before_mean: float
    after_mean: float
    score: float         #: Welch statistic of the split

    @property
    def rel_change(self) -> float:
        return _rel(self.before_mean, self.after_mean)


def _welch_score(left: Sequence[float], right: Sequence[float]) -> float:
    nl, nr = len(left), len(right)
    ml = sum(left) / nl
    mr = sum(right) / nr
    vl = sum((x - ml) ** 2 for x in left) / nl
    vr = sum((x - mr) ** 2 for x in right) / nr
    se = math.sqrt(vl / nl + vr / nr)
    gap = abs(mr - ml)
    if se == 0.0:
        return math.inf if gap > 0 else 0.0
    return gap / se


def changepoints(
    series: Sequence[float],
    z_threshold: float = Z_THRESHOLD,
    min_rel: float = MIN_REL_SHIFT,
    min_segment: int = 2,
) -> List[ChangePoint]:
    """Detect mean shifts in ``series`` (recursive best-split scan).

    Returns change points in series order; empty for flat or
    noisy-but-flat series.  Deterministic by construction.
    """
    out: List[ChangePoint] = []

    def scan(offset: int, xs: Sequence[float]) -> None:
        n = len(xs)
        if n < 2 * min_segment:
            return
        best_k, best_score = -1, 0.0
        for k in range(min_segment, n - min_segment + 1):
            score = _welch_score(xs[:k], xs[k:])
            if score > best_score:
                best_k, best_score = k, score
        if best_k < 0 or best_score < z_threshold:
            return
        before = sum(xs[:best_k]) / best_k
        after = sum(xs[best_k:]) / (n - best_k)
        rel = _rel(before, after)
        if not math.isfinite(rel) or abs(rel) < min_rel:
            return
        scan(offset, xs[:best_k])
        out.append(ChangePoint(
            index=offset + best_k, before_mean=before,
            after_mean=after, score=best_score,
        ))
        scan(offset + best_k, xs[best_k:])

    scan(0, list(series))
    out.sort(key=lambda cp: cp.index)
    return out


# ----------------------------------------------------------------------
# record-vs-record tolerance comparison
# ----------------------------------------------------------------------
def _group_signature(payload: Dict[str, Any]) -> Tuple:
    """Records compare only within identical signatures.

    The engine enters by *tier*, not by name: scalar and batched are
    bit-identical (one "exact" trajectory), while the statistical
    vector tier is its own group — comparing its wall times against an
    exact record would misattribute the engine switch as a perf move.
    """
    return (
        engine_tier(payload.get("engine")), payload.get("mesh"),
        payload.get("seed"),
        tuple(payload.get("designs", [])),
        tuple(payload.get("workloads", [])),
    )


def _points_by_cell(payload: Dict[str, Any]) -> Dict[Tuple, Dict]:
    return {
        (p.get("design"), p.get("workload")): p
        for p in payload.get("points", [])
    }


def compare_bench(
    baseline: Dict[str, Any],
    candidate: Dict[str, Any],
    tolerance: float = DEFAULT_TOLERANCE,
    baseline_name: str = "baseline",
    candidate_name: str = "candidate",
) -> RegressionReport:
    """Tolerance-band comparison of two ``BENCH_*.json`` payloads.

    Semantic fields of shared (design, workload) points must match to
    :data:`SEMANTIC_RTOL` when seed and mesh agree; wall/throughput
    fields are held to ``tolerance`` in the bad direction only (a
    faster candidate is an improvement, never flagged).

    When either record comes from the statistical ``vector`` tier, the
    ``makespan_cycles`` check relaxes from near-exact to the vector
    tier's equivalence band (:data:`repro.core.vector_engine.
    MAKESPAN_BAND`, two-sided): the vector engine is *specified* to
    drift within that band.  Task and access counts stay near-exact —
    they are engine-invariant on every tier.
    """
    report = RegressionReport()
    base_pts = _points_by_cell(baseline)
    cand_pts = _points_by_cell(candidate)
    shared = sorted(set(base_pts) & set(cand_pts))
    if not shared:
        report.notes.append(
            f"{baseline_name} and {candidate_name} share no "
            f"(design, workload) points — nothing compared"
        )
        return report

    comparable_semantics = (
        baseline.get("seed") == candidate.get("seed")
        and baseline.get("mesh") == candidate.get("mesh")
    )
    if not comparable_semantics:
        report.notes.append(
            "seed/mesh differ between the records — semantic equality "
            "of makespan/tasks/accesses was not checked"
        )
    vector_involved = "vector" in (
        engine_tier(baseline.get("engine")),
        engine_tier(candidate.get("engine")),
    )
    if comparable_semantics and vector_involved:
        report.notes.append(
            "a vector-tier record is involved — makespan_cycles was "
            f"held to the ±{MAKESPAN_BAND:.0%} statistical band "
            "instead of near-exact equality"
        )

    for cell in shared:
        design, workload = cell
        b, c = base_pts[cell], cand_pts[cell]
        if comparable_semantics:
            for metric in ("makespan_cycles", "tasks", "accesses"):
                if metric not in b or metric not in c:
                    continue
                report.checks += 1
                rel = _rel(float(b[metric]), float(c[metric]))
                if metric == "makespan_cycles" and vector_involved:
                    bad = (not math.isfinite(rel)
                           or abs(rel) > MAKESPAN_BAND)
                    if bad or abs(rel) > SEMANTIC_RTOL:
                        report.findings.append(Finding(
                            metric=f"{design}/{workload}.{metric}",
                            kind="band",
                            baseline=float(b[metric]),
                            candidate=float(c[metric]),
                            rel_change=rel, regression=bad,
                            message=(
                                f"{design}/{workload} {metric}: "
                                f"{b[metric]:,} -> {c[metric]:,} "
                                f"({rel:+.1%} vs the vector tier's "
                                f"±{MAKESPAN_BAND:.0%} band"
                                + (", out of band)" if bad
                                   else ", in band)")
                            ),
                        ))
                    continue
                bad = (not math.isfinite(rel)
                       or abs(rel) > SEMANTIC_RTOL)
                if bad or abs(rel) > 0:
                    report.findings.append(Finding(
                        metric=f"{design}/{workload}.{metric}",
                        kind="semantic",
                        baseline=float(b[metric]),
                        candidate=float(c[metric]),
                        rel_change=rel, regression=bad,
                        message=(
                            f"{design}/{workload} {metric}: "
                            f"{b[metric]:,} -> {c[metric]:,} — the "
                            f"simulator is deterministic, this is a "
                            f"behaviour change" if bad else
                            f"{design}/{workload} {metric} unchanged"
                        ),
                    ))
        for metric, direction in BAD_DIRECTION.items():
            if metric not in b or metric not in c:
                continue
            report.checks += 1
            rel = _rel(float(b[metric]), float(c[metric]))
            bad = math.isfinite(rel) and direction * rel > tolerance
            if bad or abs(rel) > tolerance:
                report.findings.append(Finding(
                    metric=f"{design}/{workload}.{metric}",
                    kind="tolerance",
                    baseline=float(b[metric]),
                    candidate=float(c[metric]),
                    rel_change=rel, regression=bad,
                    message=(
                        f"{design}/{workload} {metric}: "
                        f"{b[metric]} -> {c[metric]} ({rel:+.1%}, "
                        f"band ±{tolerance:.0%}"
                        + (", bad direction)" if bad
                           else ", improvement)")
                    ),
                ))

    bt, ct = baseline.get("totals", {}), candidate.get("totals", {})
    for metric, direction in BAD_DIRECTION.items():
        if metric not in bt or metric not in ct:
            continue
        report.checks += 1
        rel = _rel(float(bt[metric]), float(ct[metric]))
        bad = math.isfinite(rel) and direction * rel > tolerance
        if bad or abs(rel) > tolerance:
            report.findings.append(Finding(
                metric=f"totals.{metric}", kind="tolerance",
                baseline=float(bt[metric]), candidate=float(ct[metric]),
                rel_change=rel, regression=bad,
                message=(
                    f"totals.{metric}: {bt[metric]} -> {ct[metric]} "
                    f"({rel:+.1%}, band ±{tolerance:.0%}"
                    + (", bad direction)" if bad else ", improvement)")
                ),
            ))
    return report


# ----------------------------------------------------------------------
# trajectories: BENCH_*.json directories and the history ledger
# ----------------------------------------------------------------------
def load_bench_dir(directory: Path) -> List[Tuple[str, Dict[str, Any]]]:
    """``(name, payload)`` for every ``BENCH_<n>.json``, index order."""
    records = []
    for path in sorted(Path(directory).iterdir()
                       if Path(directory).is_dir() else []):
        m = _BENCH_RE.match(path.name)
        if not m:
            continue
        try:
            records.append((int(m.group(1)), path.name,
                            json.loads(path.read_text())))
        except (OSError, ValueError):
            continue
    records.sort(key=lambda r: r[0])
    return [(name, payload) for _, name, payload in records]


def scan_bench_trajectory(
    records: Sequence[Tuple[str, Dict[str, Any]]],
    tolerance: float = DEFAULT_TOLERANCE,
    metrics: Sequence[str] = ("wall_s", "tasks_per_s"),
) -> RegressionReport:
    """Regression scan over an ordered ``BENCH_*.json`` trajectory.

    Records are grouped by compatibility signature (engine, mesh,
    seed, point sets); within each group every metric series gets a
    change-point scan, and the newest record is band-checked against
    the mean of its predecessors.  Singleton groups (e.g. the one
    scalar record before an engine switch) contribute nothing — an
    engine migration is not a regression.
    """
    report = RegressionReport()
    groups: Dict[Tuple, List[Tuple[str, Dict[str, Any]]]] = {}
    for name, payload in records:
        groups.setdefault(_group_signature(payload), []).append(
            (name, payload))
    for signature, group in groups.items():
        label = f"tier={signature[0]} mesh={signature[1]}"
        if len(group) < 2:
            report.notes.append(
                f"{label}: {len(group)} record(s) — trajectory too "
                f"short to scan"
            )
            continue
        for metric in metrics:
            direction = BAD_DIRECTION.get(metric, +1)
            series = [float(p.get("totals", {}).get(metric, 0.0))
                      for _, p in group]
            names = [name for name, _ in group]
            # newest vs the mean of everything before it
            prior = series[:-1]
            prior_mean = sum(prior) / len(prior)
            report.checks += 1
            rel = _rel(prior_mean, series[-1])
            bad = math.isfinite(rel) and direction * rel > tolerance
            if bad or abs(rel) > tolerance:
                report.findings.append(Finding(
                    metric=f"{label} totals.{metric}", kind="tolerance",
                    baseline=prior_mean, candidate=series[-1],
                    rel_change=rel, regression=bad,
                    message=(
                        f"{names[-1]} totals.{metric} {series[-1]:.4g} "
                        f"vs prior mean {prior_mean:.4g} ({rel:+.1%}, "
                        f"band ±{tolerance:.0%}"
                        + (", bad direction)" if bad
                           else ", improvement)")
                    ),
                ))
            # change-point scan over the whole series
            report.checks += 1
            for cp in changepoints(series):
                bad = direction * cp.rel_change > 0
                report.findings.append(Finding(
                    metric=f"{label} totals.{metric}",
                    kind="change-point",
                    baseline=cp.before_mean, candidate=cp.after_mean,
                    rel_change=cp.rel_change, regression=bad,
                    message=(
                        f"change point at {names[cp.index]} in "
                        f"totals.{metric}: mean {cp.before_mean:.4g} -> "
                        f"{cp.after_mean:.4g} ({cp.rel_change:+.1%}"
                        + (", bad direction)" if bad
                           else ", improvement)")
                    ),
                ))
    return report


def scan_history(
    ledger: Optional[HistoryLedger] = None,
    tolerance: float = DEFAULT_TOLERANCE,
    min_runs: int = 4,
) -> RegressionReport:
    """Wall-time regression scan over the run-history ledger.

    Runs group by (design, workload, config fingerprint, engine
    *tier*) — the same simulation repeated over time.  Scalar and
    batched share the exact tier (bit-identical work, comparable wall
    times); the statistical vector tier is its own group, so a
    batched→vector switch never reads as a wall-time change point.
    Each group's wall-time series gets the change-point scan plus a
    newest-vs-prior-mean band check.
    """
    ledger = ledger if ledger is not None else default_ledger()
    report = RegressionReport()
    groups: Dict[Tuple, List] = {}
    for rec in ledger.records():
        if rec.source not in ("simulate", "campaign") or rec.wall_s <= 0:
            continue
        sig = (rec.design, rec.workload, rec.config_fingerprint,
               engine_tier(rec.engine))
        groups.setdefault(sig, []).append(rec)
    for sig, recs in groups.items():
        if len(recs) < min_runs:
            continue
        label = f"{sig[0]}/{sig[1]}@{sig[3] or 'engine?'}"
        series = [r.wall_s for r in recs]
        report.checks += 1
        prior = series[:-1]
        prior_mean = sum(prior) / len(prior)
        rel = _rel(prior_mean, series[-1])
        if math.isfinite(rel) and rel > tolerance:
            report.findings.append(Finding(
                metric=f"{label}.wall_s", kind="tolerance",
                baseline=prior_mean, candidate=series[-1],
                rel_change=rel, regression=True,
                message=(
                    f"{label} latest wall {series[-1]:.3f}s vs prior "
                    f"mean {prior_mean:.3f}s ({rel:+.1%}, band "
                    f"±{tolerance:.0%})"
                ),
            ))
        report.checks += 1
        for cp in changepoints(series):
            if cp.rel_change <= 0:
                continue  # runs got faster — not a regression
            report.findings.append(Finding(
                metric=f"{label}.wall_s", kind="change-point",
                baseline=cp.before_mean, candidate=cp.after_mean,
                rel_change=cp.rel_change, regression=True,
                message=(
                    f"{label} wall-time change point at run "
                    f"#{cp.index}: mean {cp.before_mean:.3f}s -> "
                    f"{cp.after_mean:.3f}s ({cp.rel_change:+.1%})"
                ),
            ))
    if not groups:
        report.notes.append("history ledger holds no timed runs yet")
    return report


def merge_reports(*reports: RegressionReport) -> RegressionReport:
    merged = RegressionReport()
    for rep in reports:
        merged.findings.extend(rep.findings)
        merged.notes.extend(rep.notes)
        merged.checks += rep.checks
    return merged
