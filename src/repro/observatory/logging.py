"""Verbosity-aware status logging for batch commands.

The CLI's grid commands used to ``print`` their per-point progress to
stdout, interleaving status chatter with the result tables that JSON
consumers parse.  :class:`Log` routes status to **stderr** and honours
the shared ``--quiet`` / ``-v`` flags:

* ``info``    — normal status lines (suppressed by ``--quiet``);
* ``detail``  — extra diagnostics (shown from ``-v`` up);
* ``warn``    — always shown, prefixed ``warning:``;
* ``error``   — always shown, prefixed ``error:``.

stdout stays reserved for results (tables, summaries, exported JSON
paths), so ``python -m repro sweep ... > results.txt`` captures data,
not progress noise.
"""

from __future__ import annotations

import sys
from typing import IO, Optional


class Log:
    """A tiny leveled logger writing to one stream (default stderr)."""

    def __init__(self, verbosity: int = 0,
                 stream: Optional[IO[str]] = None):
        #: -1 = quiet, 0 = normal, >=1 = verbose.
        self.verbosity = verbosity
        self.stream = stream if stream is not None else sys.stderr

    # ------------------------------------------------------------------
    @property
    def quiet(self) -> bool:
        return self.verbosity < 0

    def _emit(self, msg: str) -> None:
        try:
            print(msg, file=self.stream, flush=True)
        except (OSError, ValueError):
            pass  # a closed/broken status stream never fails a run

    # ------------------------------------------------------------------
    def info(self, msg: str) -> None:
        if self.verbosity >= 0:
            self._emit(msg)

    def detail(self, msg: str) -> None:
        if self.verbosity >= 1:
            self._emit(msg)

    def warn(self, msg: str) -> None:
        self._emit(f"warning: {msg}")

    def error(self, msg: str) -> None:
        self._emit(f"error: {msg}")


def from_flags(quiet: bool = False, verbose: int = 0,
               stream: Optional[IO[str]] = None) -> Log:
    """Build a :class:`Log` from the CLI's ``--quiet`` / ``-v`` flags
    (``--quiet`` wins when both are given)."""
    return Log(verbosity=-1 if quiet else int(verbose or 0), stream=stream)
