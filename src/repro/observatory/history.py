"""The run-history ledger: an append-only JSONL of compact run records.

Every simulation — direct :func:`repro.simulate.simulate` calls, sweep
cache hits, fault-campaign points, ``repro bench`` timing runs — drops
one :class:`RunRecord` line into ``.repro_cache/history.jsonl``.  The
ledger is the cross-run memory that the diff engine
(:mod:`repro.observatory.diffing`) and the regression detector
(:mod:`repro.observatory.regression`) read: which runs happened, in
what order, how long each took on the wall clock, and what their
headline metrics were.

Recording is strictly **non-semantic** and **best-effort**:

* run keys, cached result JSON, and the ``abndp-sim-1`` version salt
  are untouched — the ledger only *observes*;
* any filesystem failure (read-only checkout, full disk, missing
  parent) is swallowed: a broken ledger can never fail a run;
* ``REPRO_NO_HISTORY`` (any non-empty value) disables recording, and
  ``REPRO_HISTORY_PATH`` relocates the file (default:
  ``history.jsonl`` inside the result-cache root, which itself honours
  ``REPRO_CACHE_DIR``).

Lines are compact (well under the 4 KiB pipe-atomicity bound), so
concurrent appends from sweep worker processes interleave whole
records, never fragments.  Corrupt lines — a torn write, a manual
edit — are skipped and counted on read, not fatal.

Appends (and the 8 MB rotation they may trigger) serialize across
processes on an advisory ``<path>.lock`` sidecar
(:mod:`repro.sweep.locking`): without it, two processes hitting the
rotation bound simultaneously would both ``os.replace`` the ledger
onto ``<path>.1`` and the second would clobber the first's rotated
generation with a near-empty file.  Reads stay lock-free — rotation
and compaction only ever rename whole files.  :meth:`HistoryLedger.
compact` (``python -m repro compact``) merges the rotated generation
back in, drops corrupt lines, and bounds the file to the newest
records that fit the rotation budget.
"""

from __future__ import annotations

import json
import os
import socket
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

ENV_HISTORY_PATH = "REPRO_HISTORY_PATH"
ENV_NO_HISTORY = "REPRO_NO_HISTORY"

#: ledger line schema tag; bump when the record layout changes.
SCHEMA = "repro-history-v1"

#: rotation bound: when an append would push the ledger past this many
#: bytes, the current file moves to ``<path>.1`` first (one generation
#: is kept — the ledger is bookkeeping, not an archive).
DEFAULT_MAX_BYTES = 8 * 1024 * 1024


# ----------------------------------------------------------------------
# environment / provenance helpers
# ----------------------------------------------------------------------
def history_enabled() -> bool:
    return not os.environ.get(ENV_NO_HISTORY)


def default_history_path() -> Path:
    """The ledger location: env override, else inside the cache root."""
    override = os.environ.get(ENV_HISTORY_PATH)
    if override:
        return Path(override)
    from repro.sweep.cache import DEFAULT_CACHE_DIR, ENV_CACHE_DIR

    root = os.environ.get(ENV_CACHE_DIR) or DEFAULT_CACHE_DIR
    return Path(root) / "history.jsonl"


_GIT_REV_CACHE: Dict[str, str] = {}


def git_revision(root: Optional[Path] = None) -> str:
    """The current git commit (short hex), without spawning a process.

    Reads ``.git/HEAD`` and resolves one level of ref indirection
    (loose ref file, then ``packed-refs``); walks up from ``root``
    (default: the working directory) to find the repository.  Returns
    ``"unknown"`` outside a git checkout — provenance is best-effort.
    """
    start = Path(root) if root is not None else Path.cwd()
    cache_key = str(start)
    hit = _GIT_REV_CACHE.get(cache_key)
    if hit is not None:
        return hit
    rev = "unknown"
    try:
        for candidate in (start, *start.resolve().parents):
            head = candidate / ".git" / "HEAD"
            if not head.is_file():
                continue
            text = head.read_text().strip()
            if text.startswith("ref:"):
                ref = text.split(None, 1)[1].strip()
                loose = candidate / ".git" / ref
                if loose.is_file():
                    rev = loose.read_text().strip()[:12]
                else:
                    packed = candidate / ".git" / "packed-refs"
                    if packed.is_file():
                        for line in packed.read_text().splitlines():
                            if line.endswith(" " + ref):
                                rev = line.split()[0][:12]
                                break
            else:
                rev = text[:12]
            break
    except OSError:
        pass
    _GIT_REV_CACHE[cache_key] = rev
    return rev


def hostname() -> str:
    try:
        return socket.gethostname()
    except OSError:
        return "unknown"


# ----------------------------------------------------------------------
# records
# ----------------------------------------------------------------------
@dataclass
class RunRecord:
    """One compact ledger line describing one run.

    Headline metrics only — the full
    :class:`~repro.analysis.metrics.RunResult` distribution lives in
    the result cache, addressed by ``key``; the record is what survives
    cache eviction and what the wall-clock trajectory is read from.
    """

    schema: str = SCHEMA
    ts: float = 0.0             #: unix time of the append
    source: str = "simulate"    #: simulate | cache | bench | campaign
    key: Optional[str] = None   #: content-addressed run key (if known)
    design: str = ""
    workload: str = ""
    config_fingerprint: str = ""
    engine: str = ""            #: access engine (non-semantic)
    seed: Optional[int] = None
    mesh: str = ""
    git_rev: str = ""
    host: str = ""
    wall_s: float = 0.0
    faulted: bool = False
    # headline RunResult metrics
    makespan_cycles: float = 0.0
    inter_hops: int = 0
    intra_transfers: int = 0
    tasks_executed: int = 0
    steals: int = 0
    cache_hit_rate: float = 0.0
    load_imbalance: float = 0.0
    energy_total_pj: float = 0.0
    #: compact TelemetrySummary digest (instrumented runs only).
    telemetry: Optional[Dict[str, Any]] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        out = asdict(self)
        if self.telemetry is None:
            out.pop("telemetry")
        if not self.extra:
            out.pop("extra")
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunRecord":
        names = {f for f in cls.__dataclass_fields__}  # noqa: C416
        return cls(**{k: v for k, v in data.items() if k in names})

    @classmethod
    def from_result(cls, result, **overrides: Any) -> "RunRecord":
        """Build a record from a RunResult plus context overrides."""
        rec = cls(
            ts=time.time(),
            design=result.design,
            workload=result.workload,
            git_rev=git_revision(),
            host=hostname(),
            faulted=result.resilience is not None,
            makespan_cycles=float(result.makespan_cycles),
            inter_hops=int(result.inter_hops),
            intra_transfers=int(result.traffic.intra_transfers),
            tasks_executed=int(result.tasks_executed),
            steals=int(result.steals),
            cache_hit_rate=float(result.cache.hit_rate),
            load_imbalance=float(result.load_imbalance()),
            energy_total_pj=float(result.energy.total_pj),
        )
        if result.telemetry is not None:
            rec.telemetry = result.telemetry.digest()
        for name, value in overrides.items():
            setattr(rec, name, value)
        return rec


@dataclass
class CompactionStats:
    """What one :meth:`HistoryLedger.compact` pass did."""

    records: int = 0            #: records in the compacted ledger
    dropped_corrupt: int = 0    #: unparseable lines discarded
    dropped_old: int = 0        #: valid records beyond the byte budget
    merged_generations: int = 0  #: rotated files folded back in
    bytes_before: int = 0
    bytes_after: int = 0
    failed: bool = False

    def summary(self) -> str:
        if self.failed:
            return "compaction failed (ledger unchanged)"
        parts = [f"{self.records} records kept",
                 f"{self.bytes_before} -> {self.bytes_after} bytes"]
        if self.merged_generations:
            parts.append(f"{self.merged_generations} generation(s) merged")
        if self.dropped_corrupt:
            parts.append(f"{self.dropped_corrupt} corrupt line(s) dropped")
        if self.dropped_old:
            parts.append(f"{self.dropped_old} old record(s) aged out")
        return ", ".join(parts)


# ----------------------------------------------------------------------
# the ledger
# ----------------------------------------------------------------------
class HistoryLedger:
    """Append-only JSONL store of :class:`RunRecord` lines."""

    def __init__(self, path: Optional[Path] = None,
                 max_bytes: int = DEFAULT_MAX_BYTES):
        self.path = Path(path) if path is not None \
            else default_history_path()
        self.max_bytes = max_bytes
        self.io_errors = 0
        self.corrupt_lines = 0

    # ------------------------------------------------------------------
    def _active(self) -> bool:
        return history_enabled()

    def lock_path(self) -> Path:
        return self.path.with_name(self.path.name + ".lock")

    def rotated_path(self) -> Path:
        return self.path.with_name(self.path.name + ".1")

    def append(self, record: RunRecord) -> bool:
        """Write one ledger line; returns False when skipped/failed.

        Best-effort by contract: every failure is swallowed and
        counted, and a disabled ledger is a silent no-op.  The
        rotation check and the write happen under the cross-process
        writer lock, so two processes arriving at the 8 MB bound
        together rotate exactly once (the second re-stats the
        freshly-rotated, now-small file and appends to it).
        """
        if not self._active():
            return False
        from repro.sweep.locking import FileLock

        try:
            line = json.dumps(record.to_dict(), sort_keys=True,
                              separators=(",", ":")) + "\n"
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with FileLock(self.lock_path()):
                self._rotate_if_needed(len(line))
                with open(self.path, "a") as fh:
                    fh.write(line)
            return True
        except (OSError, TypeError, ValueError):
            self.io_errors += 1
            return False

    def _rotate_if_needed(self, incoming: int) -> None:
        """Rotate ``path`` to ``path.1`` when the append would overflow.

        Callers must hold the writer lock: the stat-then-replace pair
        is the race the lock exists to close (see the module
        docstring and tests/test_locking.py).
        """
        try:
            size = self.path.stat().st_size
        except OSError:
            return
        if size + incoming <= self.max_bytes:
            return
        try:
            os.replace(self.path, self.rotated_path())
        except OSError:
            self.io_errors += 1

    # ------------------------------------------------------------------
    def records(self) -> List[RunRecord]:
        """Every readable record, oldest first; corrupt lines skipped."""
        out: List[RunRecord] = []
        if not self._active():
            return out
        try:
            text = self.path.read_text()
        except OSError:
            return out
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
                if not isinstance(data, dict) or \
                        data.get("schema") != SCHEMA:
                    raise ValueError("not a history record")
                out.append(RunRecord.from_dict(data))
            except (ValueError, TypeError):
                self.corrupt_lines += 1
        return out

    def __len__(self) -> int:
        return len(self.records())

    def get(self, index: int) -> RunRecord:
        """Record by position (python indexing; negatives from the end)."""
        return self.records()[index]

    # ------------------------------------------------------------------
    def compact(self, max_bytes: Optional[int] = None) -> "CompactionStats":
        """Rewrite the ledger: merge the rotated generation, drop
        corrupt lines, keep the newest records that fit ``max_bytes``
        (default: the rotation bound).

        Runs atomically under the writer lock (read both generations,
        write a temp file, ``os.replace``), so concurrent appends
        either land before the compaction snapshot or after the
        rewrite — never inside it.  Raises nothing: a failed
        compaction leaves the ledger exactly as it was.
        """
        from repro.sweep.locking import FileLock, atomic_write_bytes

        stats = CompactionStats()
        budget = max_bytes if max_bytes is not None else self.max_bytes
        with FileLock(self.lock_path()):
            lines: List[str] = []
            for source in (self.rotated_path(), self.path):
                try:
                    text = source.read_text()
                except OSError:
                    continue
                if source != self.path:
                    stats.merged_generations += 1
                stats.bytes_before += len(text.encode("utf-8"))
                for line in text.splitlines():
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        data = json.loads(line)
                        if not isinstance(data, dict) or \
                                data.get("schema") != SCHEMA:
                            raise ValueError("not a history record")
                    except (ValueError, TypeError):
                        stats.dropped_corrupt += 1
                        continue
                    lines.append(line)
            # newest records win the byte budget
            kept: List[str] = []
            size = 0
            for line in reversed(lines):
                size += len(line.encode("utf-8")) + 1
                if size > budget:
                    break
                kept.append(line)
            kept.reverse()
            stats.dropped_old = len(lines) - len(kept)
            blob = "".join(line + "\n" for line in kept).encode("utf-8")
            try:
                atomic_write_bytes(self.path, blob)
            except OSError:
                self.io_errors += 1
                stats.failed = True
                return stats
            try:
                self.rotated_path().unlink()
            except FileNotFoundError:
                pass
            except OSError:
                self.io_errors += 1
            stats.records = len(kept)
            stats.bytes_after = len(blob)
        return stats

    def find_key(self, key_prefix: str) -> Optional[RunRecord]:
        """Newest record whose run key starts with ``key_prefix``."""
        for rec in reversed(self.records()):
            if rec.key and rec.key.startswith(key_prefix):
                return rec
        return None


_DEFAULT_LEDGERS: Dict[Path, HistoryLedger] = {}


def default_ledger() -> HistoryLedger:
    """Process-wide ledger at the current default path (env-aware)."""
    path = default_history_path().absolute()
    ledger = _DEFAULT_LEDGERS.get(path)
    if ledger is None:
        ledger = _DEFAULT_LEDGERS[path] = HistoryLedger(path=path)
    return ledger


# ----------------------------------------------------------------------
# recording hooks (called from simulate / sweep / bench / campaigns)
# ----------------------------------------------------------------------
def record_run(
    result,
    config=None,
    workload=None,
    wall_s: float = 0.0,
    source: str = "simulate",
    key: Optional[str] = None,
    fault_schedule=None,
    ledger: Optional[HistoryLedger] = None,
) -> bool:
    """Append one run to the history ledger — never raises.

    The run key is computed when not supplied (and computable); the
    config fingerprint is a stable hash prefix of the canonical config.
    Everything is wrapped in a broad guard: history is observability,
    and observability must not change or fail the observed run.
    """
    if not history_enabled():
        return False
    try:
        from repro.sweep.keys import UncacheableError, run_key, stable_hash

        record = RunRecord.from_result(
            result, source=source, wall_s=round(float(wall_s), 4), key=key,
        )
        if config is not None:
            record.config_fingerprint = stable_hash(
                config.canonical_dict())[:16]
            record.engine = getattr(config.memory, "access_engine", "")
            record.seed = int(config.seed)
            record.mesh = (f"{config.topology.mesh_rows}x"
                           f"{config.topology.mesh_cols}")
            if key is None and workload is not None:
                extra = {"faults": fault_schedule} if fault_schedule \
                    else None
                try:
                    record.key = run_key(result.design, workload, config,
                                         extra=extra)
                except UncacheableError:
                    record.key = None
        target = ledger if ledger is not None else default_ledger()
        return target.append(record)
    except Exception:
        return False  # best-effort by contract


def record_bench(payload: Dict[str, Any], path,
                 ledger: Optional[HistoryLedger] = None) -> bool:
    """Append a one-line summary of a ``BENCH_<n>.json`` record."""
    if not history_enabled():
        return False
    try:
        totals = payload.get("totals", {})
        record = RunRecord(
            ts=time.time(),
            source="bench",
            design=",".join(payload.get("designs", [])),
            workload=",".join(payload.get("workloads", [])),
            engine=str(payload.get("engine", "")),
            seed=payload.get("seed"),
            mesh=str(payload.get("mesh", "")),
            git_rev=str(payload.get("git_rev") or git_revision()),
            host=str(payload.get("hostname") or hostname()),
            wall_s=float(totals.get("wall_s", 0.0)),
            tasks_executed=int(totals.get("tasks", 0)),
            extra={"bench_path": str(path),
                   "tasks_per_s": totals.get("tasks_per_s", 0.0)},
        )
        target = ledger if ledger is not None else default_ledger()
        return target.append(record)
    except Exception:
        return False
