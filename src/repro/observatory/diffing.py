"""The run-to-run diff engine behind ``python -m repro diff A B``.

A *run reference* names one run three ways:

* a **history index** — ``0`` is the oldest ledger line, ``-1`` the
  newest (plain python indexing into
  :meth:`~repro.observatory.history.HistoryLedger.records`);
* a **run key** — the full 64-hex content-addressed key or any unique
  prefix (≥ 8 chars), resolved against the ledger and the result
  cache;
* a **file path** — a ``.repro_cache`` entry (``{schema, key, result}``)
  or a bare :func:`repro.sweep.serialize.result_to_dict` payload.

:func:`diff_runs` compares everything observable about the two runs:
the flat metric row of :func:`repro.analysis.export.result_row`
(cycles, hops, DRAM/SRAM traffic, traveller hit rate, energy), the
per-core active-cycle distribution, queue imbalance, and — when
telemetry sidecars exist — the NoC link-load matrix and the scheduler
decision/cost counters.  Each delta is annotated against a relative
threshold band, and *semantic* metrics (simulation outcomes) are kept
apart from *non-semantic* ones (wall time, engine choice): two
bit-identical runs under different access engines diff to **zero
semantic deltas** while still showing the wall-time difference.
"""

from __future__ import annotations

import json
import math
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.observatory.history import (
    HistoryLedger,
    RunRecord,
    default_ledger,
)

#: default relative band: |Δ|/|a| beyond this is flagged.  Simulations
#: are deterministic, so the band exists for cross-config diffs; the
#: same-key case must land exactly on zero.
DEFAULT_THRESHOLD = 0.001

_KEY_RE = re.compile(r"^[0-9a-f]{8,64}$")
_INDEX_RE = re.compile(r"^-?\d+$")

#: RunRecord headline metrics used when only ledger lines are
#: available (no full RunResult in the cache).
_RECORD_METRICS = (
    "makespan_cycles", "inter_hops", "intra_transfers", "tasks_executed",
    "steals", "cache_hit_rate", "load_imbalance", "energy_total_pj",
)

#: telemetry counters worth diffing (scheduler cost breakdown).
_SCHED_PREFIXES = ("scheduler.", "run.")


@dataclass
class MetricDelta:
    """One compared metric, threshold-annotated."""

    name: str
    a: float
    b: float
    threshold: float = DEFAULT_THRESHOLD
    semantic: bool = True

    @property
    def abs_delta(self) -> float:
        return self.b - self.a

    @property
    def rel_delta(self) -> float:
        if self.a == 0:
            return 0.0 if self.b == 0 else math.inf
        return (self.b - self.a) / abs(self.a)

    @property
    def significant(self) -> bool:
        rel = self.rel_delta
        return abs(rel) > self.threshold if math.isfinite(rel) else True

    def to_dict(self) -> Dict[str, Any]:
        rel = self.rel_delta
        return {
            "name": self.name, "a": self.a, "b": self.b,
            "abs_delta": self.abs_delta,
            "rel_delta": rel if math.isfinite(rel) else None,
            "threshold": self.threshold,
            "semantic": self.semantic,
            "significant": self.significant,
        }

    def render(self) -> str:
        rel = self.rel_delta
        rel_s = f"{rel:+.2%}" if math.isfinite(rel) else "new"
        flag = "Δ" if self.significant else "="
        return (f"  {flag} {self.name:28} {self.a:>16,.6g} -> "
                f"{self.b:>16,.6g}  ({rel_s})")


@dataclass
class RunHandle:
    """One resolved run: whatever could be loaded about it."""

    ref: str
    label: str = ""
    key: Optional[str] = None
    record: Optional[RunRecord] = None
    result: Optional[Any] = None          # RunResult, when available
    telemetry: Optional[Dict[str, Any]] = None
    wall_s: Optional[float] = None
    warnings: List[str] = field(default_factory=list)

    def describe(self) -> str:
        bits = [self.label or self.ref]
        if self.key:
            bits.append(f"key={self.key[:12]}…")
        if self.record is not None:
            if self.record.engine:
                bits.append(f"engine={self.record.engine}")
            if self.record.git_rev:
                bits.append(f"git={self.record.git_rev}")
            bits.append(f"source={self.record.source}")
        if self.wall_s is not None:
            bits.append(f"wall={self.wall_s:.2f}s")
        return " ".join(bits)


# ----------------------------------------------------------------------
# reference resolution
# ----------------------------------------------------------------------
def _result_from_payload(data: Dict[str, Any]):
    from repro.sweep.serialize import result_from_dict

    if "result" in data and isinstance(data["result"], dict):
        return result_from_dict(data["result"]), data.get("key")
    return result_from_dict(data), data.get("key")


def _attach_cache_entry(handle: RunHandle, cache) -> None:
    """Load the full result + telemetry sidecar for ``handle.key``."""
    if handle.key is None or cache is None:
        return
    entry = cache.path_for(handle.key)
    sidecar = cache.telemetry_path_for(handle.key)
    if handle.result is None:
        loaded = cache.load(handle.key)
        if loaded is not None:
            handle.result = loaded
    if sidecar.exists():
        handle.telemetry = cache.load_telemetry(handle.key)
        try:
            if entry.exists() and \
                    sidecar.stat().st_mtime < entry.stat().st_mtime:
                handle.warnings.append(
                    f"telemetry sidecar for {handle.key[:12]}… is older "
                    f"than its cached run JSON — re-run `repro trace` "
                    f"to refresh it"
                )
        except OSError:
            pass


def resolve_ref(
    ref: str,
    ledger: Optional[HistoryLedger] = None,
    cache: Any = "default",
) -> RunHandle:
    """Resolve one run reference (see module docstring) to a handle.

    Raises ``ValueError`` with an actionable message when the
    reference matches nothing.
    """
    from repro.sweep.cache import resolve_cache

    ledger = ledger if ledger is not None else default_ledger()
    store = resolve_cache(cache)
    handle = RunHandle(ref=str(ref))

    path = Path(str(ref))
    if path.is_file():
        try:
            data = json.loads(path.read_text())
            handle.result, key = _result_from_payload(data)
            handle.key = key
            handle.label = path.name
        except (OSError, ValueError, KeyError, TypeError) as exc:
            raise ValueError(
                f"{ref}: not a readable run JSON "
                f"(cache entry or serialized RunResult): {exc}"
            ) from exc
        _attach_cache_entry(handle, store)
        return handle

    if _INDEX_RE.match(str(ref)):
        records = ledger.records()
        if not records:
            raise ValueError(
                f"history ledger {ledger.path} is empty — run a "
                f"simulation first (history records automatically)"
            )
        try:
            record = records[int(ref)]
        except IndexError:
            raise ValueError(
                f"history index {ref} out of range "
                f"(ledger holds {len(records)} records)"
            ) from None
        handle.record = record
        handle.key = record.key
        handle.wall_s = record.wall_s
        handle.label = f"[{ref}] {record.design}/{record.workload}"
        _attach_cache_entry(handle, store)
        return handle

    if _KEY_RE.match(str(ref).lower()):
        record = ledger.find_key(str(ref).lower())
        if record is not None:
            handle.record = record
            handle.key = record.key
            handle.wall_s = record.wall_s
            handle.label = f"{record.design}/{record.workload}"
        else:
            handle.key = str(ref).lower() if len(str(ref)) == 64 else None
        _attach_cache_entry(handle, store)
        if handle.result is None and handle.record is None:
            raise ValueError(
                f"run key {ref!r} matches nothing in the history ledger "
                f"or the result cache"
            )
        return handle

    raise ValueError(
        f"unrecognized run reference {ref!r}: expected a history index "
        f"(0, -1, …), a run-key prefix (≥ 8 hex chars), or a path to a "
        f"run JSON file"
    )


# ----------------------------------------------------------------------
# the diff itself
# ----------------------------------------------------------------------
@dataclass
class RunDiff:
    """Structured comparison of two runs."""

    a: RunHandle
    b: RunHandle
    deltas: List[MetricDelta] = field(default_factory=list)
    wall: Optional[MetricDelta] = None
    warnings: List[str] = field(default_factory=list)
    threshold: float = DEFAULT_THRESHOLD
    #: bottleneck-class transition (repro.insight.attribution):
    #: ``{"a": ..., "b": ..., "changed": bool}`` when both runs carried
    #: enough signal to classify, else None.
    bottleneck: Optional[Dict[str, Any]] = None

    @property
    def semantic_deltas(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.semantic and d.significant]

    @property
    def identical(self) -> bool:
        return not self.semantic_deltas

    def to_dict(self) -> Dict[str, Any]:
        return {
            "a": self.a.describe(),
            "b": self.b.describe(),
            "threshold": self.threshold,
            "identical": self.identical,
            "semantic_deltas": len(self.semantic_deltas),
            "metrics": [d.to_dict() for d in self.deltas],
            "wall": self.wall.to_dict() if self.wall else None,
            "warnings": list(self.warnings),
            "bottleneck": dict(self.bottleneck)
            if self.bottleneck else None,
        }

    def render(self, verbose: bool = False) -> str:
        lines = [f"run A: {self.a.describe()}",
                 f"run B: {self.b.describe()}"]
        for warning in self.warnings:
            lines.append(f"warning: {warning}")
        shown = self.deltas if verbose else self.semantic_deltas
        lines.append(
            f"{len(self.deltas)} metrics compared, "
            f"{len(self.semantic_deltas)} beyond the "
            f"±{self.threshold:.2%} band"
        )
        lines.extend(d.render() for d in shown)
        if self.bottleneck:
            arrow = ("->" if self.bottleneck["changed"] else
                     "== (unchanged)")
            lines.append(
                f"bottleneck class: {self.bottleneck['a']} {arrow}"
                + (f" {self.bottleneck['b']}"
                   if self.bottleneck["changed"] else "")
            )
        if self.identical:
            lines.append("no semantic deltas: the runs are equivalent")
        if self.wall is not None and (self.wall.a or self.wall.b):
            rel = self.wall.rel_delta
            rel_s = f"{rel:+.1%}" if math.isfinite(rel) else "n/a"
            lines.append(
                f"wall time (non-semantic): {self.wall.a:.2f}s -> "
                f"{self.wall.b:.2f}s ({rel_s})"
            )
        return "\n".join(lines)


def _numeric_row(handle: RunHandle) -> Dict[str, float]:
    """Flat metric row for one handle: full result when available,
    ledger headline metrics otherwise."""
    if handle.result is not None:
        from repro.analysis.export import result_row

        row = result_row(handle.result)
        out = {k: float(v) for k, v in row.items()
               if isinstance(v, (int, float))}
        cycles = handle.result.active_cycles_per_core
        if cycles.size:
            out["active_cycles.max"] = float(cycles.max())
            out["active_cycles.mean"] = float(cycles.mean())
            out["active_cycles.std"] = float(cycles.std())
        return out
    if handle.record is not None:
        return {name: float(getattr(handle.record, name))
                for name in _RECORD_METRICS}
    return {}


def _telemetry_metrics(tel: Dict[str, Any]) -> Dict[str, float]:
    """Scheduler/NoC metrics derived from a telemetry sidecar dict."""
    out: Dict[str, float] = {}
    counters = tel.get("counters") or {}
    for name, value in counters.items():
        if any(name.startswith(p) for p in _SCHED_PREFIXES) and \
                isinstance(value, (int, float)):
            out[f"telemetry.{name}"] = float(value)
    matrix = tel.get("link_matrix")
    if matrix:
        flat = [float(v) for line in matrix for v in line]
        if flat:
            out["noc.link_load.total"] = sum(flat)
            out["noc.link_load.max"] = max(flat)
    return out


def _bottleneck_profile(handle: RunHandle):
    """Best-effort bottleneck attribution for one handle (or None)."""
    from repro.insight.attribution import attribute_point

    row = _numeric_row(handle)
    if not row:
        return None
    config = None
    mesh = handle.record.mesh if handle.record is not None else ""
    if mesh:
        try:
            from repro.campaign.resolver import parse_mesh
            from repro.config import experiment_config

            config = experiment_config().scaled(*parse_mesh(mesh))
        except Exception:
            config = None
    cycles = None
    if handle.result is not None:
        vec = handle.result.active_cycles_per_core
        if getattr(vec, "size", 0):
            cycles = [float(v) for v in vec]
    try:
        return attribute_point(row, telemetry=handle.telemetry,
                               config=config, active_cycles=cycles)
    except Exception:
        return None


def diff_runs(
    a: RunHandle,
    b: RunHandle,
    threshold: float = DEFAULT_THRESHOLD,
) -> RunDiff:
    """Compare two resolved runs into a :class:`RunDiff`."""
    diff = RunDiff(a=a, b=b, threshold=threshold)
    diff.warnings.extend(a.warnings)
    diff.warnings.extend(b.warnings)

    row_a, row_b = _numeric_row(a), _numeric_row(b)
    if a.telemetry and b.telemetry:
        version_a = int(a.telemetry.get("version") or 1)
        version_b = int(b.telemetry.get("version") or 1)
        if version_a != version_b:
            diff.warnings.append(
                f"telemetry summary schema versions differ "
                f"(A is v{version_a}, B is v{version_b}) — counter and "
                f"series layouts may not be comparable"
            )
        row_a.update(_telemetry_metrics(a.telemetry))
        row_b.update(_telemetry_metrics(b.telemetry))
    elif a.telemetry or b.telemetry:
        diff.warnings.append(
            "only one run has a telemetry sidecar — NoC link-load and "
            "scheduler-cost breakdowns were not compared"
        )

    shared = [k for k in row_a if k in row_b]
    if not shared:
        diff.warnings.append(
            "the runs share no comparable metrics (one may be a bare "
            "ledger line whose cache entry was evicted)"
        )
    for name in sorted(shared):
        diff.deltas.append(MetricDelta(
            name=name, a=row_a[name], b=row_b[name], threshold=threshold,
        ))

    # Per-core distribution: element-wise largest gap when comparable.
    if a.result is not None and b.result is not None:
        ca = a.result.active_cycles_per_core
        cb = b.result.active_cycles_per_core
        if ca.size and ca.size == cb.size:
            diff.deltas.append(MetricDelta(
                name="active_cycles.l_inf",
                a=0.0, b=float(abs(cb - ca).max()), threshold=threshold,
            ))

    wall_a = a.wall_s if a.wall_s is not None else 0.0
    wall_b = b.wall_s if b.wall_s is not None else 0.0
    diff.wall = MetricDelta(name="wall_s", a=wall_a, b=wall_b,
                            threshold=threshold, semantic=False)

    profile_a = _bottleneck_profile(a)
    profile_b = _bottleneck_profile(b)
    if profile_a is not None and profile_b is not None:
        diff.bottleneck = {
            "a": profile_a.primary,
            "b": profile_b.primary,
            "changed": profile_a.primary != profile_b.primary,
            "quadrant_a": profile_a.quadrant,
            "quadrant_b": profile_b.quadrant,
        }
    return diff


def diff_refs(
    ref_a: str,
    ref_b: str,
    ledger: Optional[HistoryLedger] = None,
    cache: Any = "default",
    threshold: float = DEFAULT_THRESHOLD,
) -> RunDiff:
    """Resolve two references and diff them (the CLI entry point)."""
    return diff_runs(
        resolve_ref(ref_a, ledger=ledger, cache=cache),
        resolve_ref(ref_b, ledger=ledger, cache=cache),
        threshold=threshold,
    )
