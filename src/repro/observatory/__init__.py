"""repro.observatory — cross-run observability (docs/observability.md).

Four pieces, layered on top of the sweep cache and telemetry without
touching either's on-disk formats:

* :mod:`repro.observatory.history` — the append-only run-history
  ledger (``.repro_cache/history.jsonl``) written automatically by
  every simulation;
* :mod:`repro.observatory.diffing` — the run-to-run diff engine
  behind ``python -m repro diff A B``;
* :mod:`repro.observatory.regression` — tolerance bands and the
  e-divisive-lite change-point scan behind ``python -m repro regress``
  and the CI ``regression-gate``;
* :mod:`repro.observatory.progress` / ``.logging`` — live sweep
  progress events and the ``--quiet``/``-v`` status logger.

Submodules are loaded lazily (PEP 562): ``repro.sweep.runner`` imports
:mod:`~repro.observatory.progress` while the ``repro.sweep`` package
is still initializing, and an eager import of the diff engine here
(which needs the fully-built sweep package) would complete that
circle.
"""

from __future__ import annotations

from typing import Any

_EXPORTS = {
    # history
    "HistoryLedger": "repro.observatory.history",
    "RunRecord": "repro.observatory.history",
    "default_ledger": "repro.observatory.history",
    "git_revision": "repro.observatory.history",
    "record_run": "repro.observatory.history",
    "record_bench": "repro.observatory.history",
    # diffing
    "MetricDelta": "repro.observatory.diffing",
    "RunDiff": "repro.observatory.diffing",
    "RunHandle": "repro.observatory.diffing",
    "diff_refs": "repro.observatory.diffing",
    "diff_runs": "repro.observatory.diffing",
    "resolve_ref": "repro.observatory.diffing",
    # regression
    "ChangePoint": "repro.observatory.regression",
    "Finding": "repro.observatory.regression",
    "RegressionReport": "repro.observatory.regression",
    "changepoints": "repro.observatory.regression",
    "compare_bench": "repro.observatory.regression",
    "scan_bench_trajectory": "repro.observatory.regression",
    "scan_history": "repro.observatory.regression",
    # progress / logging
    "EventCollector": "repro.observatory.progress",
    "JsonlProgress": "repro.observatory.progress",
    "ProgressEvent": "repro.observatory.progress",
    "SweepProgress": "repro.observatory.progress",
    "tee": "repro.observatory.progress",
    "Log": "repro.observatory.logging",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module 'repro.observatory' has no attribute {name!r}"
        )
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
