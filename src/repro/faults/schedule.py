"""Declarative fault schedules and the resilience counters.

A :class:`FaultSchedule` names *what* goes wrong and *when*, separately
from the machinery that makes it happen (:mod:`repro.faults.controller`).
Schedules are plain frozen dataclasses so they

* serialize to/from JSON (campaign files, the ``repro faults`` CLI);
* participate in the sweep engine's content-addressed run keys via the
  generic ``extra`` payload — two runs with the same design, workload,
  config, *and schedule* share a cache entry, while fault-free runs
  keep byte-identical keys to a build without this subsystem;
* are reproducible: probabilistic triggers draw from a dedicated
  deterministic stream derived from the run seed, never from global
  state.

Fault taxonomy (Section "co-optimizing data access and load balance"
stress points):

``UNIT_FAIL``
    An NDP unit stops executing tasks.  Its queue is re-placed by the
    scheduler, its Traveller-cache lines are dropped, camps remap, and
    accesses homed in its vault become unreachable.  ``duration_phases``
    turns a permanent failure into a transient one.
``LINK_FAIL``
    One mesh link (an adjacent stack pair) goes down; the NoC reroutes
    minimally over the surviving links and the scheduling cost matrix
    follows.
``LINK_DEGRADE``
    The link survives but each traversal costs ``factor``x the healthy
    per-hop latency (routing may detour around it when profitable).
``VAULT_SLOW``
    A unit's DRAM channel serves each access at ``factor``x latency —
    the classic tail-latency vault without data loss.
"""

from __future__ import annotations

import enum
import json
from dataclasses import asdict, dataclass
from typing import Any, Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

#: child-seed word for the fault RNG stream: keeps fault draws
#: independent from the system RNG (traveller insertion) so adding a
#: schedule never perturbs healthy stochastic behavior.
FAULT_STREAM = 0xFA17


class FaultKind(enum.Enum):
    UNIT_FAIL = "unit_fail"
    LINK_FAIL = "link_fail"
    LINK_DEGRADE = "link_degrade"
    VAULT_SLOW = "vault_slow"


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    Exactly one trigger must be set: ``at_timestamp`` fires at that
    bulk-synchronous phase boundary; ``probability`` is drawn once per
    phase (in schedule order) until the event fires.  ``duration_phases
    = None`` makes the fault permanent; otherwise it recovers that many
    phases after firing.
    """

    kind: FaultKind
    unit: Optional[int] = None                 # UNIT_FAIL / VAULT_SLOW
    link: Optional[Tuple[int, int]] = None     # LINK_FAIL / LINK_DEGRADE
    at_timestamp: Optional[int] = None
    probability: float = 0.0
    duration_phases: Optional[int] = None
    factor: float = 1.0                        # degradation multiplier

    def validate(self) -> None:
        if (self.at_timestamp is None) == (self.probability <= 0.0):
            raise ValueError(
                "exactly one trigger required: at_timestamp or a "
                "positive probability"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability {self.probability} not in [0, 1]")
        if self.duration_phases is not None and self.duration_phases < 1:
            raise ValueError("duration_phases must be >= 1 (or None)")
        if self.kind in (FaultKind.UNIT_FAIL, FaultKind.VAULT_SLOW):
            if self.unit is None:
                raise ValueError(f"{self.kind.value} needs a unit id")
        else:
            if self.link is None or len(self.link) != 2:
                raise ValueError(
                    f"{self.kind.value} needs a (stack, stack) link"
                )
        if self.kind is FaultKind.VAULT_SLOW and self.factor <= 1.0:
            raise ValueError("VAULT_SLOW needs factor > 1")
        if self.kind is FaultKind.LINK_DEGRADE and self.factor <= 1.0:
            raise ValueError("LINK_DEGRADE needs factor > 1")

    def to_dict(self) -> Dict[str, Any]:
        d = asdict(self)
        d["kind"] = self.kind.value
        if self.link is not None:
            d["link"] = list(self.link)
        return {k: v for k, v in d.items() if v is not None}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultEvent":
        link = data.get("link")
        ev = cls(
            kind=FaultKind(data["kind"]),
            unit=data.get("unit"),
            link=tuple(int(x) for x in link) if link is not None else None,
            at_timestamp=data.get("at_timestamp"),
            probability=float(data.get("probability", 0.0)),
            duration_phases=data.get("duration_phases"),
            factor=float(data.get("factor", 1.0)),
        )
        ev.validate()
        return ev


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered, immutable collection of fault events."""

    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "events", tuple(self.events))

    def validate(self) -> None:
        for ev in self.events:
            ev.validate()

    def __bool__(self) -> bool:
        return bool(self.events)

    def __len__(self) -> int:
        return len(self.events)

    # -- serialization -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {"events": [ev.to_dict() for ev in self.events]}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultSchedule":
        return cls(events=tuple(
            FaultEvent.from_dict(e) for e in data.get("events", [])
        ))

    def dump(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "FaultSchedule":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    # -- convenience constructors --------------------------------------
    @classmethod
    def unit_failures(cls, units: Iterable[int], at_timestamp: int = 1,
                      duration_phases: Optional[int] = None,
                      ) -> "FaultSchedule":
        return cls(events=tuple(
            FaultEvent(FaultKind.UNIT_FAIL, unit=int(u),
                       at_timestamp=at_timestamp,
                       duration_phases=duration_phases)
            for u in units
        ))


@dataclass
class ResilienceStats:
    """What the machine endured and how it recovered (RunResult field)."""

    unit_failures: int = 0
    unit_recoveries: int = 0
    link_failures: int = 0
    link_degradations: int = 0
    link_recoveries: int = 0
    vault_slowdowns: int = 0
    vault_recoveries: int = 0
    #: queued tasks re-placed off dead units — zero lost tasks means
    #: tasks_executed matches the healthy run despite this being > 0.
    tasks_reexecuted: int = 0
    #: detection + re-placement cycles charged to the run clock.
    recovery_cycles: float = 0.0
    #: accesses whose home vault was dead or partitioned away.
    unreachable_accesses: int = 0
    #: camp-mapping rebuilds triggered by liveness changes.
    camp_remap_events: int = 0
    #: Traveller-cache lines dropped with their failed unit.
    camp_lines_invalidated: int = 0
    #: makespan ratio vs the same config with no faults (filled by the
    #: campaign driver; 0 when no healthy reference was run).
    slowdown_vs_healthy: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ResilienceStats":
        names = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in names})


def make_random_schedule(
    num_units: int,
    mesh_links: Sequence[Tuple[int, int]],
    unit_fails: int = 0,
    link_fails: int = 0,
    vault_slowdowns: int = 0,
    seed: int = 2023,
    first_timestamp: int = 1,
    timestamp_spread: int = 3,
    vault_factor: float = 4.0,
    duration_phases: Optional[int] = None,
) -> FaultSchedule:
    """Draw a reproducible random campaign from a seed.

    Victims and trigger timestamps come from a ``default_rng`` seeded
    with ``[seed, FAULT_STREAM]`` — the same seed always produces the
    same schedule, independent of any other RNG use in the run.
    """
    rng = np.random.default_rng([int(seed), FAULT_STREAM])
    events = []
    spread = max(1, timestamp_spread)

    def draw_ts() -> int:
        return first_timestamp + int(rng.integers(0, spread))

    if unit_fails:
        if unit_fails >= num_units:
            raise ValueError("cannot fail every unit")
        victims = rng.choice(num_units, size=unit_fails, replace=False)
        for u in sorted(int(v) for v in victims):
            events.append(FaultEvent(
                FaultKind.UNIT_FAIL, unit=u, at_timestamp=draw_ts(),
                duration_phases=duration_phases,
            ))
    if link_fails:
        if link_fails > len(mesh_links):
            raise ValueError("more link failures than mesh links")
        picks = rng.choice(len(mesh_links), size=link_fails, replace=False)
        for i in sorted(int(p) for p in picks):
            events.append(FaultEvent(
                FaultKind.LINK_FAIL, link=tuple(mesh_links[i]),
                at_timestamp=draw_ts(), duration_phases=duration_phases,
            ))
    if vault_slowdowns:
        victims = rng.choice(num_units, size=vault_slowdowns, replace=False)
        for u in sorted(int(v) for v in victims):
            events.append(FaultEvent(
                FaultKind.VAULT_SLOW, unit=u, at_timestamp=draw_ts(),
                factor=vault_factor, duration_phases=duration_phases,
            ))
    schedule = FaultSchedule(events=tuple(events))
    schedule.validate()
    return schedule
