"""Fault-injection & resilience subsystem.

Declarative, seeded fault schedules (:class:`FaultSchedule`) applied to
a running machine at bulk-synchronous phase boundaries by the
:class:`FaultController`, with recovery machinery threaded through the
schedulers, the Traveller camps, the NoC, and the executor — see
``docs/resilience.md``.
"""

from repro.faults.campaign import CampaignResult, run_fault_campaign
from repro.faults.controller import FaultController
from repro.faults.schedule import (
    FAULT_STREAM,
    FaultEvent,
    FaultKind,
    FaultSchedule,
    ResilienceStats,
    make_random_schedule,
)

__all__ = [
    "FAULT_STREAM",
    "CampaignResult",
    "FaultController",
    "FaultEvent",
    "FaultKind",
    "FaultSchedule",
    "ResilienceStats",
    "make_random_schedule",
    "run_fault_campaign",
]
