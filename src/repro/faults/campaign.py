"""Fault campaigns: a healthy reference plus faulted runs, via the sweep.

:func:`run_fault_campaign` fans a set of fault schedules over the sweep
engine (parallel workers, content-addressed cache) alongside one
fault-free reference of the same (design, workload, config).  Each
faulted result's ``resilience.slowdown_vs_healthy`` is filled from the
reference, and :class:`CampaignResult` answers the acceptance question
directly: did the machine lose any tasks?

Cache note: ``slowdown_vs_healthy`` is recomputed from the healthy
reference on every campaign invocation (it is a *relative* metric), so
a cached faulted point keeps its stored counters but gets a fresh
slowdown value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.analysis.metrics import RunResult
from repro.config import SystemConfig
from repro.faults.schedule import FaultSchedule
from repro.sweep.runner import SweepPoint, SweepRunner


@dataclass
class CampaignResult:
    """One fault campaign: the healthy reference plus faulted runs."""

    design: str
    workload: str
    healthy: RunResult
    #: schedule label -> faulted result, in submission order.
    faulted: Dict[str, RunResult] = field(default_factory=dict)
    failures: List[str] = field(default_factory=list)

    def lost_tasks(self, label: str) -> int:
        """Tasks the faulted run failed to execute vs the healthy one.

        Zero is the resilience guarantee: every task stranded on a dead
        unit was re-placed and executed elsewhere.
        """
        return (self.healthy.tasks_executed
                - self.faulted[label].tasks_executed)

    @property
    def total_lost_tasks(self) -> int:
        return sum(self.lost_tasks(label) for label in self.faulted)

    def slowdown(self, label: str) -> float:
        healthy = self.healthy.makespan_cycles
        if healthy <= 0:
            return float("inf")
        return self.faulted[label].makespan_cycles / healthy


def run_fault_campaign(
    design: str,
    workload,
    schedules: Union[FaultSchedule, Sequence[FaultSchedule],
                     Dict[str, FaultSchedule]],
    config: Optional[SystemConfig] = None,
    cache="default",
    jobs: Optional[int] = None,
    progress=None,
    events=None,
    runtime=None,
) -> CampaignResult:
    """Run ``workload`` on ``design`` healthy and under each schedule.

    ``schedules`` may be one schedule, a sequence (labelled ``f0``,
    ``f1``, ...), or a ``{label: schedule}`` dict.  All points (healthy
    reference included) go through the sweep engine, so repeated
    campaigns hit the cache and a crashing point is captured, not fatal.

    ``progress`` takes the legacy per-point text lines; ``events``
    takes the typed per-point stream of
    :mod:`repro.observatory.progress` (cached/done/failed, live TTY
    status).  Every point also lands in the run-history ledger via the
    sweep engine, so campaigns show up in ``repro diff`` / ``repro
    regress --history`` like any other run.
    """
    if isinstance(schedules, FaultSchedule):
        schedules = {"f0": schedules}
    elif not isinstance(schedules, dict):
        schedules = {f"f{i}": s for i, s in enumerate(schedules)}
    for label, sched in schedules.items():
        if not sched:
            raise ValueError(f"schedule {label!r} is empty")
        sched.validate()

    points = [SweepPoint(design=design, workload=workload, config=config,
                         label=f"{design}/healthy")]
    labels = list(schedules)
    points.extend(
        SweepPoint(design=design, workload=workload, config=config,
                   fault_schedule=schedules[label],
                   label=f"{design}/{label}")
        for label in labels
    )

    runner = SweepRunner(cache=cache, jobs=jobs, progress=progress,
                         events=events, runtime=runtime)
    report = runner.run(points)

    healthy_outcome = report.outcomes[0]
    if not healthy_outcome.ok:
        raise RuntimeError(
            f"healthy reference run failed:\n{healthy_outcome.error}"
        )
    healthy = healthy_outcome.result

    result = CampaignResult(
        design=design,
        workload=healthy.workload,
        healthy=healthy,
    )
    for label, outcome in zip(labels, report.outcomes[1:]):
        if not outcome.ok:
            result.failures.append(label)
            continue
        faulted = outcome.result
        if faulted.resilience is not None and healthy.makespan_cycles > 0:
            faulted.resilience.slowdown_vs_healthy = (
                faulted.makespan_cycles / healthy.makespan_cycles
            )
        result.faulted[label] = faulted
    return result
