"""The FaultController: applies a schedule to a live machine.

One controller rides along with one :class:`~repro.core.system.
NdpSystem` run.  The executor calls :meth:`on_phase_start` at every
bulk-synchronous phase boundary; the controller

1. applies due *recoveries* (transient faults whose duration elapsed);
2. fires due *events* — timestamp triggers plus one probabilistic draw
   per pending event per phase, in schedule order, from a dedicated
   seeded stream (bit-reproducible, independent of the system RNG);
3. *synchronizes* the machine: scheduler alive mask, NoC link faults +
   rerouting + cost matrix, DRAM vault multipliers, camp remapping,
   Traveller-cache invalidation of dead units, memory-system
   reachability state;
4. asks the executor to re-place every task stranded on a newly dead
   unit (the zero-lost-tasks guarantee);
5. charges a detection/reconfiguration overhead to the run clock and
   stamps fault/recovery instants on the telemetry timeline.

Faults apply only at phase boundaries — within a phase the alive set is
stable, which is exactly the invariant the bulk-synchronous execution
model gives the hardware (a mid-phase failure is observed at the next
barrier timeout).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.faults.schedule import (
    FAULT_STREAM,
    FaultEvent,
    FaultKind,
    FaultSchedule,
    ResilienceStats,
)


class FaultController:
    """Deterministic fault application + recovery orchestration."""

    #: cycles to detect a fault and reconfigure routing/mapping tables.
    EVENT_OVERHEAD_CYCLES = 1000.0
    #: cycles to re-place one stranded task (scheduler + forward msg).
    RESCHEDULE_CYCLES_PER_TASK = 50.0

    def __init__(
        self,
        schedule: FaultSchedule,
        seed: int,
        num_units: int,
        interconnect,
        dram,
        memory_system,
        context,
        camp_mapper=None,
        telemetry=None,
    ):
        schedule.validate()
        self.schedule = schedule
        self.interconnect = interconnect
        self.dram = dram
        self.memory_system = memory_system
        self.context = context
        self.camp_mapper = camp_mapper
        from repro.telemetry import NULL_TELEMETRY

        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY

        self.num_units = num_units
        self.alive = np.ones(num_units, dtype=bool)
        self.stats = ResilienceStats()
        self._dead_links: set = set()
        self._degraded: Dict[Tuple[int, int], float] = {}
        self._vault_scale = np.ones(num_units, dtype=np.float64)
        self._rng = np.random.default_rng([int(seed), FAULT_STREAM])
        self._fired = [False] * len(schedule.events)
        #: (due_timestamp, event) transient faults awaiting recovery.
        self._recoveries: List[Tuple[int, FaultEvent]] = []
        # Reachability/penalty accounting starts with the first phase —
        # attaching up front keeps behavior identical whether the first
        # event fires at timestamp 0 or later.
        self.memory_system.set_fault_state(None, self.stats)

        self._validate_targets()

    def _validate_targets(self) -> None:
        links = {tuple(sorted(lk)) for lk in
                 self.interconnect.topology.mesh_links()}
        for ev in self.schedule.events:
            if ev.unit is not None and not 0 <= ev.unit < self.num_units:
                raise ValueError(f"fault targets unknown unit {ev.unit}")
            if ev.link is not None and tuple(sorted(ev.link)) not in links:
                raise ValueError(
                    f"fault targets non-adjacent link {ev.link}"
                )

    # ------------------------------------------------------------------
    def eligible_mask(self) -> Optional[np.ndarray]:
        """Units the rebalancers may use; None while all are alive."""
        if bool(self.alive.all()):
            return None
        return self.alive

    # ------------------------------------------------------------------
    def on_phase_start(
        self,
        timestamp: int,
        clock_cycles: float,
        reassign: Callable[[Sequence[int]], int],
    ) -> float:
        """Apply due recoveries and faults; returns overhead cycles."""
        changes = 0
        newly_dead: List[int] = []

        # 1. recoveries whose transient duration elapsed.
        due = [(ts, ev) for ts, ev in self._recoveries if ts <= timestamp]
        if due:
            self._recoveries = [
                (ts, ev) for ts, ev in self._recoveries if ts > timestamp
            ]
            for _, ev in due:
                self._recover(ev, clock_cycles)
                changes += 1

        # 2. newly firing events: timestamp triggers, then one
        #    probabilistic draw per pending event — always in schedule
        #    order so the stream consumption is deterministic.
        for i, ev in enumerate(self.schedule.events):
            if self._fired[i]:
                continue
            if ev.at_timestamp is not None:
                fire = ev.at_timestamp <= timestamp
            else:
                fire = bool(self._rng.random() < ev.probability)
            if not fire:
                continue
            self._fired[i] = True
            if self._apply(ev, clock_cycles, newly_dead):
                changes += 1
                if ev.duration_phases is not None:
                    self._recoveries.append(
                        (timestamp + ev.duration_phases, ev)
                    )

        if not changes:
            return 0.0

        # 3. propagate the new machine state everywhere at once.
        self._sync(newly_dead)

        # 4. re-place stranded tasks now that schedulers see the mask.
        moved = reassign(newly_dead) if newly_dead else 0
        self.stats.tasks_reexecuted += moved

        overhead = (
            changes * self.EVENT_OVERHEAD_CYCLES
            + moved * self.RESCHEDULE_CYCLES_PER_TASK
        )
        self.stats.recovery_cycles += overhead
        return overhead

    # ------------------------------------------------------------------
    def _apply(self, ev: FaultEvent, clock_cycles: float,
               newly_dead: List[int]) -> bool:
        """Mutate controller state for one firing event.

        Returns False when the event is skipped (e.g. it would kill the
        last living unit — the machine must keep executing).
        """
        if ev.kind is FaultKind.UNIT_FAIL:
            unit = int(ev.unit)
            if not self.alive[unit]:
                return False  # already dead (double fault)
            if self.alive.sum() <= 1:
                return False  # never kill the last unit
            self.alive[unit] = False
            newly_dead.append(unit)
            self.stats.unit_failures += 1
            self._instant("fault.unit_fail", clock_cycles, unit=unit)
        elif ev.kind is FaultKind.LINK_FAIL:
            link = tuple(sorted(int(x) for x in ev.link))
            if link in self._dead_links:
                return False
            self._dead_links.add(link)
            self._degraded.pop(link, None)
            self.stats.link_failures += 1
            self._instant("fault.link_fail", clock_cycles,
                          link=list(link))
        elif ev.kind is FaultKind.LINK_DEGRADE:
            link = tuple(sorted(int(x) for x in ev.link))
            if link in self._dead_links:
                return False
            self._degraded[link] = float(ev.factor)
            self.stats.link_degradations += 1
            self._instant("fault.link_degrade", clock_cycles,
                          link=list(link), factor=ev.factor)
        elif ev.kind is FaultKind.VAULT_SLOW:
            unit = int(ev.unit)
            self._vault_scale[unit] = float(ev.factor)
            self.stats.vault_slowdowns += 1
            self._instant("fault.vault_slow", clock_cycles,
                          unit=unit, factor=ev.factor)
        return True

    def _recover(self, ev: FaultEvent, clock_cycles: float) -> None:
        if ev.kind is FaultKind.UNIT_FAIL:
            self.alive[int(ev.unit)] = True
            self.stats.unit_recoveries += 1
            self._instant("recover.unit", clock_cycles, unit=int(ev.unit))
        elif ev.kind is FaultKind.LINK_FAIL:
            self._dead_links.discard(tuple(sorted(int(x) for x in ev.link)))
            self.stats.link_recoveries += 1
            self._instant("recover.link", clock_cycles, link=list(ev.link))
        elif ev.kind is FaultKind.LINK_DEGRADE:
            self._degraded.pop(tuple(sorted(int(x) for x in ev.link)), None)
            self.stats.link_recoveries += 1
            self._instant("recover.link", clock_cycles, link=list(ev.link))
        elif ev.kind is FaultKind.VAULT_SLOW:
            self._vault_scale[int(ev.unit)] = 1.0
            self.stats.vault_recoveries += 1
            self._instant("recover.vault", clock_cycles, unit=int(ev.unit))

    # ------------------------------------------------------------------
    def _sync(self, newly_dead: Sequence[int]) -> None:
        """Push the controller's state into every affected subsystem."""
        all_alive = bool(self.alive.all())
        mask = None if all_alive else self.alive

        # NoC: reroute + rebuild the shared cost matrix in place.
        if self._dead_links or self._degraded:
            self.interconnect.set_link_faults(
                self._dead_links, self._degraded
            )
        else:
            self.interconnect.clear_link_faults()

        # DRAM: per-unit vault latency multipliers.
        self.dram.set_unit_latency_scale(
            None if bool(np.all(self._vault_scale == 1.0))
            else self._vault_scale.copy()
        )

        # Schedulers: candidate masking via the shared context.  The
        # epoch bump drops every scoring memo that baked in values from
        # the (just rebuilt) cost matrix or the old liveness state.
        self.context.alive_mask = mask
        self.context.cost_epoch += 1

        # Traveller camps: remap around dead units; a liveness *or*
        # distance change invalidates the memoized nearest tables.
        if self.camp_mapper is not None:
            self.camp_mapper.set_alive_mask(mask)
            self.stats.camp_remap_events += 1

        # Dead units take their cached lines with them.
        if newly_dead:
            self.stats.camp_lines_invalidated += (
                self.memory_system.invalidate_units(newly_dead)
            )

        # Memory system: reachability checks + penalty accounting.
        self.memory_system.set_fault_state(mask, self.stats)

    def _instant(self, name: str, clock_cycles: float, **kw) -> None:
        tel = self.telemetry
        if tel.enabled:
            tel.timeline.instant(name, tel.cycles_to_ns(clock_cycles), **kw)
