"""Performance benchmark harness (``python -m repro bench``).

Times seeded (design x workload) simulation points with one engine and
writes a ``BENCH_<n>.json`` record at the repository root, starting the
perf trajectory of the simulator itself: ``BENCH_0.json`` is the
pre-optimization scalar baseline, ``BENCH_1.json`` the batched engine,
and future PRs append ``BENCH_2.json``... after their own hot-path
work.  ``docs/performance.md`` explains how to read the records.

Methodology
-----------
* One shared workload instance per workload name: the dataset is built
  once, so the timings cover simulation, not graph generation.
* One untimed warmup run before the matrix absorbs import and
  allocator effects.
* Every point is simulated ``repeats`` times and the **best** wall and
  CPU times are kept — the usual best-of-N defence against scheduler
  noise on shared machines.  Within-file ratios are stable; absolute
  seconds across machines are not comparable.
* ``tasks/s`` and ``accesses/s`` are derived from the RunResult of the
  timed run (``tasks_executed``; L1-entered reads plus DRAM writes), so
  the throughput numbers always describe exactly the simulated work.
"""

from __future__ import annotations

import dataclasses
import json
import re
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.config import SystemConfig, experiment_config

#: file-name pattern of benchmark records at the repository root.
_BENCH_RE = re.compile(r"^BENCH_(\d+)\.json$")

#: schema tag of the payload written by :func:`write_bench`.
SCHEMA = "repro-bench-v1"


def engine_config(engine: str,
                  config: Optional[SystemConfig] = None) -> SystemConfig:
    """``config`` (default: the experiment machine) with the given
    access engine selected."""
    cfg = config if config is not None else experiment_config()
    return dataclasses.replace(
        cfg, memory=dataclasses.replace(cfg.memory, access_engine=engine)
    ).validate()


def _accesses(result) -> int:
    """Memory accesses resolved by the run: every read entering the
    hierarchy (counted at the L1, the first probe of every access flow)
    plus the output writes that go straight to DRAM."""
    return int(result.sram.l1_accesses) + int(result.dram.writes)


def bench_points(
    engine: str,
    designs: Sequence[str],
    workloads: Sequence[str],
    config: Optional[SystemConfig] = None,
    repeats: int = 2,
    warmup: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict:
    """Time the (design x workload) matrix under one engine.

    Returns the ``BENCH_<n>.json`` payload (see module docstring for
    the methodology).  Simulations always run live — a result cache
    would time disk reads, not the simulator.
    """
    from repro.simulate import simulate
    from repro.workloads.base import make_workload

    cfg = engine_config(engine, config)
    shared = {name: make_workload(name) for name in workloads}
    if warmup:
        simulate(designs[0], shared[workloads[0]], config=cfg)

    points: List[Dict] = []
    for wname in workloads:
        for design in designs:
            best_wall = best_cpu = float("inf")
            result = None
            for _ in range(max(1, repeats)):
                w0 = time.perf_counter()
                c0 = time.process_time()
                result = simulate(design, shared[wname], config=cfg)
                cpu = time.process_time() - c0
                wall = time.perf_counter() - w0
                best_wall = min(best_wall, wall)
                best_cpu = min(best_cpu, cpu)
            accesses = _accesses(result)
            point = {
                "design": design,
                "workload": wname,
                "wall_s": round(best_wall, 4),
                "cpu_s": round(best_cpu, 4),
                "tasks": int(result.tasks_executed),
                "accesses": accesses,
                "tasks_per_s": round(result.tasks_executed / best_wall, 1),
                "accesses_per_s": round(accesses / best_wall, 1),
                "makespan_cycles": result.makespan_cycles,
            }
            points.append(point)
            if progress:
                progress(
                    f"{design:3} {wname:8} {best_wall:7.2f}s "
                    f"{point['tasks_per_s']:12,.0f} tasks/s "
                    f"{point['accesses_per_s']:14,.0f} accesses/s"
                )

    from repro.observatory.history import git_revision, hostname

    wall = sum(p["wall_s"] for p in points)
    tasks = sum(p["tasks"] for p in points)
    accesses = sum(p["accesses"] for p in points)
    return {
        "schema": SCHEMA,
        "engine": engine,
        # trajectory provenance: which commit produced the record, and
        # on which machine (absolute seconds only compare within a host)
        "git_rev": git_revision(),
        "hostname": hostname(),
        "designs": list(designs),
        "workloads": list(workloads),
        "repeats": repeats,
        "seed": cfg.seed,
        "mesh": f"{cfg.topology.mesh_rows}x{cfg.topology.mesh_cols}",
        "points": points,
        "totals": {
            "wall_s": round(wall, 4),
            "tasks": tasks,
            "accesses": accesses,
            "tasks_per_s": round(tasks / wall, 1) if wall else 0.0,
            "accesses_per_s": round(accesses / wall, 1) if wall else 0.0,
        },
    }


def bench_warm_sweep(
    engine: str,
    designs: Sequence[str] = ("C", "O"),
    workloads: Sequence[str] = ("pr", "knn"),
    config: Optional[SystemConfig] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict:
    """Time one uncached sweep three ways: legacy cold fork-per-point,
    a fresh :class:`~repro.sweep.runtime.WorkerRuntime` (first pass —
    memos filling), and the same runtime again (steady state — memos
    hot).

    Unlike :func:`bench_points` the workloads are *not* pre-shared:
    amortizing workload generation and derived-table construction
    across points is exactly what the warm runtime claims to do, so it
    stays inside the timed region.  All three passes must agree
    bit-for-bit (``identical``) — a disagreement means the memo layer
    broke determinism and the record should never be committed.
    """
    from repro.sweep.runner import SweepPoint, SweepRunner
    from repro.sweep.runtime import WorkerRuntime
    from repro.sweep.serialize import result_to_dict

    cfg = engine_config(engine, config)
    points = [
        SweepPoint(design=d, workload=w, config=cfg, label=f"{d}/{w}")
        for w in workloads
        for d in designs
    ]

    def one_pass(runtime, label: str):
        t0 = time.perf_counter()
        report = SweepRunner(cache=False, jobs=1,
                             runtime=runtime).run(points)
        dt = time.perf_counter() - t0
        if report.failures:
            raise RuntimeError(
                f"warm-sweep bench pass {label!r} failed: "
                f"{report.failures[0].error}")
        blobs = [
            json.dumps(result_to_dict(o.result), sort_keys=True)
            for o in report.outcomes
        ]
        if progress:
            progress(f"warm-sweep {label:22} {dt:7.2f}s "
                     f"({len(points)} points)")
        return dt, blobs

    cold_s, cold_blobs = one_pass(False, "cold fork-per-point")
    with WorkerRuntime(jobs=1) as rt:
        first_s, first_blobs = one_pass(rt, "warm runtime pass 1")
        steady_s, steady_blobs = one_pass(rt, "warm runtime pass 2")
    return {
        "engine": engine,
        "designs": list(designs),
        "workloads": list(workloads),
        "mesh": f"{cfg.topology.mesh_rows}x{cfg.topology.mesh_cols}",
        "points": len(points),
        "cold_fork_s": round(cold_s, 4),
        "warm_first_s": round(first_s, 4),
        "warm_steady_s": round(steady_s, 4),
        "speedup_first": round(cold_s / first_s, 3) if first_s else 0.0,
        "speedup_steady": round(cold_s / steady_s, 3)
        if steady_s else 0.0,
        "identical": cold_blobs == first_blobs == steady_blobs,
    }


def bench_mesh_point(
    engine: str,
    mesh: str = "8x8",
    design: str = "O",
    workload: str = "pr",
    progress: Optional[Callable[[str], None]] = None,
) -> Dict:
    """Time one live point on a scaled mesh (the trajectory's first
    8x8 record — ROADMAP's larger-mesh validation item)."""
    from repro.simulate import simulate
    from repro.workloads.base import make_workload

    rows, cols = (int(v) for v in mesh.lower().split("x"))
    cfg = engine_config(engine, experiment_config().scaled(rows, cols))
    wl = make_workload(workload)
    w0 = time.perf_counter()
    c0 = time.process_time()
    result = simulate(design, wl, config=cfg)
    cpu = time.process_time() - c0
    wall = time.perf_counter() - w0
    if progress:
        progress(f"{design:3} {workload:8} mesh={mesh} {wall:7.2f}s")
    return {
        "engine": engine,
        "mesh": mesh,
        "design": design,
        "workload": workload,
        "wall_s": round(wall, 4),
        "cpu_s": round(cpu, 4),
        "tasks": int(result.tasks_executed),
        "accesses": _accesses(result),
        "makespan_cycles": result.makespan_cycles,
    }


def next_bench_path(root: Path) -> Path:
    """First unused ``BENCH_<n>.json`` path under ``root`` (created
    on demand, so ``repro bench --out DIR`` works on a fresh DIR)."""
    root.mkdir(parents=True, exist_ok=True)
    taken = {
        int(m.group(1))
        for p in root.iterdir()
        if (m := _BENCH_RE.match(p.name))
    }
    n = 0
    while n in taken:
        n += 1
    return root / f"BENCH_{n}.json"


def write_bench(payload: Dict, path: Path) -> Path:
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_bench(path: Path) -> Dict:
    return json.loads(path.read_text())


def speedup_between(baseline: Dict, candidate: Dict) -> float:
    """Total-wall-seconds ratio baseline/candidate of two records
    (>1 means the candidate is faster)."""
    cand = candidate["totals"]["wall_s"]
    return baseline["totals"]["wall_s"] / cand if cand else float("inf")
