"""Named metrics with hierarchical scopes.

The registry is the flat namespace behind every telemetry number:
dotted names (``unit.3.traveller.hits``) identify one metric each, and
:class:`Scope` objects provide cheap hierarchical prefixes so a
subsystem can mint its own metrics without knowing where it sits in
the tree.

Two registration styles coexist:

* **push** — :class:`Counter`, :class:`Gauge`, :class:`Histogram`
  objects owned by the instrumented code, updated inline (used for
  low-frequency events: scheduler decisions, exchange rounds);
* **pull** — a callable registered with :meth:`MetricRegistry.
  register_pull` and evaluated only when the registry is *collected*
  (at sample points and at run end).  Hot paths that already maintain
  their own stat structs (the traffic meter, DRAM/SRAM/cache stats)
  are exported this way, so enabling telemetry adds zero work per
  memory access — the collector reads the ground-truth counters the
  simulator keeps anyway, which also guarantees the telemetry totals
  match the :class:`~repro.analysis.metrics.RunResult` aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

PullFn = Callable[[], Union[int, float]]


@dataclass
class Counter:
    """A monotonically increasing count."""

    name: str
    value: float = 0.0

    def add(self, n: Union[int, float] = 1) -> None:
        self.value += n

    def inc(self) -> None:
        self.value += 1


@dataclass
class Gauge:
    """A point-in-time value (last write wins)."""

    name: str
    value: float = 0.0

    def set(self, v: Union[int, float]) -> None:
        self.value = float(v)


@dataclass
class Histogram:
    """Streaming summary of an observed distribution.

    Keeps count/sum/min/max plus power-of-two bucket counts — enough
    for latency-style distributions without storing samples.
    """

    name: str
    count: int = 0
    total: float = 0.0
    vmin: float = float("inf")
    vmax: float = float("-inf")
    #: bucket i counts observations in [2**(i-1), 2**i); bucket 0 is < 1.
    buckets: Dict[int, int] = field(default_factory=dict)

    def observe(self, v: Union[int, float]) -> None:
        v = float(v)
        self.count += 1
        self.total += v
        if v < self.vmin:
            self.vmin = v
        if v > self.vmax:
            self.vmax = v
        b = max(0, int(v).bit_length()) if v >= 1.0 else 0
        self.buckets[b] = self.buckets.get(b, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, float]:
        if not self.count:
            return {"count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.vmin,
            "max": self.vmax,
        }


class MetricRegistry:
    """The flat name -> metric table plus the pull-metric hooks."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._pulls: Dict[str, PullFn] = {}

    # ------------------------------------------------------------------
    # minting (idempotent: same name -> same object)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name)
        return h

    def register_pull(self, name: str, fn: PullFn) -> None:
        """Bind ``name`` to a callable read at collect time.

        Re-registering replaces the previous binding (a rebuilt system
        re-binds its probes).
        """
        self._pulls[name] = fn

    def scope(self, prefix: str) -> "Scope":
        """A view of the registry that prefixes every name."""
        return Scope(self, prefix)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def collect(self) -> Dict[str, float]:
        """Every metric's current value, pull metrics evaluated now."""
        out: Dict[str, float] = {}
        for name, c in self._counters.items():
            out[name] = c.value
        for name, g in self._gauges.items():
            out[name] = g.value
        for name, h in self._histograms.items():
            for k, v in h.summary().items():
                out[f"{name}.{k}"] = v
        for name, fn in self._pulls.items():
            out[name] = float(fn())
        return out

    def value(self, name: str) -> float:
        """One metric's current value (pull metrics evaluated now)."""
        if name in self._counters:
            return self._counters[name].value
        if name in self._gauges:
            return self._gauges[name].value
        if name in self._pulls:
            return float(self._pulls[name]())
        raise KeyError(name)

    def names(self) -> List[str]:
        return sorted(
            set(self._counters) | set(self._gauges)
            | set(self._histograms) | set(self._pulls)
        )

    def __len__(self) -> int:
        return len(self.names())


class Scope:
    """A dotted-prefix view of a registry (``unit.3.traveller``)."""

    def __init__(self, registry: MetricRegistry, prefix: str):
        self.registry = registry
        self.prefix = prefix.rstrip(".")

    def _name(self, name: str) -> str:
        return f"{self.prefix}.{name}" if self.prefix else name

    def counter(self, name: str) -> Counter:
        return self.registry.counter(self._name(name))

    def gauge(self, name: str) -> Gauge:
        return self.registry.gauge(self._name(name))

    def histogram(self, name: str) -> Histogram:
        return self.registry.histogram(self._name(name))

    def register_pull(self, name: str, fn: PullFn) -> None:
        self.registry.register_pull(self._name(name), fn)

    def scope(self, prefix: str) -> "Scope":
        return Scope(self.registry, self._name(prefix))
