"""Periodic time-series sampling.

A :class:`Sampler` owns a set of named *probes* — zero-argument
callables returning a scalar or a 1-D vector — and invokes them at
timestamp boundaries, recording one :class:`TimeSeries` (or
:class:`VectorSeries`) row per probe per sample.  ``interval`` thins
the cadence: ``interval=4`` samples every fourth timestamp.

The sampler also accepts *explicit* rows (:meth:`record` /
:meth:`record_vector`) for quantities only the caller can see at the
right moment — e.g. per-unit queue depths at phase start, before the
queues drain.

``callbacks_invoked`` counts every probe call ever made; the
disabled-telemetry overhead guard in the test suite asserts it stays
zero when telemetry is off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Union

import numpy as np

ProbeFn = Callable[[], Union[int, float, np.ndarray]]


@dataclass
class TimeSeries:
    """One scalar quantity sampled over simulated time."""

    name: str
    timestamps: List[int] = field(default_factory=list)
    times_ns: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def append(self, timestamp: int, time_ns: float, value: float) -> None:
        self.timestamps.append(timestamp)
        self.times_ns.append(time_ns)
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.values)

    def deltas(self) -> List[float]:
        """Per-sample increments of a cumulative series."""
        out, prev = [], 0.0
        for v in self.values:
            out.append(v - prev)
            prev = v
        return out

    def to_dict(self) -> Dict[str, list]:
        return {
            "timestamps": list(self.timestamps),
            "times_ns": list(self.times_ns),
            "values": list(self.values),
        }


@dataclass
class VectorSeries:
    """One per-unit (or per-link) vector sampled over simulated time."""

    name: str
    timestamps: List[int] = field(default_factory=list)
    times_ns: List[float] = field(default_factory=list)
    rows: List[List[float]] = field(default_factory=list)

    def append(self, timestamp: int, time_ns: float,
               row: Sequence[float]) -> None:
        self.timestamps.append(timestamp)
        self.times_ns.append(time_ns)
        self.rows.append([float(v) for v in row])

    def __len__(self) -> int:
        return len(self.rows)

    def matrix(self) -> np.ndarray:
        """(samples, width) array of the recorded rows."""
        if not self.rows:
            return np.empty((0, 0), dtype=np.float64)
        return np.asarray(self.rows, dtype=np.float64)

    def to_dict(self) -> Dict[str, list]:
        return {
            "timestamps": list(self.timestamps),
            "times_ns": list(self.times_ns),
            "rows": [list(r) for r in self.rows],
        }


class Sampler:
    """Invokes probes on a timestamp cadence and stores the series."""

    def __init__(self, interval: int = 1):
        if interval < 1:
            raise ValueError("sample interval must be >= 1")
        self.interval = int(interval)
        self._probes: Dict[str, ProbeFn] = {}
        self.scalar_series: Dict[str, TimeSeries] = {}
        self.vector_series: Dict[str, VectorSeries] = {}
        self.samples_taken = 0
        self.callbacks_invoked = 0

    # ------------------------------------------------------------------
    def add_probe(self, name: str, fn: ProbeFn) -> None:
        """Register (or replace) the probe behind series ``name``."""
        self._probes[name] = fn

    def due(self, timestamp: int) -> bool:
        return timestamp % self.interval == 0

    # ------------------------------------------------------------------
    def sample(self, timestamp: int, time_ns: float,
               force: bool = False) -> bool:
        """Run every probe if ``timestamp`` is on the cadence.

        Returns True when a sample was actually taken.  ``force``
        ignores the cadence (the run-end flush, so every series
        carries a final row).
        """
        if not force and not self.due(timestamp):
            return False
        for name, fn in self._probes.items():
            self.callbacks_invoked += 1
            value = fn()
            if isinstance(value, np.ndarray) and value.ndim >= 1:
                self.record_vector(name, timestamp, time_ns, value)
            else:
                self.record(name, timestamp, time_ns, float(value))
        self.samples_taken += 1
        return True

    def record(self, name: str, timestamp: int, time_ns: float,
               value: float) -> None:
        """Append one explicit scalar row to series ``name``."""
        series = self.scalar_series.get(name)
        if series is None:
            series = self.scalar_series[name] = TimeSeries(name)
        series.append(timestamp, time_ns, value)

    def record_vector(self, name: str, timestamp: int, time_ns: float,
                      row: Sequence[float]) -> None:
        """Append one explicit vector row to series ``name``."""
        series = self.vector_series.get(name)
        if series is None:
            series = self.vector_series[name] = VectorSeries(name)
        series.append(timestamp, time_ns, row)

    # ------------------------------------------------------------------
    def series(self, name: str) -> Union[TimeSeries, VectorSeries]:
        if name in self.scalar_series:
            return self.scalar_series[name]
        return self.vector_series[name]

    def names(self) -> List[str]:
        return sorted(set(self.scalar_series) | set(self.vector_series))

    def to_dict(self) -> Dict[str, Dict[str, list]]:
        out: Dict[str, Dict[str, list]] = {}
        for name, s in self.scalar_series.items():
            out[name] = s.to_dict()
        for name, s in self.vector_series.items():
            out[name] = s.to_dict()
        return out
