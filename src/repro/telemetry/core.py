"""The :class:`Telemetry` facade and its disabled null sink.

One ``Telemetry`` object travels with one simulated machine.  It owns

* a :class:`~repro.telemetry.registry.MetricRegistry` (counters /
  gauges / histograms, mostly *pull* metrics bound to the simulator's
  ground-truth stat structs),
* a :class:`~repro.telemetry.sampler.Sampler` (per-timestamp time
  series: queue depths, traveller hit rate, NoC traffic, W-skew),
* a :class:`~repro.telemetry.timeline.Timeline` (phase spans,
  scheduler decisions, counter tracks) exportable as Chrome
  ``trace_event`` JSON.

Null-sink fast path
-------------------
``Telemetry.disabled()`` returns a shared :data:`NULL_TELEMETRY`
singleton whose ``enabled`` flag is False.  Every instrumented hot
path guards on that single attribute (``if tel.enabled: ...``), so a
disabled machine pays one branch per *phase* — not per access — and
the sampler/timeline never see a callback.  The null object still
exposes the full API (its hook methods are no-ops), so call sites
never need ``None`` checks.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence

import numpy as np

from repro.telemetry.registry import MetricRegistry
from repro.telemetry.sampler import Sampler
from repro.telemetry.timeline import DEFAULT_CAPACITY, Timeline

#: above this many units, per-unit counter tracks collapse to
#: min/mean/max aggregates (the full vectors stay in the sampler).
_PER_UNIT_TRACK_LIMIT = 32

#: telemetry-summary schema version.  Version 1 summaries (written
#: before the version field existed) carry no ``version`` key and are
#: read back as 1; bump this when the summary layout changes so the
#: diff engine can warn on cross-version comparisons instead of
#: silently comparing incompatible sidecars.
SUMMARY_VERSION = 2


@dataclass
class TelemetrySummary:
    """The JSON-able digest of one run's telemetry.

    This is what rides on :attr:`RunResult.telemetry
    <repro.analysis.metrics.RunResult.telemetry>` and what the sweep
    cache stores in the ``<key>.telemetry.json`` sidecar — pure data,
    picklable, no references back into the machine.
    """

    counters: Dict[str, float] = field(default_factory=dict)
    series: Dict[str, Dict[str, list]] = field(default_factory=dict)
    events: int = 0
    dropped_events: int = 0
    samples: int = 0
    link_matrix: Optional[list] = None
    meta: Dict[str, Any] = field(default_factory=dict)
    #: schema version of this summary; pre-versioning sidecars (no
    #: ``version`` key on disk) deserialize as 1.
    version: int = SUMMARY_VERSION

    def to_dict(self) -> Dict[str, Any]:
        return {
            "counters": dict(self.counters),
            "series": {k: dict(v) for k, v in self.series.items()},
            "events": self.events,
            "dropped_events": self.dropped_events,
            "samples": self.samples,
            "link_matrix": self.link_matrix,
            "meta": dict(self.meta),
            "version": self.version,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TelemetrySummary":
        return cls(
            counters=dict(data.get("counters", {})),
            series=dict(data.get("series", {})),
            events=int(data.get("events", 0)),
            dropped_events=int(data.get("dropped_events", 0)),
            samples=int(data.get("samples", 0)),
            link_matrix=data.get("link_matrix"),
            meta=dict(data.get("meta", {})),
            version=int(data.get("version", 1)),
        )

    def digest(self, max_counters: int = 32) -> Dict[str, Any]:
        """A compact identity + headline digest for cross-run records.

        The run-history ledger (:mod:`repro.observatory.history`)
        stores this instead of the full summary so ledger lines stay
        small enough for atomic concurrent appends.  ``sha`` is a
        content hash of the *whole* summary — two digests with equal
        hashes describe identical telemetry; the ``counters`` subset
        keeps system-level headline values (per-unit detail dropped).
        """
        blob = json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))
        per_unit = re.compile(r"(^|\.)u\d+(\.|$)")
        head: Dict[str, float] = {}
        for name in sorted(self.counters):
            if per_unit.search(name):
                continue
            head[name] = self.counters[name]
            if len(head) >= max_counters:
                break
        return {
            "sha": hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16],
            "counters": head,
            "events": self.events,
            "samples": self.samples,
            "version": self.version,
        }


class Telemetry:
    """Unified observability for one simulated machine run."""

    enabled: bool = True

    def __init__(
        self,
        sample_interval: int = 1,
        timeline_capacity: Optional[int] = DEFAULT_CAPACITY,
        max_decision_events: int = 20_000,
    ):
        self.registry = MetricRegistry()
        self.sampler = Sampler(interval=sample_interval)
        self.timeline = Timeline(capacity=timeline_capacity)
        self.max_decision_events = max_decision_events
        #: simulated-clock position, maintained by the executor so
        #: low-frequency probes (scheduler decisions) can stamp events
        #: without threading a clock argument everywhere.
        self.now_ns = 0.0
        self._freq_ghz = 1.0
        self._phase_start_ns: Dict[int, float] = {}
        self._decision_events = 0
        #: producer of the per-link traffic heatmap, bound by the
        #: interconnect when metering is on (see LinkMeter).
        self.link_meter = None

    # ------------------------------------------------------------------
    @staticmethod
    def disabled() -> "NullTelemetry":
        """The shared null sink (see module docstring)."""
        return NULL_TELEMETRY

    def bind(self, frequency_ghz: float, **meta: Any) -> None:
        """Attach clock conversion and trace metadata (design, workload)."""
        self._freq_ghz = float(frequency_ghz)
        self.timeline.metadata.update(meta)
        self.timeline.name_process(0, "ndp-system")

    def cycles_to_ns(self, cycles: float) -> float:
        return cycles / self._freq_ghz

    # ------------------------------------------------------------------
    # executor-facing hooks
    # ------------------------------------------------------------------
    def phase_begin(self, timestamp: int, clock_cycles: float,
                    queue_depths: Sequence[float]) -> None:
        """A bulk-synchronous phase is about to execute.

        ``queue_depths`` is the per-unit count of tasks assigned to
        this phase (post stealing/re-forwarding) — the queue-occupancy
        signal of the paper's load-balance argument.
        """
        now = self.cycles_to_ns(clock_cycles)
        self.now_ns = now
        self._phase_start_ns[timestamp] = now
        depths = np.asarray(queue_depths, dtype=np.float64)
        if self.sampler.due(timestamp):
            self.sampler.record_vector("queue.depth", timestamp, now, depths)
            if depths.size:
                if depths.size <= _PER_UNIT_TRACK_LIMIT:
                    values = {f"u{i}": float(d) for i, d in enumerate(depths)}
                else:
                    values = {
                        "max": float(depths.max()),
                        "mean": float(depths.mean()),
                        "min": float(depths.min()),
                    }
                self.timeline.counter("queue.depth", now, values)

    def phase_end(self, timestamp: int, clock_cycles: float,
                  tasks: int, steals: int) -> None:
        """The phase's barrier completed at ``clock_cycles``."""
        end = self.cycles_to_ns(clock_cycles)
        start = self._phase_start_ns.pop(timestamp, self.now_ns)
        self.now_ns = end
        self.timeline.complete(
            f"timestamp {timestamp}", start, max(0.0, end - start),
            tasks=tasks, steals=steals,
        )
        self.registry.counter("run.phases").inc()
        self.registry.counter("run.tasks_executed").add(tasks)
        self.registry.counter("run.steals").add(steals)
        self.sample(timestamp, end)

    def sample(self, timestamp: int, now_ns: Optional[float] = None,
               force: bool = False) -> None:
        """Take a sampler row and mirror key series as counter tracks."""
        now = self.now_ns if now_ns is None else now_ns
        if not self.sampler.sample(timestamp, now, force=force):
            return
        # Mirror the freshest row of each scalar probe series onto the
        # timeline so Perfetto shows them as counter tracks.
        for name, series in self.sampler.scalar_series.items():
            if series.timestamps and series.timestamps[-1] == timestamp:
                self.timeline.counter(name, now, {"value": series.values[-1]})

    def run_end(self, clock_cycles: float, timestamp: int = 0) -> None:
        """Flush a final sample so totals appear even with interval > 1."""
        self.now_ns = self.cycles_to_ns(clock_cycles)
        self.sample(timestamp, self.now_ns, force=True)

    # ------------------------------------------------------------------
    # scheduler-facing hook
    # ------------------------------------------------------------------
    def decision(self, policy: str, task_id: int, spawner: int, chosen: int,
                 cost_mem: float = 0.0, cost_load: float = 0.0,
                 score: float = 0.0, weight: float = 0.0) -> None:
        """One task-placement decision (Equation 1 terms)."""
        reg = self.registry
        reg.counter("scheduler.decisions").inc()
        if chosen != spawner:
            reg.counter("scheduler.migrations").inc()
        reg.histogram("scheduler.cost_mem").observe(cost_mem)
        if self._decision_events >= self.max_decision_events:
            return
        self._decision_events += 1
        self.timeline.instant(
            "scheduler.decide", self.now_ns, tid=int(chosen),
            policy=policy, task=int(task_id), spawner=int(spawner),
            unit=int(chosen), cost_mem=round(float(cost_mem), 3),
            cost_load=round(float(cost_load), 4),
            score=round(float(score), 3), weight=round(float(weight), 3),
        )

    # ------------------------------------------------------------------
    # digest
    # ------------------------------------------------------------------
    def summary(self) -> TelemetrySummary:
        link = None
        if self.link_meter is not None:
            link = self.link_meter.unit_matrix.tolist()
        return TelemetrySummary(
            counters=self.registry.collect(),
            series=self.sampler.to_dict(),
            events=len(self.timeline),
            dropped_events=self.timeline.dropped,
            samples=self.sampler.samples_taken,
            link_matrix=link,
            meta=dict(self.timeline.metadata),
        )


class NullTelemetry(Telemetry):
    """The disabled sink: full API surface, no recording.

    ``enabled`` is False, so instrumented code skips its work; the
    hook methods are overridden to hard no-ops anyway, making the
    object safe even for call sites that forget the guard.  The
    embedded sampler/timeline stay permanently empty — the overhead
    test asserts ``sampler.callbacks_invoked == 0`` after a run.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(timeline_capacity=0)

    def bind(self, frequency_ghz: float, **meta: Any) -> None:
        pass

    def phase_begin(self, timestamp, clock_cycles, queue_depths) -> None:
        pass

    def phase_end(self, timestamp, clock_cycles, tasks, steals) -> None:
        pass

    def sample(self, timestamp, now_ns=None, force=False) -> None:
        pass

    def run_end(self, clock_cycles, timestamp=0) -> None:
        pass

    def decision(self, *args: Any, **kwargs: Any) -> None:
        pass

    def summary(self) -> TelemetrySummary:
        return TelemetrySummary(meta={"enabled": False})


#: the shared null sink — every machine without explicit telemetry
#: uses this object, so the "is telemetry on?" check is one attribute
#: read on a long-lived singleton.
NULL_TELEMETRY = NullTelemetry()


def resolve_telemetry(telemetry: Optional[Telemetry]) -> Telemetry:
    """Normalize an optional telemetry argument to a usable object."""
    if telemetry is None:
        return NULL_TELEMETRY
    return telemetry
