"""Span/event timeline with Chrome ``trace_event`` export.

Events accumulate in simulation order and export to the Chrome/Perfetto
``trace_event`` JSON format (open the file at ``chrome://tracing`` or
https://ui.perfetto.dev) and to JSONL (one event per line, for ad-hoc
``jq``/pandas processing).

Event model
-----------
* **complete** spans (``ph="X"``) — a named interval with a duration:
  executor phases, executed tasks;
* **instant** events (``ph="i"``) — scheduler decisions, steals;
* **counter** events (``ph="C"``) — per-timestamp sampled values:
  queue depths, traveller hit/miss totals.  Perfetto renders each
  counter name as a stacked track.

Timestamps are kept in *nanoseconds of simulated time* internally and
converted to the microseconds the trace format specifies at export.
``pid``/``tid`` group events into Perfetto tracks: pid 0 is the
system-level process (phases, schedulers, aggregate counters); units
appear as threads of pid 0 so per-unit tracks sort together.

A ``capacity`` bound turns the buffer into a ring: the oldest events
drop first (counted in :attr:`dropped`), so tracing a huge run keeps
the tail — the part a timeline viewer usually needs.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterator, List, Optional

#: the default event-buffer bound (events, not bytes).
DEFAULT_CAPACITY = 500_000


@dataclass(frozen=True)
class TraceEvent:
    """One timeline event (Chrome trace_event semantics)."""

    name: str
    ph: str                  # "X" complete, "i" instant, "C" counter
    ts_ns: float             # simulated time, nanoseconds
    dur_ns: float = 0.0      # complete events only
    pid: int = 0
    tid: int = 0
    args: Dict[str, Any] = field(default_factory=dict)

    def to_chrome(self) -> Dict[str, Any]:
        ev: Dict[str, Any] = {
            "name": self.name,
            "ph": self.ph,
            "ts": self.ts_ns / 1000.0,   # trace_event ts unit: us
            "pid": self.pid,
            "tid": self.tid,
        }
        if self.ph == "X":
            ev["dur"] = self.dur_ns / 1000.0
        if self.ph == "i":
            ev["s"] = "t"                # thread-scoped instant
        if self.args:
            ev["args"] = self.args
        return ev


class Timeline:
    """Bounded buffer of :class:`TraceEvent` entries."""

    def __init__(self, capacity: Optional[int] = DEFAULT_CAPACITY):
        self.capacity = capacity
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.dropped = 0
        #: trace-level metadata merged into the exported JSON.
        self.metadata: Dict[str, Any] = {}
        self._thread_names: Dict[tuple, str] = {}
        self._process_names: Dict[int, str] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def push(self, event: TraceEvent) -> None:
        if self.capacity is not None and len(self._events) >= self.capacity:
            self.dropped += 1  # deque evicts the oldest on append
        self._events.append(event)

    def complete(self, name: str, ts_ns: float, dur_ns: float,
                 pid: int = 0, tid: int = 0, **args: Any) -> None:
        """A finished span [ts, ts + dur]."""
        self.push(TraceEvent(name, "X", ts_ns, dur_ns, pid, tid, args))

    def instant(self, name: str, ts_ns: float,
                pid: int = 0, tid: int = 0, **args: Any) -> None:
        self.push(TraceEvent(name, "i", ts_ns, 0.0, pid, tid, args))

    def counter(self, name: str, ts_ns: float,
                values: Dict[str, float], pid: int = 0) -> None:
        """A counter sample; each key becomes a series of the track."""
        self.push(TraceEvent(name, "C", ts_ns, 0.0, pid, 0, dict(values)))

    def name_thread(self, pid: int, tid: int, name: str) -> None:
        self._thread_names[(pid, tid)] = name

    def name_process(self, pid: int, name: str) -> None:
        self._process_names[pid] = name

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def _metadata_events(self) -> List[Dict[str, Any]]:
        out = []
        for pid, name in sorted(self._process_names.items()):
            out.append({
                "name": "process_name", "ph": "M", "ts": 0.0,
                "pid": pid, "tid": 0, "args": {"name": name},
            })
        for (pid, tid), name in sorted(self._thread_names.items()):
            out.append({
                "name": "thread_name", "ph": "M", "ts": 0.0,
                "pid": pid, "tid": tid, "args": {"name": name},
            })
        return out

    def to_chrome(self) -> Dict[str, Any]:
        """The full trace as a Chrome trace_event JSON object."""
        events = self._metadata_events()
        events.extend(e.to_chrome() for e in self._events)
        return {
            "traceEvents": events,
            "displayTimeUnit": "ns",
            "otherData": dict(self.metadata, dropped_events=self.dropped),
        }

    def write_chrome(self, path: str) -> None:
        """Write ``chrome://tracing`` / Perfetto-loadable JSON."""
        with open(path, "w") as fh:
            json.dump(self.to_chrome(), fh)

    def write_jsonl(self, path: str) -> None:
        """One chrome-format event object per line."""
        with open(path, "w") as fh:
            for ev in self._metadata_events():
                fh.write(json.dumps(ev) + "\n")
            for e in self._events:
                fh.write(json.dumps(e.to_chrome()) + "\n")
