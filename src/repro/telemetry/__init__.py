"""Unified observability for the simulator (counters, series, traces).

Quick start::

    from repro.telemetry import Telemetry

    tel = Telemetry(sample_interval=1)
    result = repro.simulate("O", "pr", telemetry=tel)

    tel.registry.value("traveller.hits")      # == result.cache.hits
    tel.sampler.series("exchange.skew")       # W_max / W_mean over time
    tel.timeline.write_chrome("trace.json")   # open in Perfetto

Or from the command line::

    python -m repro trace O pr --out trace.json

See ``docs/telemetry.md`` for the probe map and export formats.
"""

from repro.telemetry.core import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    TelemetrySummary,
    resolve_telemetry,
)
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    Scope,
)
from repro.telemetry.sampler import Sampler, TimeSeries, VectorSeries
from repro.telemetry.timeline import Timeline, TraceEvent

__all__ = [
    "Telemetry",
    "TelemetrySummary",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "resolve_telemetry",
    "MetricRegistry",
    "Scope",
    "Counter",
    "Gauge",
    "Histogram",
    "Sampler",
    "TimeSeries",
    "VectorSeries",
    "Timeline",
    "TraceEvent",
]
