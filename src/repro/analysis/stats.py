"""Small statistics helpers used across benchmarks and reports."""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

import numpy as np


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's cross-workload summary statistic)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("geomean of an empty sequence")
    if (arr <= 0).any():
        raise ValueError("geomean requires strictly positive values")
    return float(np.exp(np.log(arr).mean()))


def quartiles(values: Sequence[float]) -> Dict[str, float]:
    """min / 25% / median / 75% / max — the Figure 2 box-plot stats."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("quartiles of an empty sequence")
    return {
        "min": float(arr.min()),
        "q25": float(np.percentile(arr, 25)),
        "median": float(np.percentile(arr, 50)),
        "q75": float(np.percentile(arr, 75)),
        "max": float(arr.max()),
    }


def imbalance_ratio(values: Sequence[float]) -> float:
    """max/mean load ratio; 1.0 means perfectly balanced."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("imbalance of an empty sequence")
    mean = arr.mean()
    return float(arr.max() / mean) if mean > 0 else 1.0


def coefficient_of_variation(values: Sequence[float]) -> float:
    """std/mean; another scalar view of load spread."""
    arr = np.asarray(values, dtype=np.float64)
    mean = arr.mean()
    return float(arr.std() / mean) if mean > 0 else 0.0


def distribution_summary(values: Sequence[float]) -> Dict[str, float]:
    """Quartiles plus imbalance and CoV in one dict."""
    out = quartiles(values)
    out["imbalance"] = imbalance_ratio(values)
    out["cov"] = coefficient_of_variation(values)
    return out
