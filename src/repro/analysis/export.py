"""Exporting run results to CSV / JSON.

Downstream users typically want the raw numbers out of the simulator
for their own plotting pipelines; these helpers flatten
:class:`~repro.analysis.metrics.RunResult` objects into rows with
stable column names.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, Iterable, List, Mapping

from repro.analysis.metrics import RunResult

#: flat columns exported for every run, in order.
COLUMNS = (
    "design",
    "workload",
    "makespan_cycles",
    "tasks_executed",
    "timestamps_executed",
    "steals",
    "instructions",
    "inter_hops",
    "intra_transfers",
    "load_imbalance",
    "busiest_core_cycles",
    "mean_core_cycles",
    "dram_reads",
    "dram_writes",
    "cache_fills",
    "cache_hits",
    "cache_misses",
    "cache_hit_rate",
    "energy_core_sram_pj",
    "energy_dram_pj",
    "energy_interconnect_pj",
    "energy_static_pj",
    "energy_total_pj",
)


def result_row(result: RunResult) -> Dict[str, object]:
    """Flatten one run into a column -> value mapping."""
    cycles = result.active_cycles_per_core
    return {
        "design": result.design,
        "workload": result.workload,
        "makespan_cycles": result.makespan_cycles,
        "tasks_executed": result.tasks_executed,
        "timestamps_executed": result.timestamps_executed,
        "steals": result.steals,
        "instructions": result.instructions,
        "inter_hops": result.traffic.inter_hops,
        "intra_transfers": result.traffic.intra_transfers,
        "load_imbalance": result.load_imbalance(),
        "busiest_core_cycles": result.busiest_core_cycles(),
        "mean_core_cycles": float(cycles.mean()) if cycles.size else 0.0,
        "dram_reads": result.dram.reads,
        "dram_writes": result.dram.writes,
        "cache_fills": result.dram.cache_fills,
        "cache_hits": result.cache.hits,
        "cache_misses": result.cache.misses,
        "cache_hit_rate": result.cache.hit_rate,
        "energy_core_sram_pj": result.energy.core_sram_pj,
        "energy_dram_pj": result.energy.dram_pj,
        "energy_interconnect_pj": result.energy.interconnect_pj,
        "energy_static_pj": result.energy.static_pj,
        "energy_total_pj": result.energy.total_pj,
    }


def to_csv(results: Iterable[RunResult]) -> str:
    """Render runs as CSV text with a header row."""
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=COLUMNS, lineterminator="\n")
    writer.writeheader()
    for result in results:
        writer.writerow(result_row(result))
    return buf.getvalue()


def to_json(results: Iterable[RunResult], indent: int = 2) -> str:
    """Render runs as a JSON array of flat records."""
    return json.dumps([result_row(r) for r in results], indent=indent)


def write_csv(path: str, results: Iterable[RunResult]) -> None:
    with open(path, "w") as fh:
        fh.write(to_csv(results))


def write_json(path: str, results: Iterable[RunResult]) -> None:
    with open(path, "w") as fh:
        fh.write(to_json(results))
