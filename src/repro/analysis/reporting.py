"""Paper-style textual rendering of results.

The benchmarks regenerate each figure as rows/series of numbers printed
to stdout (absolute values and baseline-normalised ratios), matching
the quantities on the paper's axes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence


def normalize(values: Mapping[str, float], baseline_key: str) -> Dict[str, float]:
    """Divide every value by the baseline entry's value."""
    base = values[baseline_key]
    if base == 0:
        raise ZeroDivisionError(f"baseline {baseline_key!r} is zero")
    return {k: v / base for k, v in values.items()}


def format_comparison_table(
    title: str,
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    cells: Sequence[Sequence[float]],
    fmt: str = "{:.3f}",
    col_width: int = 9,
) -> str:
    """Render a labelled grid, e.g. designs x workloads (Figure 6)."""
    lines = [title, "-" * max(len(title), 20)]
    header = " " * 10 + "".join(c.rjust(col_width) for c in col_labels)
    lines.append(header)
    for label, row in zip(row_labels, cells):
        body = "".join(fmt.format(v).rjust(col_width) for v in row)
        lines.append(label.ljust(10) + body)
    return "\n".join(lines)


def format_series(
    title: str,
    x_label: str,
    xs: Sequence,
    series: Mapping[str, Sequence[float]],
    fmt: str = "{:.3f}",
    col_width: int = 10,
) -> str:
    """Render sweep results: one row per x, one column per series."""
    lines = [title, "-" * max(len(title), 20)]
    header = x_label.ljust(12) + "".join(
        name.rjust(col_width) for name in series
    )
    lines.append(header)
    for i, x in enumerate(xs):
        row = str(x).ljust(12) + "".join(
            fmt.format(values[i]).rjust(col_width) for values in series.values()
        )
        lines.append(row)
    return "\n".join(lines)


def format_breakdown(
    title: str,
    labels: Sequence[str],
    components: Mapping[str, Sequence[float]],
    fmt: str = "{:.3f}",
    col_width: int = 13,
) -> str:
    """Render stacked-bar data (Figure 7): rows = designs, cols = parts."""
    lines = [title, "-" * max(len(title), 20)]
    header = " " * 10 + "".join(c.rjust(col_width) for c in components)
    header += "total".rjust(col_width)
    lines.append(header)
    n = len(labels)
    for i in range(n):
        vals = [components[c][i] for c in components]
        row = labels[i].ljust(10)
        row += "".join(fmt.format(v).rjust(col_width) for v in vals)
        row += fmt.format(sum(vals)).rjust(col_width)
        lines.append(row)
    return "\n".join(lines)
