"""The result record of one simulated run.

A :class:`RunResult` bundles every quantity the paper's figures read:

* performance  -- total makespan in cycles (Figures 2, 6, 10, 13, 17, 18)
* remote access-- inter-stack mesh hops (Figures 2, 8, 11, 14, 15, 17)
* load balance -- per-core active cycles (Figures 2, 9)
* energy       -- the four-component breakdown (Figures 7, 10, 12, 13, 16)
* cache/sched  -- hit rates, insertions, steals (design-choice studies)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

from repro.arch.dram import DramStats
from repro.arch.energy import EnergyBreakdown
from repro.arch.noc import TrafficMeter
from repro.arch.sram import SramStats
from repro.core.cache.traveller import CacheStatsTotal

if TYPE_CHECKING:  # import cycle: telemetry is run-time independent
    from repro.faults.schedule import ResilienceStats
    from repro.telemetry import TelemetrySummary


@dataclass
class RunResult:
    """Everything measured in one (design, workload) simulation."""

    design: str
    workload: str
    makespan_cycles: float
    active_cycles_per_core: np.ndarray
    traffic: TrafficMeter
    dram: DramStats
    sram: SramStats
    cache: CacheStatsTotal
    energy: EnergyBreakdown
    tasks_executed: int = 0
    timestamps_executed: int = 0
    steals: int = 0
    instructions: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)
    #: Populated only when the run was instrumented (see
    #: :mod:`repro.telemetry`); excluded from sweep-cache JSON.
    telemetry: Optional["TelemetrySummary"] = None
    #: Populated only when the run carried a fault schedule (see
    #: :mod:`repro.faults`); serialized to the sweep cache, but absent
    #: from fault-free JSON so healthy entries stay byte-identical.
    resilience: Optional["ResilienceStats"] = None

    # ------------------------------------------------------------------
    # derived metrics
    # ------------------------------------------------------------------
    @property
    def inter_hops(self) -> int:
        """Figure 8's remote-access metric."""
        return self.traffic.inter_hops

    @property
    def total_energy_pj(self) -> float:
        return self.energy.total_pj

    def speedup_over(self, baseline: "RunResult") -> float:
        """Performance relative to another run (Figure 6)."""
        if self.makespan_cycles <= 0:
            return float("inf")
        return baseline.makespan_cycles / self.makespan_cycles

    def energy_ratio_over(self, baseline: "RunResult") -> float:
        """Energy normalised to another run (Figure 7)."""
        denom = baseline.total_energy_pj
        return self.total_energy_pj / denom if denom else float("inf")

    def hops_ratio_over(self, baseline: "RunResult") -> float:
        """Inter-stack hops normalised to another run (Figure 8)."""
        denom = baseline.inter_hops
        if denom == 0:
            return 0.0 if self.inter_hops == 0 else float("inf")
        return self.inter_hops / denom

    def sorted_active_cycles(self) -> np.ndarray:
        """Per-core active cycles in ascending order (Figure 9 curves)."""
        return np.sort(self.active_cycles_per_core)

    def load_imbalance(self) -> float:
        """max/mean of per-core active cycles (1.0 = perfectly flat)."""
        from repro.analysis.stats import imbalance_ratio

        return imbalance_ratio(self.active_cycles_per_core)

    def busiest_core_cycles(self) -> float:
        return float(self.active_cycles_per_core.max())

    def summary(self) -> str:
        return (
            f"[{self.design}/{self.workload}] "
            f"makespan={self.makespan_cycles:,.0f} cyc, "
            f"hops={self.inter_hops:,}, "
            f"imbalance={self.load_imbalance():.2f}, "
            f"energy={self.energy.total_uj:,.1f} uJ, "
            f"tasks={self.tasks_executed:,}"
        )
