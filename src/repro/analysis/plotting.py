"""Terminal plotting: the figures, rendered as text.

The benchmark harness prints every figure's numbers; these helpers
additionally render them as ASCII charts so a terminal user can *see*
the shapes the paper plots — grouped bar charts for the speedup/energy
figures, line series for the sweeps, and box plots for the Figure 2/9
load distributions.  No plotting dependency required.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

_FULL = "█"
_PART = " ▏▎▍▌▋▊▉█"


def _bar(value: float, vmax: float, width: int) -> str:
    """A horizontal bar of ``value`` scaled so ``vmax`` fills ``width``."""
    if vmax <= 0 or value <= 0:
        return ""
    cells = value / vmax * width
    whole = int(cells)
    frac = int(round((cells - whole) * 8))
    if frac == 8:
        whole, frac = whole + 1, 0
    return _FULL * whole + (_PART[frac] if frac else "")


def bar_chart(
    title: str,
    values: Mapping[str, float],
    width: int = 40,
    fmt: str = "{:.2f}",
    baseline: Optional[str] = None,
) -> str:
    """Horizontal bar chart of labelled values.

    With ``baseline`` set, a ``|`` gridline marks the baseline's value
    so over/under-performance is visible at a glance.
    """
    if not values:
        raise ValueError("bar_chart needs at least one value")
    vmax = max(values.values())
    label_w = max(len(k) for k in values)
    lines = [title]
    base_col = None
    if baseline is not None and vmax > 0:
        base_col = int(values[baseline] / vmax * width)
    for name, v in values.items():
        bar = _bar(v, vmax, width)
        if base_col is not None and len(bar) < base_col:
            bar = bar.ljust(base_col) + "|"
        lines.append(f"  {name.ljust(label_w)} {fmt.format(v):>8} {bar}")
    return "\n".join(lines)


def grouped_bar_chart(
    title: str,
    groups: Mapping[str, Mapping[str, float]],
    width: int = 40,
    fmt: str = "{:.2f}",
) -> str:
    """One bar block per group (e.g. per workload), shared scale."""
    if not groups:
        raise ValueError("grouped_bar_chart needs at least one group")
    vmax = max(
        (v for series in groups.values() for v in series.values()),
        default=0.0,
    )
    label_w = max(
        len(k) for series in groups.values() for k in series
    )
    lines = [title]
    for group, series in groups.items():
        lines.append(f"{group}:")
        for name, v in series.items():
            lines.append(
                f"  {name.ljust(label_w)} {fmt.format(v):>8} "
                f"{_bar(v, vmax, width)}"
            )
    return "\n".join(lines)


def line_series(
    title: str,
    xs: Sequence,
    series: Mapping[str, Sequence[float]],
    height: int = 10,
    width: Optional[int] = None,
) -> str:
    """Multi-series line plot on a character grid.

    Each series gets a marker (its first letter, or a digit on
    collision); points are scaled to the shared y-range.
    """
    if not series:
        raise ValueError("line_series needs at least one series")
    n = len(xs)
    if any(len(v) != n for v in series.values()):
        raise ValueError("every series must have one value per x")
    width = width or max(24, 4 * n)
    all_vals = np.array([v for vals in series.values() for v in vals],
                        dtype=np.float64)
    lo, hi = float(all_vals.min()), float(all_vals.max())
    if hi == lo:
        hi = lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    markers: Dict[str, str] = {}
    used = set()
    for i, name in enumerate(series):
        mark = name[0]
        if mark in used:
            mark = str(i)
        used.add(mark)
        markers[name] = mark

    for name, vals in series.items():
        for i, v in enumerate(vals):
            col = int(i / max(1, n - 1) * (width - 1))
            row = int((1.0 - (v - lo) / (hi - lo)) * (height - 1))
            grid[row][col] = markers[name]

    lines = [title]
    lines.append(f"  {hi:10.3g} ┐")
    for row in grid:
        lines.append("             │" + "".join(row))
    lines.append(f"  {lo:10.3g} ┘")
    lines.append("             " + f" x: {xs[0]} .. {xs[-1]}")
    legend = "  ".join(f"{m}={name}" for name, m in markers.items())
    lines.append(f"             {legend}")
    return "\n".join(lines)


def box_plot(
    title: str,
    distributions: Mapping[str, Sequence[float]],
    width: int = 50,
) -> str:
    """Figure 2/9-style box plots (min/quartiles/max) on one scale."""
    if not distributions:
        raise ValueError("box_plot needs at least one distribution")
    from repro.analysis.stats import quartiles

    stats = {}
    for name, values in distributions.items():
        if len(values) == 0:
            raise ValueError(f"distribution {name!r} is empty")
        q = quartiles(values)
        stats[name] = (q["min"], q["q25"], q["median"], q["q75"], q["max"])
    lo = min(s[0] for s in stats.values())
    hi = max(s[4] for s in stats.values())
    if hi == lo:
        hi = lo + 1.0

    def col(v: float) -> int:
        return int((v - lo) / (hi - lo) * (width - 1))

    label_w = max(len(k) for k in stats)
    lines = [title, f"  scale: {lo:.3g} .. {hi:.3g}"]
    for name, (mn, q1, med, q3, mx) in stats.items():
        row = [" "] * width
        for i in range(col(mn), col(mx) + 1):
            row[i] = "-"
        for i in range(col(q1), col(q3) + 1):
            row[i] = "="
        row[col(mn)] = "|"
        row[col(mx)] = "|"
        row[col(med)] = "#"
        lines.append(f"  {name.ljust(label_w)} {''.join(row)}")
    lines.append("  legend: |-min/max  =interquartile  #median")
    return "\n".join(lines)


def heatmap(
    title: str,
    matrix,
    row_labels: Optional[Sequence[str]] = None,
    col_labels: Optional[Sequence[str]] = None,
    fmt: str = "{:.3g}",
) -> str:
    """A 2-D intensity map on shaded character cells.

    Renders e.g. the NoC link-traffic matrix (rows = source stacks,
    columns = destinations) the telemetry subsystem collects: cell
    shade is the value relative to the matrix maximum, with the scale
    printed underneath.  ``row_labels``/``col_labels`` default to
    indices.
    """
    arr = np.asarray(matrix, dtype=np.float64)
    if arr.ndim != 2 or arr.size == 0:
        raise ValueError("heatmap needs a non-empty 2-D matrix")
    rows, cols = arr.shape
    row_labels = list(row_labels) if row_labels is not None else [
        str(i) for i in range(rows)
    ]
    col_labels = list(col_labels) if col_labels is not None else [
        str(j) for j in range(cols)
    ]
    if len(row_labels) != rows or len(col_labels) != cols:
        raise ValueError("label lengths must match the matrix shape")
    vmax = float(arr.max())
    shades = " ░▒▓█"
    label_w = max(len(s) for s in row_labels)
    cell_w = max(2, max(len(s) for s in col_labels))

    def cell(v: float) -> str:
        if vmax <= 0:
            return shades[0] * cell_w
        idx = int(np.ceil(v / vmax * (len(shades) - 1)))
        return shades[min(idx, len(shades) - 1)] * cell_w

    lines = [title]
    lines.append(
        " " * (label_w + 3)
        + " ".join(s.rjust(cell_w) for s in col_labels)
    )
    for i in range(rows):
        lines.append(
            f"  {row_labels[i].rjust(label_w)} "
            + " ".join(cell(arr[i, j]) for j in range(cols))
        )
    lines.append(
        f"  scale: ' '=0 .. '█'={fmt.format(vmax)}"
    )
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """A one-line trend of values (eight-level blocks)."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("sparkline needs values")
    lo, hi = float(arr.min()), float(arr.max())
    if hi == lo:
        return _PART[4] * len(arr)
    blocks = " ▁▂▃▄▅▆▇█"
    out = []
    for v in arr:
        idx = 1 + int((v - lo) / (hi - lo) * 7)
        out.append(blocks[idx])
    return "".join(out)
