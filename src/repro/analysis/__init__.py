"""Run results, statistics, and paper-style reporting."""

from repro.analysis.metrics import RunResult
from repro.analysis.stats import (
    distribution_summary,
    geomean,
    imbalance_ratio,
    quartiles,
)
from repro.analysis.reporting import (
    format_comparison_table,
    format_series,
    normalize,
)
from repro.analysis.plotting import (
    bar_chart,
    box_plot,
    grouped_bar_chart,
    line_series,
    sparkline,
)
from repro.analysis.export import to_csv, to_json, write_csv, write_json

__all__ = [
    "RunResult",
    "geomean",
    "imbalance_ratio",
    "quartiles",
    "distribution_summary",
    "format_comparison_table",
    "format_series",
    "normalize",
    "bar_chart",
    "box_plot",
    "grouped_bar_chart",
    "line_series",
    "sparkline",
    "to_csv",
    "to_json",
    "write_csv",
    "write_json",
]
