"""Periodic, hierarchical exchange of per-unit workload counters.

Section 5.2: every unit maintains ``W_u`` — the summed workloads of the
tasks sitting in its queue.  The hybrid scheduler needs everyone else's
``W_u`` too, so the units exchange their counters hierarchically
(collect within a stack, then one representative per stack broadcasts)
every ``exchange_interval_cycles``.  Remote values are therefore *stale*
between exchanges, which Figure 18 shows is harmless across a 32x range
of intervals.

The simulator keeps the true ``W`` vector and hands schedulers a
snapshot that is refreshed when simulated scheduling time crosses an
exchange boundary.  It also counts the exchange messages so their
(tiny) interconnect energy can be charged.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.arch.topology import Topology


@dataclass
class ExchangeStats:
    rounds: int = 0
    intra_messages: int = 0
    inter_messages: int = 0


class WorkloadExchange:
    """Staleness-aware view of the per-unit workload counters."""

    def __init__(
        self,
        topology: Topology,
        interval_cycles: float,
    ):
        if interval_cycles <= 0:
            raise ValueError("interval must be positive")
        self.topology = topology
        self.interval_cycles = float(interval_cycles)
        n = topology.num_units
        # The true counters live in a plain Python list: they are
        # read-modify-written a few times per task, where list item
        # access beats ndarray item access several-fold.  Consumers of
        # whole vectors get ndarray views/copies built from the same
        # float values.
        self._true = [0.0] * n
        self._snapshot = np.zeros(n, dtype=np.float64)
        self._last_exchange = 0.0
        self.stats = ExchangeStats()
        #: bumped on every snapshot write; memo key for consumers that
        #: cache values derived from the (stale) snapshot.
        self.generation: int = 0

    # ------------------------------------------------------------------
    # true counter maintenance (enqueue/dequeue bookkeeping)
    # ------------------------------------------------------------------
    def on_enqueue(self, unit: int, workload: float) -> None:
        self._true[unit] += workload

    def on_dequeue(self, unit: int, workload: float) -> None:
        left = self._true[unit] - workload
        self._true[unit] = left if left > 0.0 else 0.0

    def move(self, src: int, dst: int, workload: float) -> None:
        """A task migrated between queues (e.g. stolen)."""
        self.on_dequeue(src, workload)
        self.on_enqueue(dst, workload)

    @property
    def true_workloads(self) -> np.ndarray:
        v = np.array(self._true)
        v.flags.writeable = False
        return v

    def visible_workloads(self, observer: int) -> np.ndarray:
        """The W vector as ``observer``'s scheduler sees it.

        Every entry is the last exchanged snapshot — the same staleness
        for every unit, including the observer's own queue.  Mixing in
        fresher information for *some* entries (the observer's own
        counter, or its own sends since the snapshot) systematically
        biases the comparison: each scheduler then sees the units it
        knows best as the most loaded and pushes its own tasks away, a
        machine-wide scatter that grows with snapshot staleness.  The
        ``observer`` argument is kept for interface stability (and for
        subclasses modelling fresher views).
        """
        v = self._snapshot.view()
        v.flags.writeable = False
        return v

    # ------------------------------------------------------------------
    # snapshot protocol
    # ------------------------------------------------------------------
    def advance(self, now_cycles: float) -> bool:
        """Refresh the snapshot if an exchange boundary was crossed.

        Returns True when an exchange happened.  Multiple missed
        boundaries collapse into one refresh (only the newest data
        matters).
        """
        if now_cycles - self._last_exchange < self.interval_cycles:
            return False
        self._snapshot[:] = self._true
        self.generation += 1
        self._last_exchange = (
            now_cycles - (now_cycles - self._last_exchange) % self.interval_cycles
        )
        self._account_round()
        return True

    def force_exchange(self, now_cycles: float = 0.0) -> None:
        """Unconditional refresh (used at timestamp boundaries)."""
        self._snapshot[:] = self._true
        self.generation += 1
        self._last_exchange = now_cycles
        self._account_round()

    def _account_round(self) -> None:
        topo = self.topology
        self.stats.rounds += 1
        # Within each stack: every unit sends its counter to one collector.
        self.stats.intra_messages += topo.num_stacks * (topo.units_per_stack - 1)
        # Across stacks: each stack representative broadcasts to the rest.
        self.stats.inter_messages += topo.num_stacks * (topo.num_stacks - 1)

    @property
    def snapshot(self) -> np.ndarray:
        """The stale W vector visible to all schedulers."""
        v = self._snapshot.view()
        v.flags.writeable = False
        return v

    def snapshot_mean(self) -> float:
        return float(self._snapshot.mean())

    def skew(self) -> float:
        """W_max / W_mean of the *true* counters (1.0 = balanced).

        This is the queue-imbalance signal the hybrid policy's
        cost_load term acts on (Equation 3), sampled by the telemetry
        subsystem to show imbalance evolving over a run.
        """
        true = np.array(self._true)
        mean = float(true.mean())
        if mean <= 0.0:
            return 1.0
        return float(true.max()) / mean

    def snapshot_skew(self) -> float:
        """W_max / W_mean as the schedulers currently see it (stale)."""
        mean = float(self._snapshot.mean())
        if mean <= 0.0:
            return 1.0
        return float(self._snapshot.max()) / mean

    def reset(self) -> None:
        self._true = [0.0] * len(self._true)
        self._snapshot[:] = 0.0
        self.generation += 1
        self._last_exchange = 0.0
