"""Task-based runtime: the Swarm-like programming/execution model.

Implements Section 3.1 of the paper — tasks with timestamps and hints,
bulk-synchronous execution, per-unit task queues with scheduling and
prefetch windows, and the periodic workload-information exchange.
"""

from repro.runtime.task import Task, TaskHint, TaskContext
from repro.runtime.queue import TaskQueue
from repro.runtime.workload_exchange import WorkloadExchange
from repro.runtime.trace import TaskRecord, TaskTraceRecorder

__all__ = [
    "Task",
    "TaskHint",
    "TaskContext",
    "TaskQueue",
    "WorkloadExchange",
    "TaskRecord",
    "TaskTraceRecorder",
]
