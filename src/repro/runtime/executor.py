"""Bulk-synchronous task execution engine (Sections 3.1-3.2).

Each *timestamp* is one bulk-synchronous phase:

1. **Assignment** — root tasks are placed by the active scheduling
   policy before the first phase; every task spawned *during* a phase
   is scheduled immediately at its spawn point, exactly as the hardware
   scheduler drains its scheduling window while the cores execute.
   The workload-exchange snapshot refreshes whenever the simulated
   clock crosses an exchange boundary, so the hybrid policy sees
   progressively staler remote counters between refreshes.
2. **Stealing** (design Sl only) — before a phase executes, idle units
   steal queue tails from the busiest units.  Steal decisions are
   distance-blind (they balance hint workloads); the extra remote
   access cost and the per-steal overhead are paid at execution time.
3. **Execution** — units drain their queues on their cores in global
   time order (a heap over per-unit clocks interleaves the units, so
   cache insertions happen in an order close to real concurrency).
   Task functions run *for real*: they compute the workload's actual
   values and may ``enqueue_task`` children for later timestamps.
4. **Barrier** — the phase makespan is the slowest unit; Traveller
   caches, L1s and prefetch buffers are bulk-invalidated; primary-data
   updates become visible (the workload applies its double-buffer
   swap via the ``on_barrier`` hook).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.arch.ndp_unit import NdpUnit
from repro.config import SystemConfig
from repro.core.memory_system import MemorySystem
from repro.core.scheduler.base import Scheduler
from repro.core.scheduler.work_stealing import rebalance_by_stealing
from repro.runtime.task import Task, TaskContext
from repro.runtime.workload_exchange import WorkloadExchange


def _interleave_by_spawner(tasks: Sequence[Task]) -> List[Task]:
    """Round-robin the tasks across their spawner units."""
    by_spawner: Dict[int, List[Task]] = {}
    for t in tasks:
        by_spawner.setdefault(t.spawner_unit, []).append(t)
    from collections import deque

    queues = [deque(q) for q in by_spawner.values()]
    out: List[Task] = []
    while queues:
        queues = [q for q in queues if q]
        for q in queues:
            if q:
                out.append(q.popleft())
    return out


@dataclass
class ExecutionTrace:
    """Aggregate outcome of one run (before energy integration)."""

    makespan_cycles: float = 0.0
    timestamps_executed: int = 0
    tasks_executed: int = 0
    steals: int = 0
    instructions: float = 0.0
    # Cycles spent detecting faults and re-placing stranded tasks
    # (included in makespan_cycles; zero on healthy runs).
    recovery_cycles: float = 0.0
    # Per-phase makespans, for inspection.
    phase_makespans: List[float] = field(default_factory=list)

    def record_phase(self, makespan: float) -> None:
        self.phase_makespans.append(makespan)
        self.makespan_cycles += makespan
        self.timestamps_executed += 1


class BulkSyncExecutor:
    """Drives tasks through assignment, stealing, execution, barrier."""

    #: fixed cost of the system-wide barrier between timestamps
    BARRIER_CYCLES = 500.0

    def __init__(
        self,
        config: SystemConfig,
        units: Sequence[NdpUnit],
        scheduler: Scheduler,
        memory_system: MemorySystem,
        exchange: WorkloadExchange,
    ):
        self.config = config
        self.units = units
        self.scheduler = scheduler
        self.memory_system = memory_system
        self.exchange = exchange
        self._freq = config.core.frequency_ghz
        self._hide = config.scheduler.prefetch_hide_fraction
        self._steal_overhead = config.scheduler.steal_overhead_cycles
        self._throughput = config.num_units * config.core.cores_per_unit
        # The prefetch unit issues a task's hint addresses back to back
        # at the channel service rate while the *previous* task
        # executes, so arrivals at the serving channels spread out
        # rather than bursting.  The spread is capped so that a huge
        # task cannot push arrivals far into the future (the service
        # clocks assume near-monotone arrivals).
        self._issue_spacing_ns = config.memory.service_ns
        self._issue_spread_cap_ns = 300.0
        # Optional per-task tracing (see repro.runtime.trace).
        self.recorder = None
        # Fault controller (repro.faults), attached by NdpSystem when a
        # schedule is configured; None keeps the healthy fast path.
        self.faults = None
        # Telemetry sink; NdpSystem swaps in a live one when enabled.
        # Per-phase hooks guard on .enabled, so the disabled path costs
        # one attribute check per phase.
        from repro.telemetry import NULL_TELEMETRY

        self.telemetry = NULL_TELEMETRY

    # ------------------------------------------------------------------
    def run(
        self,
        root_tasks: Sequence[Task],
        state: Any = None,
        max_timestamps: Optional[int] = None,
        on_barrier: Optional[
            Callable[[int, Any], Optional[Sequence[Task]]]
        ] = None,
    ) -> ExecutionTrace:
        """Execute a task graph to completion.

        ``on_barrier(timestamp, state)`` runs after each phase — the
        workload's bulk-update hook (e.g. Page Rank's rank swap).  It
        may return the next phase's tasks (wave-synchronous ports).
        """
        trace = ExecutionTrace()
        pending: Dict[int, List[Task]] = {}

        # The root batch is created by the application across all units
        # at once; each unit's scheduler drains its own window
        # concurrently, so the global booking order interleaves the
        # spawners rather than walking them one after another (a
        # sequential walk would make already-booked units look loaded
        # and push their remaining tasks away).
        # Under the vector engine, placement also goes through the
        # batch path (falls back to per-task placement whenever the
        # policy cannot batch).
        schedule = (
            self._schedule_tasks_bulk
            if self.memory_system.vector_engine is not None
            else self._schedule_tasks
        )
        clock = schedule(
            _interleave_by_spawner(root_tasks), pending, 0.0,
            advance_clock=True,
        )

        telemetry = self.telemetry
        last_ts = 0
        while pending:
            if (max_timestamps is not None
                    and trace.timestamps_executed >= max_timestamps):
                break
            ts = min(pending)
            last_ts = ts
            if self.faults is not None:
                # Faults strike at phase boundaries (bulk-synchronous
                # semantics): apply due events, re-place every task
                # stranded on a failed unit, and charge the detection +
                # reassignment overhead to the run clock.
                recovery = self.faults.on_phase_start(
                    ts, clock,
                    lambda dead: self._reassign_stranded(pending, dead),
                )
                if recovery:
                    clock += recovery
                    trace.makespan_cycles += recovery
                    trace.recovery_cycles += recovery
            tasks = pending.pop(ts)

            by_unit = self._group_by_unit(tasks)
            phase_steals = 0
            if self.scheduler.uses_work_stealing:
                phase_steals = self._steal_phase(by_unit)
            elif self.scheduler.uses_window_rescheduling:
                phase_steals = self._window_reschedule_phase(by_unit)
            trace.steals += phase_steals

            if telemetry.enabled:
                telemetry.phase_begin(
                    ts, clock, [len(q) for q in by_unit]
                )

            phase_makespan = self._execute_phase(
                by_unit, ts, state, clock, pending, trace
            )
            clock += phase_makespan + self.BARRIER_CYCLES
            trace.record_phase(phase_makespan + self.BARRIER_CYCLES)

            self.memory_system.end_timestamp()
            self.exchange.force_exchange(clock)
            if telemetry.enabled:
                telemetry.phase_end(ts, clock, len(tasks), phase_steals)
            if on_barrier is not None:
                # The bulk-update hook may emit the next phase's tasks
                # (wave-synchronous workloads build them from state
                # aggregated during the phase).
                new_tasks = on_barrier(ts, state)
                if new_tasks:
                    clock = schedule(
                        _interleave_by_spawner(new_tasks), pending, clock,
                        advance_clock=True,
                    )

        if telemetry.enabled:
            telemetry.run_end(clock, last_ts)
        return trace

    # ------------------------------------------------------------------
    # scheduling (root tasks up front, children at spawn time)
    # ------------------------------------------------------------------
    def _schedule_tasks(
        self,
        tasks: Sequence[Task],
        pending: Dict[int, List[Task]],
        clock: float,
        advance_clock: bool = False,
    ) -> float:
        """Place tasks on units and file them under their timestamp.

        With ``advance_clock`` (the up-front root batch, which has no
        execution clock to ride on), the clock advances by the
        system-wide service time of the work just placed so exchange
        boundaries fire at a realistic cadence.  Tasks scheduled at
        spawn time use the execution clock of their spawning task.
        """
        ctx = self.scheduler.context
        if self.telemetry.enabled:
            # Stamp decision records with the clock of this batch.
            self.telemetry.now_ns = self.telemetry.cycles_to_ns(clock)
        for task in tasks:
            unit = self.scheduler.choose_unit(task)
            task.assigned_unit = unit
            workload = ctx.task_workload(task, unit)
            task.booked_workload = workload
            self.exchange.on_enqueue(unit, workload)
            pending.setdefault(task.timestamp, []).append(task)
            if advance_clock:
                clock += workload / self._throughput
                self.exchange.advance(clock)
        return clock

    def _schedule_tasks_bulk(
        self,
        tasks: Sequence[Task],
        pending: Dict[int, List[Task]],
        clock: float,
        advance_clock: bool = False,
    ) -> float:
        """Batch variant of :meth:`_schedule_tasks` (vector engine).

        Asks the policy to place a whole chunk of tasks at once via
        ``choose_units_batch``; policies without a batch path (or that
        temporarily cannot batch — telemetry, fault state) fall back to
        the per-task loop.  Exchange boundaries are checked once per
        chunk rather than once per task, so snapshot refreshes land at
        a slightly coarser cadence — a statistical-tier difference.
        """
        ctx = self.scheduler.context
        if tasks and ctx.camp_mapper is not None and ctx.fast_scoring:
            # Warm the camp mapper's per-line tables for the whole
            # batch in one vectorized fill.  prime_lines writes the
            # same memo dicts the per-task path fills lazily, so this
            # is pure cache warming — every downstream decision and
            # float is unchanged on every tier.
            lines = set()
            for task in tasks:
                lines.update(ctx.hint_lines_list(task))
            ctx.camp_mapper.prime_lines(lines, ctx.cost_matrix)
        chooser = getattr(self.scheduler, "choose_units_batch", None)
        if chooser is None or not tasks:
            return self._schedule_tasks(tasks, pending, clock,
                                        advance_clock)
        task_workload = ctx.task_workload
        on_enqueue = self.exchange.on_enqueue
        throughput = self._throughput
        # Root batches advance the clock as they book; chunking keeps
        # the stale-snapshot feedback loop (later tasks see the load
        # the earlier ones booked) at near the per-task resolution.
        step = 32 if advance_clock else len(tasks)
        i = 0
        n = len(tasks)
        while i < n:
            sub = tasks[i:i + step]
            picks = chooser(sub)
            if picks is None:
                return self._schedule_tasks(tasks[i:], pending, clock,
                                            advance_clock)
            exchange = self.exchange
            advance = exchange.advance
            interval = exchange.interval_cycles
            for task, unit in zip(sub, picks.tolist()):
                task.assigned_unit = unit
                workload = task_workload(task, unit)
                task.booked_workload = workload
                on_enqueue(unit, workload)
                pending.setdefault(task.timestamp, []).append(task)
                if advance_clock:
                    clock += workload / throughput
                    if clock - exchange._last_exchange >= interval:
                        advance(clock)
            i += step
        return clock

    def _reassign_stranded(self, pending: Dict[int, List[Task]],
                           dead_units: Sequence[int]) -> int:
        """Re-place every queued task assigned to a newly dead unit.

        The scheduler (whose context already sees the updated alive
        mask) picks a surviving unit; the W counters move with the
        task.  Returns the number of tasks re-placed — this is the "no
        task is ever lost" guarantee.
        """
        dead = {int(u) for u in dead_units}
        if not dead:
            return 0
        ctx = self.scheduler.context
        moved = 0
        for tasks in pending.values():
            for task in tasks:
                if task.assigned_unit not in dead:
                    continue
                if task.booked_workload:
                    self.exchange.on_dequeue(
                        task.assigned_unit, task.booked_workload
                    )
                unit = self.scheduler.choose_unit(task)
                task.assigned_unit = unit
                workload = ctx.task_workload(task, unit)
                task.booked_workload = workload
                self.exchange.on_enqueue(unit, workload)
                moved += 1
        return moved

    def _group_by_unit(self, tasks: Sequence[Task]) -> List[List[Task]]:
        by_unit: List[List[Task]] = [[] for _ in range(self.config.num_units)]
        for task in tasks:
            by_unit[task.assigned_unit].append(task)
        return by_unit

    # ------------------------------------------------------------------
    # stealing (Sl)
    # ------------------------------------------------------------------
    def _steal_phase(self, by_unit: List[List[Task]]) -> int:
        def estimate(task: Task, unit: int) -> float:
            # Distance-blind: thieves balance on the queue entries'
            # booked workload values; the extra remote-access cost of
            # executing far from the data only shows up at run time.
            return task.booked_workload

        return rebalance_by_stealing(
            by_unit,
            estimate,
            self.config.core.cores_per_unit,
            steal_overhead=self._steal_overhead,
            on_move=self._account_move,
            eligible=self._eligible_units(),
        )

    def _eligible_units(self):
        """Units the rebalancing passes may trade tasks with (None when
        every unit is alive)."""
        if self.faults is None:
            return None
        return self.faults.eligible_mask()

    def _account_move(self, task: Task, victim: int, thief: int,
                      old_est: float, new_est: float) -> None:
        """Keep the W counters consistent when a queued task migrates."""
        self.exchange.on_dequeue(victim, task.booked_workload)
        new_booked = self.scheduler.context.task_workload(task, thief)
        task.booked_workload = new_booked
        self.exchange.on_enqueue(thief, new_booked)

    # ------------------------------------------------------------------
    # scheduling-window re-forwarding (hybrid designs, Figure 4)
    # ------------------------------------------------------------------
    def _window_reschedule_phase(self, by_unit: List[List[Task]]) -> int:
        """Re-target queued tasks before execution.

        The hybrid scheduler keeps examining the tasks inside the
        scheduling window of its queue and may forward them to a better
        unit.  Unlike Sl's distance-blind stealing, the re-forwarding
        uses the policy's distance-aware access-cost estimate, so a
        task only moves when the balance gain beats the extra remote
        cost it would pay at the receiving unit.
        """
        ctx = self.scheduler.context

        def estimate(task: Task, unit: int) -> float:
            # The value at the task's current unit is already booked.
            if unit == task.assigned_unit:
                return task.booked_workload
            return ctx.task_workload(task, unit)

        return rebalance_by_stealing(
            by_unit,
            estimate,
            self.config.core.cores_per_unit,
            steal_overhead=self._steal_overhead,
            on_move=self._account_move,
            eligible=self._eligible_units(),
        )

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _execute_phase(
        self,
        by_unit: List[List[Task]],
        ts: int,
        state: Any,
        clock: float,
        pending: Dict[int, List[Task]],
        trace: ExecutionTrace,
    ) -> float:
        ctx = self.scheduler.context
        memsys = self.memory_system

        ve = memsys.vector_engine
        if (
            ve is not None
            and self.recorder is None
            and self.faults is None
            and not self.telemetry.enabled
            and ve.available()
        ):
            return self._execute_phase_vector(
                by_unit, ts, state, clock, pending, trace
            )

        for unit in self.units:
            unit.reset_clocks(0.0)

        # Hot-loop locals: every name below is loop-invariant, and the
        # derived floats are computed once so each task reuses the very
        # same values the per-iteration expressions produced.
        units = self.units
        freq = self._freq
        hide_keep = 1.0 - self._hide
        spacing = self._issue_spacing_ns
        spread_cap = self._issue_spread_cap_ns
        steal_overhead = self._steal_overhead
        recorder = self.recorder
        hint_lines_list = ctx.hint_lines_list
        line_of = ctx.memory_map.line_of
        access_many = memsys.access_many
        mem_write = memsys.write
        on_dequeue = self.exchange.on_dequeue
        advance = self.exchange.advance
        heappop = heapq.heappop
        heappush = heapq.heappush

        # Heap of (next free core time, unit id, next task index):
        # interleaves units in global time order.
        heap = [(0.0, uid, 0) for uid, tasks in enumerate(by_unit) if tasks]
        heapq.heapify(heap)

        while heap:
            start, uid, idx = heappop(heap)
            # The heap pops in non-decreasing start order, so the pop
            # key is the phase's monotone time frontier.  (Task *finish*
            # times are not monotone — one long task would otherwise
            # freeze the exchange clock for the rest of the phase.)
            global_now = clock + start
            tasks = by_unit[uid]
            task = tasks[idx]
            unit = units[uid]

            # Resolve memory accesses (prefetch-path = demand-path).
            # The prefetch unit issues the hint addresses back to back,
            # so arrivals smear at the issue rate instead of forming a
            # single burst at the serving channels.
            now_ns = global_now / freq
            lines = hint_lines_list(task)
            stall_ns = access_many(
                uid, lines, now_ns, spacing, spread_cap,
            )
            if task.hint.num_addresses:
                # The task's output write (the main element's record)
                # goes straight to the home.
                main_line = line_of(int(task.hint.addresses[0]))
                mem_write(uid, main_line, now_ns)

            stall_cycles = stall_ns * freq * hide_keep
            duration = task.compute_cycles + stall_cycles
            if task.stolen:
                duration += steal_overhead

            # Run the real task body; it may spawn children, which get
            # scheduled immediately (scheduling overlaps execution).
            tctx = TaskContext(uid, ts, state)
            task.func(tctx, *task.args)
            spawned = tctx.drain_spawned()

            finish = unit.run_task(duration)
            if recorder is not None:
                from repro.runtime.trace import TaskRecord

                recorder.record(TaskRecord(
                    task_id=task.task_id,
                    timestamp=ts,
                    spawner_unit=task.spawner_unit,
                    assigned_unit=uid,
                    start_cycles=finish - duration,
                    duration_cycles=duration,
                    stall_ns=stall_ns,
                    hint_lines=len(lines),
                    stolen=task.stolen,
                ))
            trace.tasks_executed += 1
            trace.instructions += task.instructions
            on_dequeue(uid, task.booked_workload)
            advance(global_now)
            if spawned:
                self._schedule_tasks(spawned, pending, global_now)

            if idx + 1 < len(tasks):
                heappush(heap, (unit.earliest_free(), uid, idx + 1))

        return max((u.busy_until() for u in self.units), default=0.0)

    # ------------------------------------------------------------------
    # vectorized execution (engine "vector")
    # ------------------------------------------------------------------
    def _execute_phase_vector(
        self,
        by_unit: List[List[Task]],
        ts: int,
        state: Any,
        clock: float,
        pending: Dict[int, List[Task]],
        trace: ExecutionTrace,
    ) -> float:
        """Resolve a whole phase's memory accesses in one columnar pass.

        The phase's accesses are flattened into parallel arrays (units
        interleaved round-robin by queue position — the same global
        ordering the scalar heap approximates) and handed to the
        :class:`~repro.core.vector_engine.VectorPhaseEngine`; task
        bodies then run in chunks with precomputed durations.  Per-unit
        core schedules (and hence the phase makespan) use the same
        ``run_task`` accounting as the exact engines.
        """
        ve = self.memory_system.vector_engine
        ctx = self.scheduler.context
        for unit in self.units:
            unit.reset_clocks(0.0)

        tasks: List[Task] = []
        pos = 0
        busy = True
        while busy:
            busy = False
            for queue in by_unit:
                if pos < len(queue):
                    tasks.append(queue[pos])
                    busy = True
            pos += 1
        n = len(tasks)
        if n == 0:
            return 0.0

        hint_lines = ctx.hint_lines
        per_task_lines = [hint_lines(t) for t in tasks]
        counts = np.fromiter(
            (a.size for a in per_task_lines), dtype=np.int64, count=n
        )
        units_of = np.fromiter(
            (t.assigned_unit for t in tasks), dtype=np.int64, count=n
        )
        if int(counts.sum()):
            lines = np.concatenate(per_task_lines)
            task_ids = np.repeat(np.arange(n, dtype=np.int64), counts)
            requesters = np.repeat(units_of, counts)
            stalls_ns = ve.resolve_phase(
                requesters, lines, task_ids, n, clock / self._freq
            )
        else:
            stalls_ns = np.zeros(n, dtype=np.float64)

        # Output writes: one line per hinted task, straight to its home.
        w_sel = np.nonzero(counts > 0)[0]
        if w_sel.size:
            line_of = ctx.memory_map.line_of
            w_lines = np.fromiter(
                (line_of(int(tasks[i].hint.addresses[0])) for i in w_sel),
                dtype=np.int64, count=w_sel.size,
            )
            ve.book_writes(units_of[w_sel], w_lines)

        compute = np.fromiter(
            (t.compute_cycles for t in tasks), dtype=np.float64, count=n
        )
        durations = compute + stalls_ns * self._freq * (1.0 - self._hide)
        stolen = np.fromiter(
            (t.stolen for t in tasks), dtype=bool, count=n
        )
        if stolen.any():
            durations[stolen] += self._steal_overhead

        # Body loop: chunked so spawned children are scheduled (and the
        # exchange clock advanced) a handful of times per exchange
        # interval rather than per task.
        units = self.units
        exchange = self.exchange
        on_dequeue = exchange.on_dequeue
        advance = exchange.advance
        interval = exchange.interval_cycles
        throughput = self._throughput
        dur = durations.tolist()
        adv = (durations / throughput).tolist()
        mean_dur = float(durations.mean())
        chunk = 64
        if mean_dur > 0.0:
            chunk = int(
                self.exchange.interval_cycles * throughput / mean_dur
            )
        chunk = max(8, min(chunk, 256))
        tctx = TaskContext(0, ts, state)
        global_now = clock
        i = 0
        while i < n:
            j = min(i + chunk, n)
            for k in range(i, j):
                task = tasks[k]
                uid = task.assigned_unit
                tctx.current_unit = uid
                task.func(tctx, *task.args)
                units[uid].run_task(dur[k])
                on_dequeue(uid, task.booked_workload)
                # Advance the exchange clock at the per-task cadence of
                # the exact engines: the hybrid policy's load feedback
                # is sensitive to when snapshots refresh.  The inline
                # boundary test is the one advance() applies before
                # doing any work, hoisted to skip the no-op calls.
                global_now += adv[k]
                if global_now - exchange._last_exchange >= interval:
                    advance(global_now)
            spawned = tctx.drain_spawned()
            if spawned:
                self._schedule_tasks_bulk(spawned, pending, global_now)
            i = j

        trace.tasks_executed += n
        trace.instructions += float(compute.sum())
        return max((u.busy_until() for u in self.units), default=0.0)
