"""The task abstraction (Section 3.1): function, timestamp, hint, args.

A task mirrors the paper's Swarm-like model::

    enqueue_task(func_ptr, timestamp, hint, args...)

* ``func`` is the Python callable executed for the task; it receives a
  :class:`TaskContext` (through which it may enqueue children) followed
  by its ``args``.
* ``timestamp`` orders bulk-synchronous phases: all tasks of timestamp
  ``t`` run before any task of ``t + 1``, and primary-data updates are
  applied in bulk at the barrier between them.
* ``hint`` carries the data-access address list (exact cacheline-level
  information for the scheduler and prefetcher) and an optional
  programmer-provided workload estimate.

Tasks also carry a ``compute_cycles`` estimate produced by the workload
port — the cost-model equivalent of the instructions the task's inner
loop would execute on the in-order NDP core.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

_task_ids = itertools.count()


@dataclass
class TaskHint:
    """Scheduler-visible task metadata (Section 3.1).

    ``addresses`` lists the physical byte addresses of the *primary
    data* the task will access (single cachelines or small ranges,
    flattened to addresses).  Auxiliary/stack data are deliberately
    omitted, as in the paper.

    ``workload`` is the optional programmer-supplied complexity value;
    when ``None`` the scheduler estimates load from the address list
    (the mode used throughout the paper's evaluation).
    """

    addresses: np.ndarray
    workload: Optional[float] = None

    def __post_init__(self) -> None:
        self.addresses = np.asarray(self.addresses, dtype=np.int64)

    @property
    def num_addresses(self) -> int:
        return int(self.addresses.size)

    @staticmethod
    def empty() -> "TaskHint":
        return TaskHint(addresses=np.empty(0, dtype=np.int64))


@dataclass
class Task:
    """One schedulable unit of work."""

    func: Callable[..., Any]
    timestamp: int
    hint: TaskHint
    args: Tuple = ()
    # Cost-model inputs filled by the workload port:
    compute_cycles: float = 50.0
    # Unit that created (spawned) this task; scheduling happens there.
    spawner_unit: int = 0
    # Filled by the scheduler:
    assigned_unit: int = -1
    # Set when work stealing moved the task off its preferred unit;
    # the thief pays the steal overhead at execution time.
    stolen: bool = False
    # Workload value booked into W_u at enqueue time (set by the
    # executor from the scheduler's access-cost estimate).
    booked_workload: float = 0.0
    task_id: int = field(default_factory=lambda: next(_task_ids))

    @property
    def instructions(self) -> float:
        """Instruction estimate for core energy (1 IPC in-order core)."""
        return self.compute_cycles

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Task(id={self.task_id}, ts={self.timestamp}, "
            f"|hint|={self.hint.num_addresses}, unit={self.assigned_unit})"
        )


class TaskContext:
    """Execution context handed to task functions.

    Provides the ``enqueue_task`` API of Section 3.1 plus access to the
    workload's shared state.  Children are buffered and handed to the
    executor at the end of the current task.
    """

    def __init__(self, current_unit: int, timestamp: int, state: Any = None):
        self.current_unit = current_unit
        self.timestamp = timestamp
        self.state = state
        self._spawned: List[Task] = []

    def enqueue_task(
        self,
        func: Callable[..., Any],
        timestamp: int,
        hint: TaskHint,
        *args: Any,
        compute_cycles: float = 50.0,
    ) -> Task:
        """Create a child task (the paper's ``enqueue_task``).

        Bulk-synchronous semantics require children to run in a later
        phase: updates only become visible after the barrier, so a
        same-timestamp child would observe inconsistent state.
        """
        if timestamp <= self.timestamp:
            raise ValueError(
                f"child timestamp {timestamp} must exceed the current "
                f"timestamp {self.timestamp} (bulk-synchronous phases)"
            )
        task = Task(
            func=func,
            timestamp=timestamp,
            hint=hint,
            args=args,
            compute_cycles=compute_cycles,
            spawner_unit=self.current_unit,
        )
        self._spawned.append(task)
        return task

    def drain_spawned(self) -> List[Task]:
        spawned, self._spawned = self._spawned, []
        return spawned
