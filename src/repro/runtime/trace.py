"""Per-task execution tracing.

Attach a :class:`TaskTraceRecorder` to an executor to capture one
record per executed task — where it was spawned, where it ran, when,
for how long, and how much of that was memory stall.  The recorder
powers placement analyses (how far did the scheduler move work? which
units were hot in which phase?) that aggregate counters cannot answer.

    system = repro.build_system("O")
    recorder = TaskTraceRecorder()
    system.executor.recorder = recorder
    ...run...
    print(recorder.placement_summary(system.interconnect.cost_matrix))
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterator, List, Optional

import numpy as np


@dataclass(frozen=True)
class TaskRecord:
    """One executed task."""

    task_id: int
    timestamp: int
    spawner_unit: int
    assigned_unit: int
    start_cycles: float      # phase-local start time
    duration_cycles: float
    stall_ns: float
    hint_lines: int
    stolen: bool


class TaskTraceRecorder:
    """Collects :class:`TaskRecord` entries during a run."""

    def __init__(self, capacity: Optional[int] = None):
        """``capacity`` bounds memory for long runs (oldest dropped)."""
        self.capacity = capacity
        # A deque evicts the oldest record in O(1); the previous list
        # backing store paid O(n) per eviction (list.pop(0)), which
        # made bounded recorders quadratic over long runs.
        self._records: Deque[TaskRecord] = deque(maxlen=capacity)
        self.dropped = 0

    # ------------------------------------------------------------------
    def record(self, record: TaskRecord) -> None:
        if self.capacity is not None and len(self._records) >= self.capacity:
            self.dropped += 1  # the append below evicts the oldest
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TaskRecord]:
        return iter(self._records)

    @property
    def records(self) -> List[TaskRecord]:
        return list(self._records)

    def clear(self) -> None:
        self._records.clear()
        self.dropped = 0

    # ------------------------------------------------------------------
    # analyses
    # ------------------------------------------------------------------
    def migrated_fraction(self) -> float:
        """Share of tasks that ran away from their spawner's unit."""
        if not self._records:
            return 0.0
        moved = sum(1 for r in self._records
                    if r.assigned_unit != r.spawner_unit)
        return moved / len(self._records)

    def stolen_fraction(self) -> float:
        if not self._records:
            return 0.0
        return sum(1 for r in self._records if r.stolen) / len(self._records)

    def mean_placement_distance(self, cost_matrix: np.ndarray) -> float:
        """Average spawner→executor distance cost over all tasks."""
        if not self._records:
            return 0.0
        total = sum(
            float(cost_matrix[r.spawner_unit, r.assigned_unit])
            for r in self._records
        )
        return total / len(self._records)

    def per_unit_task_counts(self, num_units: int) -> np.ndarray:
        counts = np.zeros(num_units, dtype=np.int64)
        for r in self._records:
            counts[r.assigned_unit] += 1
        return counts

    def per_phase_task_counts(self) -> Dict[int, int]:
        out: Dict[int, int] = {}
        for r in self._records:
            out[r.timestamp] = out.get(r.timestamp, 0) + 1
        return out

    def stall_share(self) -> float:
        """Memory-stall cycles as a share of total task cycles.

        Uses the executor's hide-adjusted stall; a high share means
        the workload is remote-access bound.
        """
        total = sum(r.duration_cycles for r in self._records)
        if total <= 0:
            return 0.0
        # duration = compute + visible stall; visible stall cycles are
        # duration - compute, but compute isn't recorded — approximate
        # via the raw stall_ns bound.
        stall = sum(min(r.duration_cycles, r.stall_ns * 2.0)
                    for r in self._records)
        return min(1.0, stall / total)

    def placement_summary(self, cost_matrix: np.ndarray) -> str:
        """Human-readable placement digest."""
        return (
            f"tasks={len(self._records)} "
            f"migrated={self.migrated_fraction():.0%} "
            f"stolen={self.stolen_fraction():.0%} "
            f"mean spawn->run distance="
            f"{self.mean_placement_distance(cost_matrix):.1f} ns"
        )

    # ------------------------------------------------------------------
    def to_rows(self) -> List[Dict[str, object]]:
        """Flat dict rows (for CSV/JSON export)."""
        return [
            {
                "task_id": r.task_id,
                "timestamp": r.timestamp,
                "spawner_unit": r.spawner_unit,
                "assigned_unit": r.assigned_unit,
                "start_cycles": r.start_cycles,
                "duration_cycles": r.duration_cycles,
                "stall_ns": r.stall_ns,
                "hint_lines": r.hint_lines,
                "stolen": r.stolen,
            }
            for r in self._records
        ]
