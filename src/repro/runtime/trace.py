"""Per-task execution tracing.

Attach a :class:`TaskTraceRecorder` to an executor to capture one
record per executed task — where it was spawned, where it ran, when,
for how long, and how much of that was memory stall.  The recorder
powers placement analyses (how far did the scheduler move work? which
units were hot in which phase?) that aggregate counters cannot answer.

    system = repro.build_system("O")
    recorder = TaskTraceRecorder()
    system.executor.recorder = recorder
    ...run...
    print(recorder.placement_summary(system.interconnect.cost_matrix))

Since the telemetry subsystem landed, the recorder is a thin adapter
over a :class:`repro.telemetry.Timeline`: each task record is stored as
a complete ("X") span whose ``args`` carry the exact record fields, so
the same buffer both feeds the placement analyses below and exports to
Chrome/Perfetto alongside the rest of a run's events.  Pass an existing
timeline (e.g. ``telemetry.timeline``) to interleave task spans with
the phase/scheduler events of an instrumented run; by default the
recorder owns a private timeline bounded by ``capacity``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

import numpy as np

from repro.telemetry import Timeline


@dataclass(frozen=True)
class TaskRecord:
    """One executed task."""

    task_id: int
    timestamp: int
    spawner_unit: int
    assigned_unit: int
    start_cycles: float      # phase-local start time
    duration_cycles: float
    stall_ns: float
    hint_lines: int
    stolen: bool


_RECORD_FIELDS = tuple(f.name for f in dataclasses.fields(TaskRecord))


class TaskTraceRecorder:
    """Collects :class:`TaskRecord` entries during a run.

    Thin adapter over a :class:`~repro.telemetry.Timeline`: records are
    stored as trace spans (name ``"task <id>"``, ``tid`` = executing
    unit) and reconstructed from the span ``args`` on iteration.
    """

    def __init__(
        self,
        capacity: Optional[int] = None,
        timeline: Optional[Timeline] = None,
        frequency_ghz: float = 1.0,
    ):
        """``capacity`` bounds memory for long runs (oldest dropped);
        it is ignored when an external ``timeline`` is supplied (the
        timeline's own bound applies).  ``frequency_ghz`` converts the
        recorded cycle times to the nanoseconds trace viewers expect.
        """
        if timeline is None:
            timeline = Timeline(capacity=capacity)
        self.timeline = timeline
        self.frequency_ghz = frequency_ghz

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> Optional[int]:
        return self.timeline.capacity

    @property
    def dropped(self) -> int:
        return self.timeline.dropped

    def record(self, record: TaskRecord) -> None:
        freq = self.frequency_ghz
        self.timeline.complete(
            f"task {record.task_id}",
            ts_ns=record.start_cycles / freq,
            dur_ns=record.duration_cycles / freq,
            pid=0,
            tid=record.assigned_unit,
            **{name: getattr(record, name) for name in _RECORD_FIELDS},
        )

    def __len__(self) -> int:
        return sum(1 for _ in self)

    def __iter__(self) -> Iterator[TaskRecord]:
        for event in self.timeline:
            if event.ph == "X" and "task_id" in event.args:
                yield TaskRecord(
                    **{name: event.args[name] for name in _RECORD_FIELDS}
                )

    @property
    def records(self) -> List[TaskRecord]:
        return list(self)

    def clear(self) -> None:
        self.timeline.clear()

    # ------------------------------------------------------------------
    # analyses
    # ------------------------------------------------------------------
    def migrated_fraction(self) -> float:
        """Share of tasks that ran away from their spawner's unit."""
        records = self.records
        if not records:
            return 0.0
        moved = sum(1 for r in records
                    if r.assigned_unit != r.spawner_unit)
        return moved / len(records)

    def stolen_fraction(self) -> float:
        records = self.records
        if not records:
            return 0.0
        return sum(1 for r in records if r.stolen) / len(records)

    def mean_placement_distance(self, cost_matrix: np.ndarray) -> float:
        """Average spawner→executor distance cost over all tasks."""
        records = self.records
        if not records:
            return 0.0
        total = sum(
            float(cost_matrix[r.spawner_unit, r.assigned_unit])
            for r in records
        )
        return total / len(records)

    def per_unit_task_counts(self, num_units: int) -> np.ndarray:
        counts = np.zeros(num_units, dtype=np.int64)
        for r in self:
            counts[r.assigned_unit] += 1
        return counts

    def per_phase_task_counts(self) -> Dict[int, int]:
        out: Dict[int, int] = {}
        for r in self:
            out[r.timestamp] = out.get(r.timestamp, 0) + 1
        return out

    def stall_share(self) -> float:
        """Memory-stall cycles as a share of total task cycles.

        Uses the executor's hide-adjusted stall; a high share means
        the workload is remote-access bound.
        """
        records = self.records
        total = sum(r.duration_cycles for r in records)
        if total <= 0:
            return 0.0
        # duration = compute + visible stall; visible stall cycles are
        # duration - compute, but compute isn't recorded — approximate
        # via the raw stall_ns bound.
        stall = sum(min(r.duration_cycles, r.stall_ns * 2.0)
                    for r in records)
        return min(1.0, stall / total)

    def placement_summary(self, cost_matrix: np.ndarray) -> str:
        """Human-readable placement digest."""
        records = self.records
        return (
            f"tasks={len(records)} "
            f"migrated={self.migrated_fraction():.0%} "
            f"stolen={self.stolen_fraction():.0%} "
            f"mean spawn->run distance="
            f"{self.mean_placement_distance(cost_matrix):.1f} ns"
        )

    # ------------------------------------------------------------------
    def to_rows(self) -> List[Dict[str, object]]:
        """Flat dict rows (for CSV/JSON export)."""
        return [
            {name: getattr(r, name) for name in _RECORD_FIELDS}
            for r in self
        ]
