"""Per-unit task queue with scheduling and prefetch windows (Figure 4).

The queue is a FIFO of tasks destined for one NDP unit.  Two sliding
windows at the front drive the pipeline:

* the **prefetch window** — the prefetch unit issues requests for the
  hint addresses of these tasks so their data is resident before a core
  picks them up;
* the **scheduling window** (new in ABNDP) — the task scheduler examines
  these tasks and may re-target them to a better unit before they
  commit to local execution.

The simulator's executor tracks phases as plain per-unit lists (it has
a global view and needs none of the window mechanics at run time); this
class exists as the faithful structural model of Figure 4 for unit
tests and for users building finer-grained executors on the runtime.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, List, Optional

from repro.runtime.task import Task


class TaskQueue:
    """FIFO task queue of one NDP unit."""

    def __init__(self, scheduling_window: int = 16, prefetch_window: int = 8):
        if scheduling_window < 0 or prefetch_window < 0:
            raise ValueError("window sizes must be non-negative")
        self.scheduling_window = scheduling_window
        self.prefetch_window = prefetch_window
        self._queue: Deque[Task] = deque()
        self.total_enqueued = 0
        self.total_dequeued = 0
        # Optional telemetry hooks (see attach_telemetry).
        self._tel_enqueued = None
        self._tel_dequeued = None
        self._tel_depth = None

    def attach_telemetry(self, scope) -> None:
        """Mirror queue activity into a telemetry scope.

        ``scope`` is a :class:`repro.telemetry.registry.Scope` (e.g.
        ``registry.scope("unit.3.queue")``); the queue then maintains
        ``<scope>.enqueued`` / ``<scope>.dequeued`` counters and a
        ``<scope>.depth`` gauge alongside its own totals.
        """
        self._tel_enqueued = scope.counter("enqueued")
        self._tel_dequeued = scope.counter("dequeued")
        self._tel_depth = scope.gauge("depth")

    def _tel_update_depth(self) -> None:
        if self._tel_depth is not None:
            self._tel_depth.set(len(self._queue))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)

    def enqueue(self, task: Task) -> None:
        self._queue.append(task)
        self.total_enqueued += 1
        if self._tel_enqueued is not None:
            self._tel_enqueued.inc()
            self._tel_update_depth()

    def enqueue_front(self, task: Task) -> None:
        """Return a task to the head (e.g. after a failed steal)."""
        self._queue.appendleft(task)
        self._tel_update_depth()

    def dequeue(self) -> Task:
        if not self._queue:
            raise IndexError("dequeue from an empty task queue")
        self.total_dequeued += 1
        task = self._queue.popleft()
        if self._tel_dequeued is not None:
            self._tel_dequeued.inc()
            self._tel_update_depth()
        return task

    def steal_from_back(self) -> Optional[Task]:
        """Victim side of work stealing: give up the *youngest* task.

        Classic work-stealing deques steal from the opposite end the
        owner pops from, minimising contention and keeping the hot
        (prefetched) tasks local.
        """
        if not self._queue:
            return None
        self.total_dequeued += 1
        if self._tel_dequeued is not None:
            self._tel_dequeued.inc()
        task = self._queue.pop()
        self._tel_update_depth()
        return task

    # ------------------------------------------------------------------
    def prefetch_candidates(self) -> List[Task]:
        """Tasks currently inside the prefetch window."""
        return list(self._peek(self.prefetch_window))

    def scheduling_candidates(self) -> List[Task]:
        """Tasks currently inside the scheduling window."""
        return list(self._peek(self.scheduling_window))

    def _peek(self, n: int) -> Iterator[Task]:
        for i, task in enumerate(self._queue):
            if i >= n:
                break
            yield task

    def remove(self, task: Task) -> bool:
        """Remove a specific task (it was re-scheduled elsewhere)."""
        try:
            self._queue.remove(task)
        except ValueError:
            return False
        return True

    def queued_workload(self) -> float:
        """Sum of the booked workloads of the queued tasks (W_u)."""
        return sum(t.booked_workload for t in self._queue)

    def clear(self) -> None:
        self._queue.clear()
