"""Workload protocol: how an application plugs into the simulator.

A workload owns a (seeded, deterministic) dataset and knows how to

1. allocate its *primary data* into the machine's home memory regions
   (``setup`` — returns the run's mutable state),
2. produce the root tasks of timestamp 0 (``root_tasks``); further
   tasks are spawned by task bodies via ``ctx.enqueue_task``,
3. apply bulk updates at each timestamp barrier (``on_barrier``), and
4. check its final answer against an independent reference
   (``verify`` — raises on mismatch).

Task *hints* list the physical addresses of every primary-data element
the task touches, exactly as the paper's programmers supply them from
the application's own index structures.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Dict, List, Sequence

import numpy as np

from repro.runtime.task import Task, TaskHint


class Workload(abc.ABC):
    """Base class for the eight ported applications."""

    #: short name used in figures ("pr", "bfs", ...)
    name: str = "workload"

    #: How primary-data elements are distributed across the units'
    #: home memories.  ``"blocked"`` (contiguous ranges, the partition
    #: used by Tesseract-style graph frameworks and the source of the
    #: paper's data hotspots) or ``"round_robin"``.  Instances may
    #: override the class default.
    layout: str = "blocked"

    @abc.abstractmethod
    def setup(self, system) -> Any:
        """Allocate primary data on ``system``; return run state."""

    @abc.abstractmethod
    def root_tasks(self, state) -> List[Task]:
        """Tasks of the first timestamp."""

    def on_barrier(self, timestamp: int, state) -> None:
        """Bulk-apply updates at the end of ``timestamp`` (default: none)."""

    def verify(self, state) -> None:
        """Raise AssertionError if the computed answer is wrong."""

    # ------------------------------------------------------------------
    # helpers shared by the ports
    # ------------------------------------------------------------------
    @staticmethod
    def hint_for(addresses: Sequence[int]) -> TaskHint:
        return TaskHint(addresses=np.asarray(addresses, dtype=np.int64))


def vertex_hint(addresses: np.ndarray, v: int,
                neighbors: np.ndarray) -> TaskHint:
    """The standard graph-workload hint: the vertex's own record plus
    its neighbors' records (used by pr, bfs, sssp and cc)."""
    out = np.empty(neighbors.shape[0] + 1, dtype=np.int64)
    out[0] = addresses[v]
    out[1:] = addresses[neighbors]
    return TaskHint(addresses=out)


#: name -> zero-argument factory producing the default-sized workload.
WORKLOAD_FACTORIES: Dict[str, Callable[[], Workload]] = {}


def register_workload(name: str):
    """Class decorator registering a default factory under ``name``."""

    def deco(cls):
        cls.name = name
        WORKLOAD_FACTORIES[name] = cls
        return cls

    return deco


def make_workload(name: str, **kwargs) -> Workload:
    """Instantiate a registered workload by its figure name.

    The (name, kwargs) spec is recorded on the instance so the sweep
    engine can derive its content-addressed run key from the spec alone
    (cheap and identical for equal calls) instead of hashing the
    generated dataset — see ``repro.sweep.keys.workload_token``.
    """
    if name not in WORKLOAD_FACTORIES:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(WORKLOAD_FACTORIES)}"
        )
    workload = WORKLOAD_FACTORIES[name](**kwargs)
    workload._factory_spec = (name, dict(kwargs))
    return workload
