"""Sparse matrix-vector multiplication (power iterations) in the task model.

One task per matrix row per iteration computes the inner product of the
row with the input vector.  The row's own data (column indices and
values) live contiguously in the row's home unit; the *vector entries*
at the row's column positions are scattered round-robin across the
system and — because the matrix's column popularity is Zipf-skewed — a
few vector cachelines are touched by most rows.  Those hot lines are
exactly what Traveller Cache camps absorb.

Multiple timestamps run a Jacobi-flavoured power iteration
``x <- normalize(A x)`` so the caches see the bulk invalidation path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.runtime.task import Task, TaskHint
from repro.workloads.base import Workload, register_workload
from repro.workloads.datasets import SparseMatrix, skewed_sparse_matrix

_BASE_CYCLES = 30.0
_PER_NNZ_CYCLES = 7.0


@dataclass
class SpmvState:
    matrix: SparseMatrix
    row_addrs: np.ndarray     # first line of each row's CSR segment
    row_lines: list           # per-row list of segment line addresses
    vec_addrs: np.ndarray     # address of each vector entry (packed)
    x: np.ndarray             # current input vector
    y: np.ndarray             # output accumulator
    max_iters: int
    home_of_row: np.ndarray


def _row_hint(st: SpmvState, i: int) -> np.ndarray:
    cols, _ = st.matrix.row_slice(i)
    return np.concatenate((st.row_lines[i], st.vec_addrs[cols]))


def _task_spmv(ctx, i: int) -> None:
    st: SpmvState = ctx.state
    cols, vals = st.matrix.row_slice(i)
    st.y[i] = float((vals * st.x[cols]).sum())

    if ctx.timestamp + 1 < st.max_iters:
        ctx.enqueue_task(
            _task_spmv,
            ctx.timestamp + 1,
            TaskHint(addresses=_row_hint(st, i)),
            i,
            compute_cycles=_BASE_CYCLES + _PER_NNZ_CYCLES * len(cols),
        )


@register_workload("spmv")
class SpmvWorkload(Workload):
    """Skewed-column SpMV power iteration."""

    def __init__(
        self,
        rows: int = 2048,
        nnz_per_row: int = 12,
        skew: float = 0.9,
        iterations: int = 3,
        seed: int = 17,
        matrix: Optional[SparseMatrix] = None,
    ):
        self.matrix = matrix if matrix is not None else skewed_sparse_matrix(
            rows, nnz_per_row=nnz_per_row, skew=skew, seed=seed
        )
        self.iterations = iterations

    def setup(self, system) -> SpmvState:
        m = self.matrix
        alloc = system.allocator()
        # Row segments: one element per row sized to its nnz payload
        # (8 B per nonzero: a packed column index + value), rounded up
        # to whole cachelines so each row's lines are its own.
        seg_lines = np.maximum(1, -(-np.diff(m.indptr) * 8 // 64))
        rows_region = alloc.alloc(
            "spmv_rows", m.rows, elem_bytes=int(seg_lines.max()) * 64,
            layout=self.layout,
        )
        row_lines = []
        for i in range(m.rows):
            base = rows_region.addresses[i]
            row_lines.append(base + 64 * np.arange(seg_lines[i], dtype=np.int64))
        # Vector entries are 8 B each, packed 8 per line, round-robin.
        vec_region = alloc.alloc("spmv_vector", m.cols, elem_bytes=8, layout=self.layout)
        return SpmvState(
            matrix=m,
            row_addrs=rows_region.addresses,
            row_lines=row_lines,
            vec_addrs=vec_region.addresses,
            x=m.vector.copy(),
            y=np.zeros(m.rows),
            max_iters=self.iterations,
            home_of_row=system.memory_map.home_units(rows_region.addresses),
        )

    def root_tasks(self, state: SpmvState) -> List[Task]:
        m = state.matrix
        tasks = []
        for i in range(m.rows):
            cols, _ = m.row_slice(i)
            tasks.append(
                Task(
                    func=_task_spmv,
                    timestamp=0,
                    hint=TaskHint(addresses=_row_hint(state, i)),
                    args=(i,),
                    compute_cycles=_BASE_CYCLES + _PER_NNZ_CYCLES * len(cols),
                    spawner_unit=int(state.home_of_row[i]),
                )
            )
        return tasks

    def on_barrier(self, timestamp: int, state: SpmvState) -> None:
        """x <- normalize(y): the power-iteration bulk update."""
        norm = float(np.linalg.norm(state.y))
        if norm > 0:
            state.x = state.y / norm
        else:
            state.x = state.y.copy()
        state.y = np.zeros_like(state.y)

    # ------------------------------------------------------------------
    def reference_vector(self) -> np.ndarray:
        """Dense power iteration for verification."""
        m = self.matrix
        x = m.vector.copy()
        dense = np.zeros((m.rows, m.cols))
        for i in range(m.rows):
            cols, vals = m.row_slice(i)
            dense[i, cols] = vals
        for _ in range(self.iterations):
            y = dense @ x
            norm = float(np.linalg.norm(y))
            x = y / norm if norm > 0 else y
        return x

    def verify(self, state: SpmvState) -> None:
        expected = self.reference_vector()
        if not np.allclose(state.x, expected, atol=1e-9):
            worst = float(np.abs(state.x - expected).max())
            raise AssertionError(f"SpMV power iteration mismatch {worst}")
