"""Page Rank in the task model (Algorithm 1 of the paper).

One task per vertex per iteration; the task reads its own record plus
every neighbor's record (rank and out-degree), computes the new rank,
and enqueues itself for the next timestamp unless it has converged or
the iteration budget is exhausted.  Ranks are double-buffered and
swapped at the bulk-synchronous barrier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.runtime.task import Task
from repro.workloads.base import Workload, register_workload, vertex_hint
from repro.workloads.datasets import community_powerlaw_graph
from repro.workloads.graph import Graph

#: cost-model constants: per-task base cycles and per-neighbor cycles
_BASE_CYCLES = 40.0
_PER_NEIGHBOR_CYCLES = 8.0


@dataclass
class PageRankState:
    graph: Graph
    addresses: np.ndarray        # vertex record addresses
    curr: np.ndarray             # rank buffer read this timestamp
    nxt: np.ndarray              # rank buffer written this timestamp
    out_degree: np.ndarray
    damping: float
    epsilon: float
    max_iters: int
    home_of: np.ndarray          # vertex -> home unit (spawner metadata)
    #: Batched-engine accelerators (None under the scalar engine, which
    #: stays the original reference flow):
    #: ``inv`` is curr / out_degree, refreshed at each barrier — tasks
    #: gather single contributions from it, elementwise-identical to
    #: dividing the gathered operands per task.  ``hints`` holds one
    #: persistent TaskHint per vertex: the hint addresses are identical
    #: every iteration, and reusing the object lets the per-hint memos
    #: (lines, homes, scoring rows) live for the whole run.
    inv: Optional[np.ndarray] = None
    hints: Optional[List] = None


def _task_page_rank(ctx, v: int) -> None:
    """The per-vertex task body (cf. Algorithm 1)."""
    st: PageRankState = ctx.state
    g = st.graph
    neighbors = g.neighbors(v)
    if len(neighbors):
        if st.inv is not None:
            contrib = float(st.inv[neighbors].sum())
        else:
            contrib = float(
                (st.curr[neighbors] / st.out_degree[neighbors]).sum()
            )
    else:
        contrib = 0.0
    n = g.num_vertices
    new_rank = st.damping * contrib + (1.0 - st.damping) / n
    st.nxt[v] = new_rank

    # With epsilon == 0 the cutoff is disabled and every vertex runs
    # all iterations (the verifiable fixed-iteration port).  A positive
    # epsilon deactivates converged vertices, like Algorithm 1 — but a
    # deactivated vertex stays stale if its neighbors keep moving, so
    # the result is then only epsilon-approximate.
    converged = st.epsilon > 0 and abs(new_rank - st.curr[v]) < st.epsilon
    if not converged and ctx.timestamp + 1 < st.max_iters:
        hint = (
            st.hints[v] if st.hints is not None
            else vertex_hint(st.addresses, v, neighbors)
        )
        ctx.enqueue_task(
            _task_page_rank,
            ctx.timestamp + 1,
            hint,
            v,
            compute_cycles=_BASE_CYCLES + _PER_NEIGHBOR_CYCLES * len(neighbors),
        )


@register_workload("pr")
class PageRankWorkload(Workload):
    """Power-law-graph Page Rank (the paper's headline workload)."""

    def __init__(
        self,
        num_vertices: int = 2048,
        edges_per_vertex: int = 10,
        iterations: int = 4,
        damping: float = 0.85,
        epsilon: float = 0.0,
        seed: int = 7,
        graph: Optional[Graph] = None,
    ):
        self.graph = graph if graph is not None else community_powerlaw_graph(
            num_vertices, edges_per_vertex, seed=seed
        )
        self.iterations = iterations
        self.damping = damping
        self.epsilon = epsilon

    # ------------------------------------------------------------------
    def setup(self, system) -> PageRankState:
        g = self.graph
        alloc = system.allocator()
        region = alloc.alloc("pr_vertices", g.num_vertices, elem_bytes=64, layout=self.layout)
        n = g.num_vertices
        curr = np.full(n, 1.0 / n)
        out_degree = np.maximum(1, g.degrees).astype(np.float64)
        fast = system.config.memory.access_engine in ("batched", "vector")
        return PageRankState(
            graph=g,
            addresses=region.addresses,
            curr=curr,
            nxt=curr.copy(),
            out_degree=out_degree,
            damping=self.damping,
            epsilon=self.epsilon,
            max_iters=self.iterations,
            home_of=system.memory_map.home_units(region.addresses),
            inv=curr / out_degree if fast else None,
            hints=[] if fast else None,
        )

    def root_tasks(self, state: PageRankState) -> List[Task]:
        g = state.graph
        tasks = []
        for v in range(g.num_vertices):
            neighbors = g.neighbors(v)
            hint = vertex_hint(state.addresses, v, neighbors)
            if state.hints is not None:
                state.hints.append(hint)
            tasks.append(
                Task(
                    func=_task_page_rank,
                    timestamp=0,
                    hint=hint,
                    args=(v,),
                    compute_cycles=(
                        _BASE_CYCLES + _PER_NEIGHBOR_CYCLES * len(neighbors)
                    ),
                    spawner_unit=int(state.home_of[v]),
                )
            )
        return tasks

    def on_barrier(self, timestamp: int, state: PageRankState) -> None:
        """Bulk-apply the new ranks (double-buffer swap).

        The next write buffer starts as a copy of the *new* ranks so
        that converged vertices (which spawn no further task) keep
        their final value.
        """
        state.curr = state.nxt
        state.nxt = state.curr.copy()
        if state.inv is not None:
            state.inv = state.curr / state.out_degree

    # ------------------------------------------------------------------
    def reference_ranks(self) -> np.ndarray:
        """Independent dense power iteration for verification."""
        g = self.graph
        n = g.num_vertices
        ranks = np.full(n, 1.0 / n)
        out_degree = np.maximum(1, g.degrees).astype(np.float64)
        for _ in range(self.iterations):
            nxt = np.full(n, (1.0 - self.damping) / n)
            for v in range(n):
                neigh = g.neighbors(v)
                if len(neigh):
                    nxt[v] += self.damping * float(
                        (ranks[neigh] / out_degree[neigh]).sum()
                    )
            ranks = nxt
        return ranks

    def verify(self, state: PageRankState) -> None:
        expected = self.reference_ranks()
        # With an opt-in convergence cutoff, deactivated vertices may
        # lag the always-updating reference by O(epsilon) per round.
        atol = max(1e-6, self.epsilon * self.iterations * 10)
        if not np.allclose(state.curr, expected, atol=atol):
            worst = float(np.abs(state.curr - expected).max())
            raise AssertionError(f"Page Rank mismatch, max err {worst}")
