"""K-nearest-neighbors over a KD-tree, in the task model.

The dataset points are organised into a KD-tree whose *node records*
and *point records* are primary data spread across the NDP units.  One
task per query performs the standard best-first KD search (descend to
the query's leaf, backtrack into subtrees whose slab may contain a
closer point, linear-scan leaf buckets).  The task hint lists exactly
the node and point records the search will touch — obtained from the
same deterministic search the task body runs.

Queries are drawn with a *skewed* cluster distribution (Section 6:
"because of the skewed distribution in our synthetic dataset, the
workload is highly imbalanced"): most queries land in a few hot
subtrees, whose home units become hotspots under data-location-only
scheduling, while the tree traversal generates significant remote
traffic — the combination that makes knn the most design-sensitive
workload in Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.runtime.task import Task, TaskHint
from repro.workloads.base import Workload, register_workload
from repro.workloads.datasets import PointSet, clustered_points, zipf_choices

_BASE_CYCLES = 40.0
_PER_NODE_CYCLES = 6.0
_PER_POINT_CYCLES = 4.0


@dataclass
class KdTree:
    """Array-of-structs KD-tree with bucket leaves."""

    points: np.ndarray          # (n, d)
    axis: np.ndarray            # (nodes,) split axis, -1 for leaves
    thresh: np.ndarray          # (nodes,) split value
    left: np.ndarray            # (nodes,) child ids, -1 for leaves
    right: np.ndarray
    leaf_start: np.ndarray      # (nodes,) slice into leaf_points
    leaf_count: np.ndarray
    leaf_points: np.ndarray     # point indices, grouped per leaf

    @property
    def num_nodes(self) -> int:
        return len(self.axis)

    def is_leaf(self, node: int) -> bool:
        return self.axis[node] < 0

    def leaf_members(self, node: int) -> np.ndarray:
        lo = self.leaf_start[node]
        return self.leaf_points[lo:lo + self.leaf_count[node]]


def build_kdtree(points: np.ndarray, leaf_size: int = 32) -> KdTree:
    """Median-split KD-tree over ``points``."""
    n, dim = points.shape
    axis: List[int] = []
    thresh: List[float] = []
    left: List[int] = []
    right: List[int] = []
    leaf_start: List[int] = []
    leaf_count: List[int] = []
    leaf_points: List[int] = []

    def new_node() -> int:
        axis.append(-1)
        thresh.append(0.0)
        left.append(-1)
        right.append(-1)
        leaf_start.append(-1)
        leaf_count.append(0)
        return len(axis) - 1

    def build(idx: np.ndarray, depth: int) -> int:
        node = new_node()
        if len(idx) <= leaf_size:
            leaf_start[node] = len(leaf_points)
            leaf_count[node] = len(idx)
            leaf_points.extend(int(i) for i in idx)
            return node
        ax = depth % dim
        vals = points[idx, ax]
        order = np.argsort(vals, kind="stable")
        mid = len(idx) // 2
        axis[node] = ax
        thresh[node] = float(vals[order[mid]])
        left_idx = idx[order[:mid]]
        right_idx = idx[order[mid:]]
        left[node] = build(left_idx, depth + 1)
        right[node] = build(right_idx, depth + 1)
        return node

    build(np.arange(n), 0)
    return KdTree(
        points=points,
        axis=np.asarray(axis, dtype=np.int64),
        thresh=np.asarray(thresh),
        left=np.asarray(left, dtype=np.int64),
        right=np.asarray(right, dtype=np.int64),
        leaf_start=np.asarray(leaf_start, dtype=np.int64),
        leaf_count=np.asarray(leaf_count, dtype=np.int64),
        leaf_points=np.asarray(leaf_points, dtype=np.int64),
    )


def kd_search(
    tree: KdTree, query: np.ndarray, k: int = 1
) -> Tuple[np.ndarray, np.ndarray, List[int], List[int]]:
    """k-NN search returning (indices, dists, visited nodes, scanned pts)."""
    best_d: List[float] = []
    best_i: List[int] = []
    visited: List[int] = []
    scanned: List[int] = []

    def worst() -> float:
        return best_d[-1] if len(best_d) >= k else np.inf

    def consider(i: int, d: float) -> None:
        pos = np.searchsorted(best_d, d)
        best_d.insert(pos, d)
        best_i.insert(pos, i)
        if len(best_d) > k:
            best_d.pop()
            best_i.pop()

    def recurse(node: int) -> None:
        visited.append(node)
        if tree.is_leaf(node):
            for i in tree.leaf_members(node):
                i = int(i)
                scanned.append(i)
                d = float(((tree.points[i] - query) ** 2).sum())
                if d < worst():
                    consider(i, d)
            return
        ax = tree.axis[node]
        diff = float(query[ax] - tree.thresh[node])
        near, far = (
            (tree.left[node], tree.right[node])
            if diff < 0
            else (tree.right[node], tree.left[node])
        )
        recurse(int(near))
        if diff * diff < worst():
            recurse(int(far))

    recurse(0)
    return (
        np.asarray(best_i, dtype=np.int64),
        np.sqrt(np.asarray(best_d)),
        visited,
        scanned,
    )


@dataclass
class KnnState:
    tree: KdTree
    queries: np.ndarray
    node_addrs: np.ndarray
    point_addrs: np.ndarray
    query_addrs: np.ndarray
    results: np.ndarray       # (q, k) neighbor indices
    k: int
    home_of_query: np.ndarray
    #: memoized per-query search (set by KnnWorkload.setup; None keeps
    #: the direct kd_search path for hand-built states).
    search: Optional[object] = None


def _task_knn(ctx, q: int) -> None:
    st: KnnState = ctx.state
    if st.search is not None:
        idx = st.search(q)[0]
    else:
        idx, _, _, _ = kd_search(st.tree, st.queries[q], st.k)
    st.results[q, : len(idx)] = idx


@register_workload("knn")
class KnnWorkload(Workload):
    """Skewed-query KNN over a KD-tree."""

    def __init__(
        self,
        num_points: int = 4096,
        num_queries: int = 768,
        dim: int = 4,
        k: int = 4,
        clusters: int = 8,
        query_skew: float = 1.2,
        leaf_size: int = 32,
        seed: int = 41,
        dataset: Optional[PointSet] = None,
    ):
        self.dataset = dataset if dataset is not None else clustered_points(
            num_points, dim, clusters, cluster_skew=0.6, seed=seed
        )
        self.k = min(k, self.dataset.count)
        self.leaf_size = leaf_size
        self.tree = build_kdtree(self.dataset.points, leaf_size=leaf_size)
        rng = np.random.default_rng(seed + 1)
        # Skewed queries: most probe a few hot clusters.
        hot = zipf_choices(clusters, num_queries, query_skew, rng)
        centers = self.dataset.centers[hot]
        self.queries = centers + rng.normal(0.0, 0.8, size=centers.shape)
        # Per-query search memo: the search is a pure function of
        # (tree, queries, k), all frozen at construction, so the hint
        # pass and the task body share one traversal per query — and a
        # workload instance reused across sweep points (warm runtime)
        # never re-searches at all.
        self._searches: dict = {}

    def _search(self, q: int) -> Tuple[np.ndarray, np.ndarray,
                                       List[int], List[int]]:
        hit = self._searches.get(q)
        if hit is None:
            hit = kd_search(self.tree, self.queries[q], self.k)
            self._searches[q] = hit
        return hit

    def setup(self, system) -> KnnState:
        tree = self.tree
        alloc = system.allocator()
        nodes = alloc.alloc("knn_nodes", tree.num_nodes, elem_bytes=64, layout=self.layout)
        points = alloc.alloc("knn_points", len(tree.points), elem_bytes=64, layout=self.layout)
        queries = alloc.alloc("knn_queries", len(self.queries), elem_bytes=64)
        return KnnState(
            tree=tree,
            queries=self.queries,
            node_addrs=nodes.addresses,
            point_addrs=points.addresses,
            query_addrs=queries.addresses,
            results=np.full((len(self.queries), self.k), -1, dtype=np.int64),
            k=self.k,
            home_of_query=system.memory_map.home_units(queries.addresses),
            search=self._search,
        )

    def root_tasks(self, state: KnnState) -> List[Task]:
        tasks = []
        for q in range(len(state.queries)):
            _, _, visited, scanned = self._search(q)
            addrs = np.concatenate(
                (
                    [state.query_addrs[q]],
                    state.node_addrs[np.asarray(visited, dtype=np.int64)],
                    state.point_addrs[np.asarray(scanned, dtype=np.int64)],
                )
            )
            tasks.append(
                Task(
                    func=_task_knn,
                    timestamp=0,
                    hint=TaskHint(addresses=addrs),
                    args=(q,),
                    compute_cycles=(
                        _BASE_CYCLES
                        + _PER_NODE_CYCLES * len(visited)
                        + _PER_POINT_CYCLES * len(scanned)
                    ),
                    spawner_unit=int(state.home_of_query[q]),
                )
            )
        return tasks

    # ------------------------------------------------------------------
    def reference_neighbors(self, q: int) -> np.ndarray:
        d2 = ((self.dataset.points - self.queries[q]) ** 2).sum(axis=1)
        return np.argsort(d2, kind="stable")[: self.k]

    def verify(self, state: KnnState) -> None:
        """Brute-force check on a deterministic sample of queries."""
        sample = range(0, len(self.queries), max(1, len(self.queries) // 64))
        pts = self.dataset.points
        for q in sample:
            got = state.results[q]
            expected = self.reference_neighbors(q)
            d_got = np.sort(((pts[got] - self.queries[q]) ** 2).sum(axis=1))
            d_exp = np.sort(((pts[expected] - self.queries[q]) ** 2).sum(axis=1))
            if not np.allclose(d_got, d_exp, atol=1e-9):
                raise AssertionError(f"KNN result wrong for query {q}")
