"""Synthetic dataset generators.

The paper evaluates on SNAP graphs, UFL sparse matrices, and synthetic
point sets.  The phenomena that drive every figure — hotspots and load
imbalance — come from *power-law skew* in those inputs, so we generate
synthetic datasets with controllable skew that exercise exactly the
same code paths (see DESIGN.md, substitution table):

* :func:`powerlaw_graph` — Barabási–Albert preferential attachment,
  the canonical generator of power-law degree distributions [37].
* :func:`grid_maze` — weighted 2D grid with obstacles for A*.
* :func:`skewed_sparse_matrix` — CSR matrix whose column indices are
  Zipf-distributed, creating hot input-vector entries (SpMV).
* :func:`clustered_points` — Gaussian mixtures with optionally skewed
  cluster sizes (K-means balanced, KNN skewed).
* :func:`zipf_choices` — the shared skewed sampler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.workloads.graph import Graph


def zipf_weights(n_values: int, skew: float) -> np.ndarray:
    """Normalised Zipf(skew) weights over ``n_values`` ranks.

    ``skew = 0`` is uniform; larger values concentrate the mass on the
    first ranks.
    """
    if n_values <= 0:
        raise ValueError("n_values must be positive")
    ranks = np.arange(1, n_values + 1, dtype=np.float64)
    weights = ranks ** (-skew) if skew > 0 else np.ones(n_values)
    return weights / weights.sum()


def zipf_choices(
    n_values: int,
    size: int,
    skew: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample ``size`` indices in [0, n_values) with Zipf(skew) weights.

    A random permutation decouples "hot" from "low index" so hot
    elements spread across home units.
    """
    weights = zipf_weights(n_values, skew)
    perm = rng.permutation(n_values)
    drawn = rng.choice(n_values, size=size, p=weights)
    return perm[drawn]


def powerlaw_graph(
    num_vertices: int,
    edges_per_vertex: int = 8,
    seed: int = 7,
    relabel: bool = True,
) -> Graph:
    """Barabási–Albert preferential-attachment graph (undirected CSR).

    Every new vertex attaches to ``edges_per_vertex`` existing vertices
    with probability proportional to their current degree, yielding the
    power-law degree distribution responsible for the paper's data
    hotspots.

    ``relabel`` applies a random vertex-id permutation.  BA generation
    places every hub at a low id; without relabeling, a blocked data
    layout would park *all* hubs in unit 0, which over-states the
    hotspot effect relative to the paper's real-world graphs (whose
    hubs are scattered through the id space).
    """
    m = edges_per_vertex
    if num_vertices <= m:
        raise ValueError("need more vertices than edges_per_vertex")
    rng = np.random.default_rng(seed)

    edges: List[Tuple[int, int]] = []
    # Seed clique-ish core: connect the first m+1 vertices in a ring.
    targets = list(range(m))
    # repeated_nodes holds each endpoint once per incident edge, so
    # uniform sampling from it is degree-proportional sampling.
    repeated: List[int] = []
    for v in range(m, num_vertices):
        chosen = set()
        # Sample m distinct targets (degree-proportional).
        while len(chosen) < m:
            if repeated:
                candidate = repeated[rng.integers(len(repeated))]
            else:
                candidate = targets[rng.integers(len(targets))]
            chosen.add(int(candidate))
        for u in chosen:
            edges.append((v, u))
            repeated.append(v)
            repeated.append(u)
    if relabel:
        perm = rng.permutation(num_vertices)
        edges = [(int(perm[a]), int(perm[b])) for a, b in edges]
    return Graph.from_edges(num_vertices, edges, symmetric=True)


def community_powerlaw_graph(
    num_vertices: int,
    edges_per_vertex: int = 10,
    communities: Optional[int] = None,
    intra_fraction: float = 0.2,
    num_hubs: Optional[int] = None,
    hub_edge_fraction: float = 0.8,
    hub_skew: float = 0.4,
    seed: int = 7,
) -> Graph:
    """Power-law graph with community structure and global hubs.

    Real-world graphs combine three properties that drive the paper's
    evaluation:

    * a power-law degree distribution whose *top* vertices attract a
      large share of all edges (the hot data elements behind the
      paper's hotspots and the Traveller Cache's reuse),
    * community locality (a vertex's neighbors cluster in its own
      region of the id space), and
    * a heavy tail of moderate-degree vertices.

    Plain Barabási–Albert reproduces only the tail shape — at the few
    thousand vertices a Python simulator can afford, its top vertex
    holds well under 1% of the edges, versus tens of percent in SNAP
    graphs.  This generator therefore (a) runs preferential attachment
    *within* each community for ``intra_fraction`` of every vertex's
    edges, and (b) directs ``hub_edge_fraction`` of the remaining
    cross-community edges at ``num_hubs`` designated global hub
    vertices (Zipf-weighted among them), restoring the real-world
    hot-vertex concentration.

    Communities are contiguous id blocks, so a blocked data layout maps
    each community onto a handful of adjacent NDP units; hubs are
    spread one per community.
    """
    m = edges_per_vertex
    if communities is None:
        # Default: communities of ~2(m+1) vertices, capped at 128 (the
        # default machine's unit count) so one community maps to about
        # one unit under a blocked layout.
        communities = max(1, min(128, num_vertices // (2 * (m + 1))))
    if num_hubs is None:
        num_hubs = communities
    if num_vertices <= communities * (m + 1):
        raise ValueError("communities too small for edges_per_vertex")
    rng = np.random.default_rng(seed)
    bounds = np.linspace(0, num_vertices, communities + 1).astype(np.int64)

    # One hub in the middle of each of the first num_hubs communities.
    num_hubs = min(num_hubs, communities)
    hubs = np.array(
        [(bounds[c] + bounds[c + 1]) // 2 for c in range(num_hubs)],
        dtype=np.int64,
    )
    hub_ranks = np.arange(1, num_hubs + 1, dtype=np.float64)
    hub_weights = hub_ranks ** (-hub_skew)
    hub_weights /= hub_weights.sum()

    edges: List[Tuple[int, int]] = []
    global_repeated: List[int] = []
    for c in range(communities):
        lo, hi = int(bounds[c]), int(bounds[c + 1])
        local_repeated: List[int] = []
        for v in range(lo, hi):
            n_prior = v - lo
            # Split this vertex's edges between community and global
            # preferential attachment.
            m_here = min(m, max(1, n_prior)) if n_prior else 0
            intra = int(round(m_here * intra_fraction))
            # Always keep at least one community edge so every vertex
            # (including each community's first few) stays connected.
            if m_here and n_prior:
                intra = max(1, intra)
            inter = m_here - intra
            chosen = set()
            while len(chosen) < intra and n_prior:
                if local_repeated:
                    cand = local_repeated[rng.integers(len(local_repeated))]
                else:
                    cand = lo + int(rng.integers(n_prior))
                if cand != v:
                    chosen.add(int(cand))
            guard = 0
            while len(chosen) < intra + inter and global_repeated:
                if rng.random() < hub_edge_fraction:
                    cand = int(hubs[rng.choice(num_hubs, p=hub_weights)])
                else:
                    cand = global_repeated[rng.integers(len(global_repeated))]
                if cand != v:
                    chosen.add(int(cand))
                guard += 1
                if guard > 8 * m:
                    break
            for u in chosen:
                edges.append((v, u))
                local_repeated.append(v)
                if lo <= u < hi:
                    local_repeated.append(u)
                global_repeated.append(v)
                global_repeated.append(u)
    return Graph.from_edges(num_vertices, edges, symmetric=True)


def random_weights(
    graph: Graph, low: float = 1.0, high: float = 8.0, seed: int = 11
) -> Graph:
    """Attach symmetric uniform-random edge weights to a graph."""
    rng = np.random.default_rng(seed)
    # Weight each undirected pair identically: derive from the pair key.
    u = np.repeat(np.arange(graph.num_vertices), np.diff(graph.indptr))
    v = graph.indices
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    pair_key = lo * graph.num_vertices + hi
    uniq, inverse = np.unique(pair_key, return_inverse=True)
    pair_w = rng.uniform(low, high, size=len(uniq))
    return Graph(graph.num_vertices, graph.indptr, graph.indices,
                 weights=pair_w[inverse])


@dataclass
class GridMaze:
    """Weighted 2D grid with obstacles (A* input)."""

    rows: int
    cols: int
    blocked: np.ndarray       # (rows*cols,) bool
    move_cost: np.ndarray     # (rows*cols,) float64, cost of entering a cell
    start: int
    goal: int

    @property
    def num_cells(self) -> int:
        return self.rows * self.cols

    def cell(self, r: int, c: int) -> int:
        return r * self.cols + c

    def coords(self, cell: int) -> Tuple[int, int]:
        return divmod(cell, self.cols)

    def neighbors(self, cell: int) -> List[int]:
        # Pure function of the frozen maze, called from both the hint
        # pass and every expansion wave: memoized as one table, built
        # lazily with exactly the scalar path's up/down/left/right
        # order and blocked filter.
        table = getattr(self, "_neighbor_table", None)
        if table is None:
            table = self._build_neighbor_table()
            self._neighbor_table = table
        return table[cell]

    def _build_neighbor_table(self) -> List[List[int]]:
        blocked = self.blocked
        cols = self.cols
        last_r, last_c = self.rows - 1, cols - 1
        table = []
        for cell in range(self.num_cells):
            r, c = divmod(cell, cols)
            out = []
            if r > 0:
                out.append(cell - cols)
            if r < last_r:
                out.append(cell + cols)
            if c > 0:
                out.append(cell - 1)
            if c < last_c:
                out.append(cell + 1)
            table.append([n for n in out if not blocked[n]])
        return table

    def heuristic(self, cell: int) -> float:
        """Admissible Manhattan-distance heuristic to the goal."""
        table = getattr(self, "_heuristic_table", None)
        if table is None:
            r, c = np.divmod(np.arange(self.num_cells), self.cols)
            gr, gc = self.coords(self.goal)
            table = (np.abs(r - gr) + np.abs(c - gc)).astype(float).tolist()
            self._heuristic_table = table
        return table[cell]

    def move_costs(self) -> List[float]:
        """``move_cost`` as a plain float list (scalar-indexing the
        array per neighbor dominates the expansion inner loop)."""
        table = getattr(self, "_move_cost_list", None)
        if table is None:
            table = self.move_cost.tolist()
            self._move_cost_list = table
        return table


def grid_maze(
    rows: int = 64,
    cols: int = 64,
    obstacle_fraction: float = 0.2,
    seed: int = 13,
) -> GridMaze:
    """Random weighted maze with start/goal in opposite corners.

    Obstacles are re-drawn (up to a bounded number of attempts) until
    the goal is reachable, so A* always has a solution.
    """
    rng = np.random.default_rng(seed)
    n = rows * cols
    start = 0
    goal = n - 1
    for _ in range(64):
        blocked = rng.random(n) < obstacle_fraction
        blocked[start] = False
        blocked[goal] = False
        maze = GridMaze(
            rows=rows,
            cols=cols,
            blocked=blocked,
            move_cost=rng.uniform(1.0, 4.0, size=n),
            start=start,
            goal=goal,
        )
        if _reachable(maze):
            return maze
    raise RuntimeError("could not generate a solvable maze")


def _reachable(maze: GridMaze) -> bool:
    seen = {maze.start}
    stack = [maze.start]
    while stack:
        cell = stack.pop()
        if cell == maze.goal:
            return True
        for n in maze.neighbors(cell):
            if n not in seen:
                seen.add(n)
                stack.append(n)
    return False


@dataclass
class SparseMatrix:
    """CSR sparse matrix plus the dense input vector (SpMV input)."""

    rows: int
    cols: int
    indptr: np.ndarray
    indices: np.ndarray
    values: np.ndarray
    vector: np.ndarray

    @property
    def nnz(self) -> int:
        return len(self.indices)

    def row_slice(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.values[lo:hi]

    def multiply(self, x: Optional[np.ndarray] = None) -> np.ndarray:
        """Dense reference product (for verification)."""
        if x is None:
            x = self.vector
        y = np.zeros(self.rows)
        for i in range(self.rows):
            cols_i, vals_i = self.row_slice(i)
            y[i] = (vals_i * x[cols_i]).sum()
        return y


def skewed_sparse_matrix(
    rows: int = 2048,
    cols: Optional[int] = None,
    nnz_per_row: int = 12,
    skew: float = 0.9,
    seed: int = 17,
) -> SparseMatrix:
    """Sparse matrix with Zipf-distributed column popularity.

    A handful of columns appear in most rows — the hot input-vector
    entries that make SpMV hotspot-prone on NDP.
    Row lengths vary (Poisson around ``nnz_per_row``) so task loads are
    non-uniform too.
    """
    if cols is None:
        cols = rows
    rng = np.random.default_rng(seed)
    lengths = np.maximum(1, rng.poisson(nnz_per_row, size=rows))
    lengths = np.minimum(lengths, cols)  # a row holds at most cols entries
    indptr = np.zeros(rows + 1, dtype=np.int64)
    np.cumsum(lengths, out=indptr[1:])
    total = int(indptr[-1])
    indices = np.empty(total, dtype=np.int64)
    # One column-popularity ranking shared by every row: the same few
    # columns are hot across the whole matrix (cross-row reuse is what
    # makes the corresponding vector entries hot data).
    weights = zipf_weights(cols, skew)
    perm = rng.permutation(cols)
    for i in range(rows):
        lo, hi = indptr[i], indptr[i + 1]
        drawn = rng.choice(cols, size=(hi - lo) * 2, p=weights)
        picks = np.unique(perm[drawn])[: hi - lo]
        while len(picks) < hi - lo:  # pad with uniform distinct columns
            extra = rng.choice(cols, size=(hi - lo) - len(picks),
                               replace=False)
            picks = np.unique(np.concatenate([picks, extra]))[: hi - lo]
        indices[lo:hi] = np.sort(picks)
    values = rng.uniform(-1.0, 1.0, size=total)
    vector = rng.uniform(-1.0, 1.0, size=cols)
    return SparseMatrix(rows, cols, indptr, indices, values, vector)


@dataclass
class PointSet:
    """Points in R^d with ground-truth cluster labels."""

    points: np.ndarray   # (n, d)
    labels: np.ndarray   # (n,)
    centers: np.ndarray  # (k, d)

    @property
    def count(self) -> int:
        return len(self.points)

    @property
    def dim(self) -> int:
        return self.points.shape[1]


def clustered_points(
    count: int = 4096,
    dim: int = 4,
    clusters: int = 8,
    cluster_skew: float = 0.0,
    spread: float = 0.6,
    seed: int = 19,
) -> PointSet:
    """Gaussian-mixture point set.

    ``cluster_skew = 0`` gives equal-size clusters (K-means input);
    larger values concentrate points in a few clusters (the skewed KNN
    input responsible for that workload's imbalance).
    """
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-10.0, 10.0, size=(clusters, dim))
    weights = zipf_weights(clusters, cluster_skew)
    labels = rng.choice(clusters, size=count, p=weights)
    points = centers[labels] + rng.normal(0.0, spread, size=(count, dim))
    return PointSet(points=points, labels=labels, centers=centers)
