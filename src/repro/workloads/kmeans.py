"""K-means clustering in the task model.

One task per point per iteration: the task reads its own (unit-local)
point record, scans the K centroids — small, replicated on every unit,
hence auxiliary data outside the hint — and records its assignment and
partial sum.  Centroids are recomputed in bulk at the barrier.

Tasks are fully independent and touch only local data, so K-means shows
essentially no difference across the Table 2 designs — the paper calls
this out explicitly, and it is a useful null-result workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.runtime.task import Task, TaskHint
from repro.workloads.base import Workload, register_workload
from repro.workloads.datasets import PointSet, clustered_points

_BASE_CYCLES = 30.0
_PER_CENTROID_CYCLES = 8.0


@dataclass
class KMeansState:
    points: np.ndarray
    addresses: np.ndarray
    centroids: np.ndarray
    assignments: np.ndarray
    sums: np.ndarray          # (k, d) partial sums accumulated this pass
    counts: np.ndarray        # (k,)
    max_iters: int
    home_of: np.ndarray


def _task_kmeans(ctx, i: int) -> None:
    st: KMeansState = ctx.state
    p = st.points[i]
    d2 = ((st.centroids - p) ** 2).sum(axis=1)
    c = int(np.argmin(d2))
    st.assignments[i] = c
    st.sums[c] += p
    st.counts[c] += 1

    if ctx.timestamp + 1 < st.max_iters:
        ctx.enqueue_task(
            _task_kmeans,
            ctx.timestamp + 1,
            TaskHint(addresses=np.array([st.addresses[i]])),
            i,
            compute_cycles=_BASE_CYCLES + _PER_CENTROID_CYCLES * len(st.centroids),
        )


@register_workload("kmeans")
class KMeansWorkload(Workload):
    """Lloyd's algorithm on a balanced Gaussian-mixture point set."""

    def __init__(
        self,
        num_points: int = 4096,
        dim: int = 4,
        clusters: int = 8,
        iterations: int = 3,
        seed: int = 37,
        dataset: Optional[PointSet] = None,
    ):
        self.dataset = dataset if dataset is not None else clustered_points(
            num_points, dim, clusters, cluster_skew=0.0, seed=seed
        )
        self.clusters = clusters
        self.iterations = iterations
        rng = np.random.default_rng(seed + 1)
        picks = rng.choice(self.dataset.count, size=clusters, replace=False)
        self.init_centroids = self.dataset.points[picks].copy()

    def setup(self, system) -> KMeansState:
        ds = self.dataset
        alloc = system.allocator()
        region = alloc.alloc("kmeans_points", ds.count, elem_bytes=64, layout=self.layout)
        k, d = self.init_centroids.shape
        return KMeansState(
            points=ds.points,
            addresses=region.addresses,
            centroids=self.init_centroids.copy(),
            assignments=np.full(ds.count, -1, dtype=np.int64),
            sums=np.zeros((k, d)),
            counts=np.zeros(k, dtype=np.int64),
            max_iters=self.iterations,
            home_of=system.memory_map.home_units(region.addresses),
        )

    def root_tasks(self, state: KMeansState) -> List[Task]:
        tasks = []
        for i in range(len(state.points)):
            tasks.append(
                Task(
                    func=_task_kmeans,
                    timestamp=0,
                    hint=TaskHint(addresses=np.array([state.addresses[i]])),
                    args=(i,),
                    compute_cycles=(
                        _BASE_CYCLES + _PER_CENTROID_CYCLES * self.clusters
                    ),
                    spawner_unit=int(state.home_of[i]),
                )
            )
        return tasks

    def on_barrier(self, timestamp: int, state: KMeansState) -> None:
        """Recompute centroids from the pass's partial sums."""
        for c in range(len(state.centroids)):
            if state.counts[c] > 0:
                state.centroids[c] = state.sums[c] / state.counts[c]
        state.sums[:] = 0.0
        state.counts[:] = 0

    # ------------------------------------------------------------------
    def reference_assignments(self) -> np.ndarray:
        """Vectorised Lloyd iterations for verification."""
        pts = self.dataset.points
        centroids = self.init_centroids.copy()
        assignments = None
        for _ in range(self.iterations):
            d2 = ((pts[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
            assignments = np.argmin(d2, axis=1)
            for c in range(len(centroids)):
                members = pts[assignments == c]
                if len(members):
                    centroids[c] = members.mean(axis=0)
        return assignments

    def verify(self, state: KMeansState) -> None:
        expected = self.reference_assignments()
        if not np.array_equal(state.assignments, expected):
            bad = int((state.assignments != expected).sum())
            raise AssertionError(f"K-means assignments differ at {bad} points")
