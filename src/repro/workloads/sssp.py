"""Single-source shortest paths (level-synchronous Bellman-Ford).

Timestamp ``r`` is one relaxation round: a task runs for every vertex
whose tentative distance improved in round ``r - 1``, relaxing its
outgoing edges against a double-buffered distance array.  Updates are
bulk-applied at the barrier; the algorithm terminates when a round
improves nothing (at most V-1 rounds, like textbook Bellman-Ford).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.runtime.task import Task
from repro.workloads.base import Workload, register_workload, vertex_hint
from repro.workloads.datasets import community_powerlaw_graph, random_weights
from repro.workloads.graph import Graph

_BASE_CYCLES = 36.0
_PER_NEIGHBOR_CYCLES = 9.0


@dataclass
class SsspState:
    graph: Graph
    addresses: np.ndarray
    dist: np.ndarray          # settled distances (read buffer)
    next_dist: np.ndarray     # write buffer, bulk-applied at the barrier
    in_next: np.ndarray       # vertex already has a task for round r+1
    source: int
    max_rounds: int
    home_of: np.ndarray


def _spawn(ctx, st: SsspState, u: int) -> None:
    g = st.graph
    neigh = g.neighbors(u)
    ctx.enqueue_task(
        _task_sssp,
        ctx.timestamp + 1,
        vertex_hint(st.addresses, u, neigh),
        u,
        compute_cycles=_BASE_CYCLES + _PER_NEIGHBOR_CYCLES * len(neigh),
    )


def _task_sssp(ctx, v: int) -> None:
    """Relax every edge out of ``v`` against the next-round buffer."""
    st: SsspState = ctx.state
    g = st.graph
    base = st.dist[v]
    if not np.isfinite(base):
        return
    limit_reached = ctx.timestamp + 1 >= st.max_rounds
    neighbors = g.neighbors(v)
    weights = g.edge_weights(v)
    for u, w in zip(neighbors, weights):
        u = int(u)
        cand = base + float(w)
        if cand < st.next_dist[u] - 1e-12:
            st.next_dist[u] = cand
            if not limit_reached and not st.in_next[u]:
                st.in_next[u] = True
                _spawn(ctx, st, u)


@register_workload("sssp")
class SsspWorkload(Workload):
    """SSSP on a weighted power-law graph."""

    def __init__(
        self,
        num_vertices: int = 2048,
        edges_per_vertex: int = 10,
        source: Optional[int] = None,
        max_rounds: int = 16,
        seed: int = 29,
        graph: Optional[Graph] = None,
    ):
        if graph is None:
            graph = random_weights(
                community_powerlaw_graph(num_vertices, edges_per_vertex, seed=seed),
                seed=seed + 1,
            )
        if graph.weights is None:
            raise ValueError("SSSP requires an edge-weighted graph")
        self.graph = graph
        self.source = (
            source if source is not None else graph.max_degree_vertex()
        )
        self.max_rounds = max_rounds

    def setup(self, system) -> SsspState:
        g = self.graph
        alloc = system.allocator()
        region = alloc.alloc("sssp_vertices", g.num_vertices, elem_bytes=64, layout=self.layout)
        dist = np.full(g.num_vertices, np.inf)
        dist[self.source] = 0.0
        return SsspState(
            graph=g,
            addresses=region.addresses,
            dist=dist,
            next_dist=dist.copy(),
            in_next=np.zeros(g.num_vertices, dtype=bool),
            source=self.source,
            max_rounds=self.max_rounds,
            home_of=system.memory_map.home_units(region.addresses),
        )

    def root_tasks(self, state: SsspState) -> List[Task]:
        v = state.source
        neigh = state.graph.neighbors(v)
        return [
            Task(
                func=_task_sssp,
                timestamp=0,
                hint=vertex_hint(state.addresses, v, neigh),
                args=(v,),
                compute_cycles=_BASE_CYCLES + _PER_NEIGHBOR_CYCLES * len(neigh),
                spawner_unit=int(state.home_of[v]),
            )
        ]

    def on_barrier(self, timestamp: int, state: SsspState) -> None:
        """Bulk-apply improved distances and reset the dedup filter."""
        state.dist = state.next_dist
        state.next_dist = state.dist.copy()
        state.in_next[:] = False

    # ------------------------------------------------------------------
    def reference_distances(self) -> np.ndarray:
        """Dijkstra with a binary heap, independent of the task port."""
        g = self.graph
        dist = np.full(g.num_vertices, np.inf)
        dist[self.source] = 0.0
        heap = [(0.0, self.source)]
        while heap:
            d, v = heapq.heappop(heap)
            if d > dist[v] + 1e-12:
                continue
            for u, w in zip(g.neighbors(v), g.edge_weights(v)):
                cand = d + float(w)
                if cand < dist[u] - 1e-12:
                    dist[u] = cand
                    heapq.heappush(heap, (cand, int(u)))
        return dist

    def verify(self, state: SsspState) -> None:
        expected = self.reference_distances()
        # Bounded rounds can leave distant vertices unconverged; with
        # the default budget the graphs used here settle completely.
        mism = ~np.isclose(state.dist, expected, atol=1e-9, equal_nan=True)
        finite = np.isfinite(expected)
        if (mism & finite).any():
            bad = int((mism & finite).sum())
            raise AssertionError(f"SSSP distances differ at {bad} vertices")
