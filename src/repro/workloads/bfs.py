"""Breadth-first search in the task model.

Level-synchronous BFS: timestamp ``d`` runs one task per frontier
vertex at distance ``d``.  A task scans its neighbor records and
enqueues a task for every neighbor not yet queued; the ``queued``
filter prevents duplicate tasks for the same vertex within a level
(the standard visited bitmap).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.runtime.task import Task
from repro.workloads.base import Workload, register_workload, vertex_hint
from repro.workloads.datasets import community_powerlaw_graph
from repro.workloads.graph import Graph

_BASE_CYCLES = 30.0
_PER_NEIGHBOR_CYCLES = 6.0


@dataclass
class BfsState:
    graph: Graph
    addresses: np.ndarray
    dist: np.ndarray          # -1 = unvisited
    queued: np.ndarray        # bool: a task for this vertex exists
    source: int
    home_of: np.ndarray


def _task_bfs(ctx, v: int) -> None:
    st: BfsState = ctx.state
    g = st.graph
    st.dist[v] = ctx.timestamp
    for u in g.neighbors(v):
        u = int(u)
        if st.queued[u]:
            continue
        st.queued[u] = True
        neigh_u = g.neighbors(u)
        ctx.enqueue_task(
            _task_bfs,
            ctx.timestamp + 1,
            vertex_hint(st.addresses, u, neigh_u),
            u,
            compute_cycles=_BASE_CYCLES + _PER_NEIGHBOR_CYCLES * len(neigh_u),
        )


@register_workload("bfs")
class BfsWorkload(Workload):
    """Single-source BFS on a power-law graph."""

    def __init__(
        self,
        num_vertices: int = 4096,
        edges_per_vertex: int = 10,
        source: Optional[int] = None,
        seed: int = 23,
        graph: Optional[Graph] = None,
    ):
        self.graph = graph if graph is not None else community_powerlaw_graph(
            num_vertices, edges_per_vertex, seed=seed
        )
        # Default to a well-connected root (the usual BFS benchmark
        # practice): the maximum-degree vertex.
        self.source = (
            source if source is not None else self.graph.max_degree_vertex()
        )

    def setup(self, system) -> BfsState:
        g = self.graph
        alloc = system.allocator()
        region = alloc.alloc("bfs_vertices", g.num_vertices, elem_bytes=64, layout=self.layout)
        dist = np.full(g.num_vertices, -1, dtype=np.int64)
        queued = np.zeros(g.num_vertices, dtype=bool)
        queued[self.source] = True
        return BfsState(
            graph=g,
            addresses=region.addresses,
            dist=dist,
            queued=queued,
            source=self.source,
            home_of=system.memory_map.home_units(region.addresses),
        )

    def root_tasks(self, state: BfsState) -> List[Task]:
        v = state.source
        neigh = state.graph.neighbors(v)
        return [
            Task(
                func=_task_bfs,
                timestamp=0,
                hint=vertex_hint(state.addresses, v, neigh),
                args=(v,),
                compute_cycles=_BASE_CYCLES + _PER_NEIGHBOR_CYCLES * len(neigh),
                spawner_unit=int(state.home_of[v]),
            )
        ]

    # ------------------------------------------------------------------
    def reference_distances(self) -> np.ndarray:
        """Plain queue-based BFS for verification."""
        g = self.graph
        dist = np.full(g.num_vertices, -1, dtype=np.int64)
        dist[self.source] = 0
        frontier = [self.source]
        d = 0
        while frontier:
            nxt = []
            for v in frontier:
                for u in g.neighbors(v):
                    if dist[u] < 0:
                        dist[u] = d + 1
                        nxt.append(int(u))
            frontier = nxt
            d += 1
        return dist

    def verify(self, state: BfsState) -> None:
        expected = self.reference_distances()
        if not np.array_equal(state.dist, expected):
            bad = int((state.dist != expected).sum())
            raise AssertionError(f"BFS distances differ at {bad} vertices")
