"""The eight NDP-friendly applications of Section 6, in the task model.

Every workload is ported onto the ``enqueue_task`` API the same way the
paper ports them onto its Swarm-like runtime: one task per data element
per bulk-synchronous timestamp, with exact data-access hints built from
the application's own index structures (neighbor lists, column indices,
KD-tree paths).
"""

from repro.workloads.base import Workload, make_workload, WORKLOAD_FACTORIES
from repro.workloads.graph import Graph
from repro.workloads.pagerank import PageRankWorkload
from repro.workloads.bfs import BfsWorkload
from repro.workloads.sssp import SsspWorkload
from repro.workloads.astar import AStarWorkload
from repro.workloads.gcn import GcnWorkload
from repro.workloads.kmeans import KMeansWorkload
from repro.workloads.knn import KnnWorkload
from repro.workloads.spmv import SpmvWorkload
from repro.workloads.cc import ConnectedComponentsWorkload

__all__ = [
    "Workload",
    "make_workload",
    "WORKLOAD_FACTORIES",
    "Graph",
    "PageRankWorkload",
    "BfsWorkload",
    "SsspWorkload",
    "AStarWorkload",
    "GcnWorkload",
    "KMeansWorkload",
    "KnnWorkload",
    "SpmvWorkload",
    "ConnectedComponentsWorkload",
]
