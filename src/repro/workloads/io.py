"""Loading real datasets from files.

The paper evaluates on SNAP graphs and UFL (SuiteSparse) matrices.
This module parses the two interchange formats those collections ship,
so a user with the actual files can run the reproduction on the real
inputs instead of the synthetic generators:

* :func:`load_snap_edges` — SNAP plain edge lists (``#`` comments,
  whitespace-separated ``src dst`` pairs, optional weight column);
* :func:`load_matrix_market` — MatrixMarket ``.mtx`` coordinate files
  (the SuiteSparse download format), returned as the simulator's
  :class:`~repro.workloads.datasets.SparseMatrix`.

Vertex/row ids are compacted to a dense 0..n-1 range; SNAP graphs are
symmetrized (the evaluation treats them as undirected).
"""

from __future__ import annotations

import io
from typing import Dict, List, Optional, TextIO, Tuple, Union

import numpy as np

from repro.workloads.datasets import SparseMatrix
from repro.workloads.graph import Graph

PathOrFile = Union[str, TextIO]


def _open(source: PathOrFile):
    if isinstance(source, str):
        return open(source, "r"), True
    return source, False


def load_snap_edges(
    source: PathOrFile,
    symmetric: bool = True,
    weighted: bool = False,
) -> Graph:
    """Parse a SNAP-style edge list into a CSR graph.

    Lines starting with ``#`` (or ``%``) are comments.  Each data line
    holds ``src dst`` and, with ``weighted=True``, a third weight
    column.  Node ids may be arbitrary non-negative integers; they are
    remapped to a dense range in first-seen order.
    """
    fh, owned = _open(source)
    try:
        ids: Dict[int, int] = {}
        edges: List[Tuple[int, int]] = []
        weights: List[float] = []

        def dense(raw: int) -> int:
            if raw not in ids:
                ids[raw] = len(ids)
            return ids[raw]

        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line[0] in "#%":
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(
                    f"line {lineno}: expected 'src dst', got {line!r}"
                )
            u, v = dense(int(parts[0])), dense(int(parts[1]))
            if u == v:
                continue  # drop self loops
            edges.append((u, v))
            if weighted:
                if len(parts) < 3:
                    raise ValueError(
                        f"line {lineno}: weighted load needs a 3rd column"
                    )
                weights.append(float(parts[2]))

        if not ids:
            raise ValueError("edge list contains no edges")
        return Graph.from_edges(
            len(ids), edges, symmetric=symmetric,
            weights=weights if weighted else None,
        )
    finally:
        if owned:
            fh.close()


def load_matrix_market(
    source: PathOrFile,
    vector_seed: int = 17,
) -> SparseMatrix:
    """Parse a MatrixMarket coordinate file into a SparseMatrix.

    Supports the ``matrix coordinate real/integer/pattern`` header
    with the ``general`` or ``symmetric`` qualifier.  ``pattern``
    entries get value 1.0; symmetric files are expanded.  The dense
    input vector (SpMV's x) is generated deterministically.
    """
    fh, owned = _open(source)
    try:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise ValueError("not a MatrixMarket file")
        fields = header.lower().split()
        if "coordinate" not in fields:
            raise ValueError("only coordinate format is supported")
        pattern = "pattern" in fields
        symmetric = "symmetric" in fields
        if "complex" in fields:
            raise ValueError("complex matrices are not supported")

        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        rows, cols, nnz = (int(v) for v in line.split())

        entries: Dict[Tuple[int, int], float] = {}
        for _ in range(nnz):
            parts = fh.readline().split()
            i, j = int(parts[0]) - 1, int(parts[1]) - 1
            val = 1.0 if pattern else float(parts[2])
            entries[(i, j)] = val
            if symmetric and i != j:
                entries[(j, i)] = val

        by_row: Dict[int, List[Tuple[int, float]]] = {}
        for (i, j), val in entries.items():
            by_row.setdefault(i, []).append((j, val))

        indptr = np.zeros(rows + 1, dtype=np.int64)
        indices: List[int] = []
        values: List[float] = []
        for i in range(rows):
            row = sorted(by_row.get(i, []))
            indptr[i + 1] = indptr[i] + len(row)
            indices.extend(j for j, _ in row)
            values.extend(v for _, v in row)

        rng = np.random.default_rng(vector_seed)
        return SparseMatrix(
            rows=rows,
            cols=cols,
            indptr=indptr,
            indices=np.asarray(indices, dtype=np.int64),
            values=np.asarray(values, dtype=np.float64),
            vector=rng.uniform(-1.0, 1.0, size=cols),
        )
    finally:
        if owned:
            fh.close()


def save_snap_edges(graph: Graph, path: str) -> None:
    """Write a graph back out as a SNAP edge list (each undirected
    edge once)."""
    with open(path, "w") as fh:
        fh.write(f"# Nodes: {graph.num_vertices} "
                 f"Edges: {graph.num_edges // 2}\n")
        src = np.repeat(np.arange(graph.num_vertices),
                        np.diff(graph.indptr))
        for u, v in zip(src, graph.indices):
            if u < v:
                fh.write(f"{u}\t{v}\n")
