"""A* search on a weighted grid maze, in the task model.

Bulk-synchronous ports of A* expand in waves: timestamp ``r`` relaxes
every cell whose tentative g-score improved in round ``r - 1`` and
whose f-score (g + admissible heuristic) does not exceed the incumbent
best path to the goal — the heuristic prunes expansions exactly as in
sequential A*, and the result converges to the optimal path cost.

Task granularity: one task per *batch* of up-to-``batch_size`` frontier
cells that share a home unit.  A* waves are much finer-grained than the
other workloads' phases (tens to hundreds of cells for hundreds of
cores), so a cell-per-task port would drown in scheduling and
migration overheads; batching the wave per home unit amortizes them,
which is the standard engineering choice for task-parallel search.
Batches are formed at the wave barrier from the cells collected during
the previous wave.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import numpy as np

from repro.runtime.task import Task, TaskHint
from repro.workloads.base import Workload, register_workload
from repro.workloads.datasets import GridMaze, grid_maze

_BASE_CYCLES = 32.0
_PER_CELL_CYCLES = 14.0
_PER_NEIGHBOR_CYCLES = 10.0


@dataclass
class AStarState:
    maze: GridMaze
    addresses: np.ndarray
    g_score: np.ndarray
    next_g: np.ndarray
    best_goal: float          # incumbent goal cost for pruning
    max_rounds: int
    batch_size: int
    home_of: np.ndarray
    # Cells improved during the current wave (the next frontier).
    next_wave: Set[int] = field(default_factory=set)


def _task_astar_batch(ctx, cells) -> None:
    """Expand a batch of frontier cells against the next-round buffer."""
    st: AStarState = ctx.state
    maze = st.maze
    move_cost = maze.move_costs()
    for cell in cells:
        g = st.g_score[cell]
        if not np.isfinite(g):
            continue
        # Prune: even the optimistic completion exceeds the incumbent.
        if g + maze.heuristic(cell) > st.best_goal + 1e-12:
            continue
        for n in maze.neighbors(cell):
            cand = g + move_cost[n]
            if cand >= st.next_g[n] - 1e-12:
                continue
            st.next_g[n] = cand
            if n == maze.goal:
                st.best_goal = min(st.best_goal, cand)
            elif cand + maze.heuristic(n) <= st.best_goal + 1e-12:
                st.next_wave.add(int(n))


@register_workload("astar")
class AStarWorkload(Workload):
    """A* path search on a random weighted maze."""

    def __init__(
        self,
        rows: int = 128,
        cols: int = 128,
        obstacle_fraction: float = 0.2,
        batch_size: int = 8,
        max_rounds: int = 0,
        seed: int = 13,
        maze: Optional[GridMaze] = None,
    ):
        self.maze = maze if maze is not None else grid_maze(
            rows, cols, obstacle_fraction, seed=seed
        )
        self.batch_size = batch_size
        # Safe worst-case wave bound: a shortest path revisits no cell,
        # so waves never exceed the cell count; empty waves terminate
        # runs long before this on any realistic maze.
        self.max_rounds = max_rounds or self.maze.num_cells

    def setup(self, system) -> AStarState:
        maze = self.maze
        alloc = system.allocator()
        region = alloc.alloc("astar_cells", maze.num_cells, elem_bytes=64,
                             layout=self.layout)
        g_score = np.full(maze.num_cells, np.inf)
        g_score[maze.start] = 0.0
        return AStarState(
            maze=maze,
            addresses=region.addresses,
            g_score=g_score,
            next_g=g_score.copy(),
            best_goal=np.inf,
            max_rounds=self.max_rounds,
            batch_size=self.batch_size,
            home_of=system.memory_map.home_units(region.addresses),
        )

    def _batch_tasks(self, state: AStarState, cells, timestamp: int) -> List[Task]:
        """Group frontier cells by home unit into batch tasks."""
        by_home: Dict[int, List[int]] = {}
        for cell in sorted(cells):
            by_home.setdefault(int(state.home_of[cell]), []).append(cell)
        tasks = []
        maze = state.maze
        for home, members in by_home.items():
            for i in range(0, len(members), state.batch_size):
                batch = tuple(members[i:i + state.batch_size])
                addr_list: List[int] = []
                n_neighbors = 0
                for cell in batch:
                    addr_list.append(int(state.addresses[cell]))
                    neigh = maze.neighbors(cell)
                    n_neighbors += len(neigh)
                    addr_list.extend(int(state.addresses[n]) for n in neigh)
                tasks.append(
                    Task(
                        func=_task_astar_batch,
                        timestamp=timestamp,
                        hint=TaskHint(
                            addresses=np.asarray(addr_list, dtype=np.int64)
                        ),
                        args=(batch,),
                        compute_cycles=(
                            _BASE_CYCLES
                            + _PER_CELL_CYCLES * len(batch)
                            + _PER_NEIGHBOR_CYCLES * n_neighbors
                        ),
                        spawner_unit=home,
                    )
                )
        return tasks

    def root_tasks(self, state: AStarState) -> List[Task]:
        return self._batch_tasks(state, [state.maze.start], timestamp=0)

    def on_barrier(self, timestamp: int, state: AStarState):
        """Apply g-score updates and emit the next wave's batches."""
        state.g_score = state.next_g
        state.next_g = state.g_score.copy()
        wave, state.next_wave = state.next_wave, set()
        if not wave or timestamp + 1 >= state.max_rounds:
            return None
        return self._batch_tasks(state, wave, timestamp + 1)

    # ------------------------------------------------------------------
    def reference_cost(self) -> float:
        """Sequential A* (heap-based) for verification."""
        maze = self.maze
        g = {maze.start: 0.0}
        heap = [(maze.heuristic(maze.start), maze.start)]
        while heap:
            f, cell = heapq.heappop(heap)
            gc = g[cell]
            if cell == maze.goal:
                return gc
            if f > gc + maze.heuristic(cell) + 1e-12:
                continue
            for n in maze.neighbors(cell):
                cand = gc + float(maze.move_cost[n])
                if cand < g.get(n, np.inf) - 1e-12:
                    g[n] = cand
                    heapq.heappush(heap, (cand + maze.heuristic(n), n))
        return np.inf

    def goal_cost(self, state: AStarState) -> float:
        return float(min(state.best_goal, state.g_score[state.maze.goal]))

    def verify(self, state: AStarState) -> None:
        expected = self.reference_cost()
        got = self.goal_cost(state)
        if not np.isclose(got, expected, atol=1e-9):
            raise AssertionError(
                f"A* path cost {got} != reference {expected}"
            )
