"""Graph convolutional network (GCN) inference in the task model.

A two-layer GCN: each layer computes, per vertex,

    H'[v] = relu( mean({H[u] : u in N(v)} + H[v]) @ W + b )

One task per vertex per layer (timestamp = layer).  The task gathers
the feature rows of the vertex and its neighbors (the dominant memory
traffic), multiplies by the layer's small dense weight matrix (the
dominant compute — GCN tasks are far heavier than Page Rank's), and
writes the next-layer activation.  Feature matrices are double-
buffered and swapped at the barrier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.runtime.task import Task, TaskHint
from repro.workloads.base import Workload, register_workload
from repro.workloads.datasets import community_powerlaw_graph
from repro.workloads.graph import Graph

_BASE_CYCLES = 80.0
_PER_NEIGHBOR_CYCLES = 12.0
_PER_FEATURE_SQ_CYCLES = 1.0  # dense (F x F) multiply term


def _row_addrs(state: "GcnState", vertices: np.ndarray) -> np.ndarray:
    """All cacheline addresses of the given vertices' feature rows.

    A feature row wider than one cacheline spans ``lines_per_row``
    lines; the hint must name each of them (the task reads the whole
    row).
    """
    base = state.addresses[vertices]
    if state.lines_per_row == 1:
        return base
    offs = 64 * np.arange(state.lines_per_row, dtype=np.int64)
    return (base[:, None] + offs[None, :]).reshape(-1)


@dataclass
class GcnState:
    graph: Graph
    addresses: np.ndarray     # first line of each vertex's feature row
    lines_per_row: int
    feats: np.ndarray         # (V, F) current activations
    next_feats: np.ndarray
    weights: List[np.ndarray]
    biases: List[np.ndarray]
    num_layers: int
    home_of: np.ndarray


def _layer_cycles(degree: int, feature_dim: int) -> float:
    return (
        _BASE_CYCLES
        + _PER_NEIGHBOR_CYCLES * degree
        + _PER_FEATURE_SQ_CYCLES * feature_dim * feature_dim / 4.0
    )


def _task_gcn(ctx, v: int) -> None:
    st: GcnState = ctx.state
    g = st.graph
    layer = ctx.timestamp
    neigh = g.neighbors(v)
    gathered = st.feats[neigh].sum(axis=0) + st.feats[v]
    agg = gathered / (len(neigh) + 1)
    out = agg @ st.weights[layer] + st.biases[layer]
    st.next_feats[v] = np.maximum(out, 0.0)  # ReLU

    if layer + 1 < st.num_layers:
        members = np.concatenate(([v], neigh)).astype(np.int64)
        addrs = _row_addrs(st, members)
        ctx.enqueue_task(
            _task_gcn,
            layer + 1,
            TaskHint(addresses=addrs),
            v,
            compute_cycles=_layer_cycles(len(neigh), st.feats.shape[1]),
        )


@register_workload("gcn")
class GcnWorkload(Workload):
    """Two-layer GCN inference over a power-law graph."""

    def __init__(
        self,
        num_vertices: int = 2048,
        edges_per_vertex: int = 10,
        feature_dim: int = 16,
        num_layers: int = 2,
        seed: int = 31,
        graph: Optional[Graph] = None,
    ):
        self.graph = graph if graph is not None else community_powerlaw_graph(
            num_vertices, edges_per_vertex, seed=seed
        )
        self.feature_dim = feature_dim
        self.num_layers = num_layers
        rng = np.random.default_rng(seed + 1)
        self.init_feats = rng.normal(
            0.0, 1.0, size=(self.graph.num_vertices, feature_dim)
        )
        self.weights = [
            rng.normal(0.0, 0.4, size=(feature_dim, feature_dim))
            for _ in range(num_layers)
        ]
        self.biases = [
            rng.normal(0.0, 0.1, size=feature_dim) for _ in range(num_layers)
        ]

    def setup(self, system) -> GcnState:
        g = self.graph
        alloc = system.allocator()
        # One 64 B line holds a 16-float16-ish feature row; wider rows
        # span multiple lines.
        elem_bytes = max(64, self.feature_dim * 4)
        region = alloc.alloc("gcn_features", g.num_vertices, elem_bytes=elem_bytes, layout=self.layout)
        return GcnState(
            graph=g,
            addresses=region.addresses,
            lines_per_row=elem_bytes // 64,
            feats=self.init_feats.copy(),
            next_feats=self.init_feats.copy(),
            weights=self.weights,
            biases=self.biases,
            num_layers=self.num_layers,
            home_of=system.memory_map.home_units(region.addresses),
        )

    def root_tasks(self, state: GcnState) -> List[Task]:
        g = state.graph
        tasks = []
        for v in range(g.num_vertices):
            neigh = g.neighbors(v)
            members = np.concatenate(([v], neigh)).astype(np.int64)
            addrs = _row_addrs(state, members)
            tasks.append(
                Task(
                    func=_task_gcn,
                    timestamp=0,
                    hint=TaskHint(addresses=addrs),
                    args=(v,),
                    compute_cycles=_layer_cycles(len(neigh), self.feature_dim),
                    spawner_unit=int(state.home_of[v]),
                )
            )
        return tasks

    def on_barrier(self, timestamp: int, state: GcnState) -> None:
        state.feats = state.next_feats
        state.next_feats = state.feats.copy()

    # ------------------------------------------------------------------
    def reference_output(self) -> np.ndarray:
        """Dense vectorised forward pass for verification."""
        g = self.graph
        feats = self.init_feats.copy()
        for layer in range(self.num_layers):
            nxt = np.empty_like(feats)
            for v in range(g.num_vertices):
                neigh = g.neighbors(v)
                agg = (feats[neigh].sum(axis=0) + feats[v]) / (len(neigh) + 1)
                nxt[v] = np.maximum(
                    agg @ self.weights[layer] + self.biases[layer], 0.0
                )
            feats = nxt
        return feats

    def verify(self, state: GcnState) -> None:
        expected = self.reference_output()
        if not np.allclose(state.feats, expected, atol=1e-8):
            worst = float(np.abs(state.feats - expected).max())
            raise AssertionError(f"GCN output mismatch, max err {worst}")
