"""Connected components (label propagation) — an extension workload.

Not one of the paper's eight applications, but a canonical NDP graph
kernel (evaluated by Tesseract/GraphP/GraphQ, the systems the paper
builds on) and a natural stress test for the same mechanisms: per
timestamp, every active vertex propagates the minimum component label
seen so far to its neighbors, until no label changes.  Hub vertices'
labels are read by many tasks — the usual hot-data pattern.

Registered as workload name ``"cc"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.runtime.task import Task
from repro.workloads.base import Workload, register_workload, vertex_hint
from repro.workloads.datasets import community_powerlaw_graph
from repro.workloads.graph import Graph

_BASE_CYCLES = 30.0
_PER_NEIGHBOR_CYCLES = 7.0


@dataclass
class CcState:
    graph: Graph
    addresses: np.ndarray
    labels: np.ndarray        # read buffer
    next_labels: np.ndarray   # write buffer, bulk-applied at the barrier
    in_next: np.ndarray
    max_rounds: int
    home_of: np.ndarray


def _spawn(ctx, st: CcState, v: int) -> None:
    neigh = st.graph.neighbors(v)
    ctx.enqueue_task(
        _task_cc,
        ctx.timestamp + 1,
        vertex_hint(st.addresses, v, neigh),
        v,
        compute_cycles=_BASE_CYCLES + _PER_NEIGHBOR_CYCLES * len(neigh),
    )


def _task_cc(ctx, v: int) -> None:
    """Push this vertex's label to any neighbor with a larger one."""
    st: CcState = ctx.state
    label = st.labels[v]
    limit_reached = ctx.timestamp + 1 >= st.max_rounds
    for u in st.graph.neighbors(v):
        u = int(u)
        if label < st.next_labels[u]:
            st.next_labels[u] = label
            if not limit_reached and not st.in_next[u]:
                st.in_next[u] = True
                _spawn(ctx, st, u)


@register_workload("cc")
class ConnectedComponentsWorkload(Workload):
    """Label-propagation connected components on a power-law graph."""

    def __init__(
        self,
        num_vertices: int = 2048,
        edges_per_vertex: int = 10,
        max_rounds: int = 0,
        seed: int = 43,
        graph: Optional[Graph] = None,
    ):
        self.graph = graph if graph is not None else community_powerlaw_graph(
            num_vertices, edges_per_vertex, seed=seed
        )
        # Label propagation needs at most diameter rounds; power-law
        # graphs have tiny diameters, but keep a generous bound.
        self.max_rounds = max_rounds or 32

    def setup(self, system) -> CcState:
        g = self.graph
        alloc = system.allocator()
        region = alloc.alloc("cc_vertices", g.num_vertices, elem_bytes=64,
                             layout=self.layout)
        labels = np.arange(g.num_vertices, dtype=np.int64)
        return CcState(
            graph=g,
            addresses=region.addresses,
            labels=labels,
            next_labels=labels.copy(),
            in_next=np.zeros(g.num_vertices, dtype=bool),
            max_rounds=self.max_rounds,
            home_of=system.memory_map.home_units(region.addresses),
        )

    def root_tasks(self, state: CcState) -> List[Task]:
        g = state.graph
        tasks = []
        for v in range(g.num_vertices):
            neigh = g.neighbors(v)
            tasks.append(
                Task(
                    func=_task_cc,
                    timestamp=0,
                    hint=vertex_hint(state.addresses, v, neigh),
                    args=(v,),
                    compute_cycles=(
                        _BASE_CYCLES + _PER_NEIGHBOR_CYCLES * len(neigh)
                    ),
                    spawner_unit=int(state.home_of[v]),
                )
            )
        return tasks

    def on_barrier(self, timestamp: int, state: CcState):
        state.labels = state.next_labels
        state.next_labels = state.labels.copy()
        state.in_next[:] = False
        return None

    # ------------------------------------------------------------------
    def reference_labels(self) -> np.ndarray:
        """Union-find reference, independent of the task port."""
        g = self.graph
        parent = np.arange(g.num_vertices, dtype=np.int64)

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = int(parent[x])
            return x

        src = np.repeat(np.arange(g.num_vertices), np.diff(g.indptr))
        for a, b in zip(src, g.indices):
            ra, rb = find(int(a)), find(int(b))
            if ra != rb:
                parent[max(ra, rb)] = min(ra, rb)
        # Component id = minimum vertex id in the component.
        roots = np.array([find(v) for v in range(g.num_vertices)])
        remap: dict = {}
        for v in range(g.num_vertices):
            r = int(roots[v])
            if r not in remap:
                remap[r] = v  # first (minimum) vertex seen for this root
        return np.array([remap[int(roots[v])] for v in range(g.num_vertices)])

    def verify(self, state: CcState) -> None:
        expected = self.reference_labels()
        if not np.array_equal(state.labels, expected):
            bad = int((state.labels != expected).sum())
            raise AssertionError(f"CC labels differ at {bad} vertices")
