"""Compressed-sparse-row graph container used by the graph workloads.

Stored as symmetric (undirected) CSR by default; the graph analytics
workloads treat ``neighbors(v)`` as both the in- and out-neighborhood,
matching the undirected real-world graphs the paper evaluates on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

import numpy as np


@dataclass
class Graph:
    """CSR adjacency with optional edge weights."""

    num_vertices: int
    indptr: np.ndarray   # (V+1,) int64
    indices: np.ndarray  # (E,)   int64
    weights: Optional[np.ndarray] = None  # (E,) float64

    def __post_init__(self) -> None:
        self.indptr = np.asarray(self.indptr, dtype=np.int64)
        self.indices = np.asarray(self.indices, dtype=np.int64)
        if len(self.indptr) != self.num_vertices + 1:
            raise ValueError("indptr length must be num_vertices + 1")
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.indices):
            raise ValueError("indptr does not span the edge array")
        if (np.diff(self.indptr) < 0).any():
            raise ValueError("indptr must be non-decreasing")
        if self.weights is not None:
            self.weights = np.asarray(self.weights, dtype=np.float64)
            if len(self.weights) != len(self.indices):
                raise ValueError("weights length must match indices")

    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Directed edge count (an undirected edge counts twice)."""
        return len(self.indices)

    def neighbors(self, v: int) -> np.ndarray:
        return self.indices[self.indptr[v]:self.indptr[v + 1]]

    def edge_weights(self, v: int) -> np.ndarray:
        if self.weights is None:
            raise ValueError("graph has no weights")
        return self.weights[self.indptr[v]:self.indptr[v + 1]]

    def degree(self, v: int) -> int:
        return int(self.indptr[v + 1] - self.indptr[v])

    @property
    def degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    def max_degree_vertex(self) -> int:
        return int(np.argmax(self.degrees))

    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        num_vertices: int,
        edges: Iterable[Tuple[int, int]],
        symmetric: bool = True,
        weights: Optional[Iterable[float]] = None,
    ) -> "Graph":
        """Build a CSR graph from an edge list.

        With ``symmetric=True`` (default) every (u, v) also inserts
        (v, u); duplicate edges are removed.
        """
        edge_arr = np.asarray(list(edges), dtype=np.int64)
        if edge_arr.size == 0:
            indptr = np.zeros(num_vertices + 1, dtype=np.int64)
            return cls(num_vertices, indptr, np.empty(0, dtype=np.int64))
        if edge_arr.ndim != 2 or edge_arr.shape[1] != 2:
            raise ValueError("edges must be (u, v) pairs")
        if edge_arr.min() < 0 or edge_arr.max() >= num_vertices:
            raise ValueError("edge endpoint out of range")

        w_arr = None
        if weights is not None:
            w_arr = np.asarray(list(weights), dtype=np.float64)
            if len(w_arr) != len(edge_arr):
                raise ValueError("weights length must match edges")

        if symmetric:
            rev = edge_arr[:, ::-1]
            edge_arr = np.concatenate([edge_arr, rev])
            if w_arr is not None:
                w_arr = np.concatenate([w_arr, w_arr])

        # Deduplicate (u, v) pairs, keeping the first weight seen.
        keys = edge_arr[:, 0] * num_vertices + edge_arr[:, 1]
        _, first_idx = np.unique(keys, return_index=True)
        first_idx.sort()
        edge_arr = edge_arr[first_idx]
        if w_arr is not None:
            w_arr = w_arr[first_idx]

        order = np.lexsort((edge_arr[:, 1], edge_arr[:, 0]))
        edge_arr = edge_arr[order]
        if w_arr is not None:
            w_arr = w_arr[order]

        counts = np.bincount(edge_arr[:, 0], minlength=num_vertices)
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(num_vertices, indptr, edge_arr[:, 1].copy(), w_arr)

    def connected_component_of(self, source: int) -> np.ndarray:
        """Vertices reachable from ``source`` (used to pick BFS roots)."""
        seen = np.zeros(self.num_vertices, dtype=bool)
        seen[source] = True
        frontier = [source]
        while frontier:
            nxt = []
            for v in frontier:
                for u in self.neighbors(v):
                    if not seen[u]:
                        seen[u] = True
                        nxt.append(int(u))
            frontier = nxt
        return np.nonzero(seen)[0]
