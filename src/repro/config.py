"""System configuration for the ABNDP reproduction.

Every scalar in this module comes from Table 1 of the paper (ASPLOS'23),
or is a named design knob studied in Section 7.2.  Configurations are
immutable dataclasses so that a run is fully described by a single
:class:`SystemConfig` value plus a random seed.

The unit conventions used throughout the code base:

* time        -- nanoseconds (``ns``) for latencies, cycles for core time
* energy      -- picojoules (``pJ``)
* power       -- microwatts (``uW``)
* capacity    -- bytes
* frequency   -- GHz (cycles per ns)
"""

from __future__ import annotations

import dataclasses
import enum
import math
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


class SchedulingPolicy(enum.Enum):
    """Task-to-unit mapping policies (Table 2 of the paper).

    ``COLOCATE``         -- design **B**: run the task where its first (main)
                            hint element lives.
    ``LOWEST_DISTANCE``  -- design **Sm**: minimise the mean distance to all
                            hint elements.
    ``WORK_STEALING``    -- design **Sl**: ``LOWEST_DISTANCE`` placement plus
                            dynamic work stealing at run time.
    ``HYBRID``           -- designs **Sh**/**O**: score-based policy combining
                            the memory-distance and load-imbalance terms
                            (Section 5.2, Equation 1).
    """

    COLOCATE = "colocate"
    LOWEST_DISTANCE = "lowest_distance"
    WORK_STEALING = "work_stealing"
    HYBRID = "hybrid"


class CacheStyle(enum.Enum):
    """Which remote-data cache each NDP unit carries (Figure 13)."""

    NONE = "none"
    TRAVELLER = "traveller"       # DRAM data, SRAM tags (the paper's design)
    SRAM = "sram"                 # pure on-die SRAM data cache
    DRAM_TAG = "dram_tag"         # DRAM data, tags stored in DRAM


class ReplacementPolicy(enum.Enum):
    """Victim selection inside a cache set (Section 4.4)."""

    RANDOM = "random"
    LRU = "lru"


class CampMapping(enum.Enum):
    """How the camp-location unit IDs are derived per group (Section 4.2)."""

    SKEWED = "skewed"        # a different address hash per group (default)
    IDENTICAL = "identical"  # the same hash for every group (Figure 11 foil)


@dataclass(frozen=True)
class TopologyConfig:
    """Shape of the memory network (Figure 1 / Table 1).

    ``mesh_rows x mesh_cols`` memory stacks connected in a 2D mesh, each
    stack holding ``units_per_stack`` NDP units behind an intra-stack
    crossbar.
    """

    mesh_rows: int = 4
    mesh_cols: int = 4
    units_per_stack: int = 8

    @property
    def num_stacks(self) -> int:
        return self.mesh_rows * self.mesh_cols

    @property
    def num_units(self) -> int:
        return self.num_stacks * self.units_per_stack

    @property
    def diameter(self) -> int:
        """Hop diameter of the inter-stack mesh."""
        return (self.mesh_rows - 1) + (self.mesh_cols - 1)

    def validate(self) -> None:
        if self.mesh_rows < 1 or self.mesh_cols < 1:
            raise ValueError("mesh dimensions must be positive")
        if self.units_per_stack < 1:
            raise ValueError("units_per_stack must be positive")


@dataclass(frozen=True)
class CoreConfig:
    """NDP logic-die cores (Table 1; energy numbers follow [89])."""

    frequency_ghz: float = 2.0
    cores_per_unit: int = 2
    idle_power_uw: float = 163.0
    energy_per_instr_pj: float = 371.0

    @property
    def cycle_ns(self) -> float:
        """Duration of one core cycle in nanoseconds."""
        return 1.0 / self.frequency_ghz

    def cycles(self, ns: float) -> float:
        """Convert a latency in nanoseconds into core cycles."""
        return ns * self.frequency_ghz

    def validate(self) -> None:
        if self.frequency_ghz <= 0:
            raise ValueError("frequency must be positive")
        if self.cores_per_unit < 1:
            raise ValueError("cores_per_unit must be positive")


@dataclass(frozen=True)
class MemoryConfig:
    """Per-unit local DRAM channel (HBM-like timing, Table 1)."""

    capacity_per_unit: int = 512 * MB
    cacheline_bytes: int = 64
    channel_bits: int = 128
    t_cas_ns: float = 17.0
    t_rcd_ns: float = 17.0
    t_rp_ns: float = 17.0
    rdwr_pj_per_bit: float = 5.0
    act_pre_pj: float = 535.8
    # Fraction of accesses that open a new row (charged one ACT/PRE pair).
    row_miss_fraction: float = 0.5
    # Mean channel occupancy of one random cacheline access: data burst
    # plus the amortised bank-timing (tRC across the channel's banks).
    # This bounds a unit's DRAM *service rate*; accesses beyond it queue.
    # Hot home units saturating this rate is the contention that the
    # Traveller Cache's extra caching locations relieve.
    service_ns: float = 3.0
    # Implementation choice, not a machine parameter.  Three tiers (see
    # docs/engines.md):
    #   "scalar"  - the original one-call-per-line reference path (the
    #               parity oracle);
    #   "batched" - resolves a task's whole hint batch per
    #               MemorySystem.access_many call (vectorized stateless
    #               stages + an ordered sequential kernel, bit-identical
    #               to scalar);
    #   "vector"  - resolves an entire bulk-synchronous phase's accesses
    #               with columnar NumPy kernels; statistically equivalent
    #               to batched (makespan/energy within the tolerance
    #               bands pinned by tests/test_vector_engine.py), not
    #               bit-identical.
    # Non-semantic: the engine is excluded from canonical_dict()/run
    # keys — "scalar" and "batched" produce the same RunResult, and a
    # "vector" run may *read* cached exact results but never writes its
    # own (see repro.sweep.runner).
    access_engine: str = field(default="batched",
                               metadata={"semantic": False})

    @property
    def access_latency_ns(self) -> float:
        """Latency of one random DRAM access (row activate + column read)."""
        return self.t_rcd_ns + self.t_cas_ns

    @property
    def line_transfer_ns(self) -> float:
        """Time to stream one cacheline over the channel.

        A 64 B line over a 128-bit DDR channel takes ``64*8/128`` beats;
        we approximate one beat per core-equivalent nanosecond fraction and
        fold it into the access latency, so this is informational.
        """
        return (self.cacheline_bytes * 8) / self.channel_bits * 0.5

    @property
    def line_bits(self) -> int:
        return self.cacheline_bytes * 8

    def access_energy_pj(self) -> float:
        """Dynamic energy of one cacheline access (read or write)."""
        return (
            self.line_bits * self.rdwr_pj_per_bit
            + self.row_miss_fraction * self.act_pre_pj
        )

    def validate(self) -> None:
        if self.cacheline_bytes & (self.cacheline_bytes - 1):
            raise ValueError("cacheline_bytes must be a power of two")
        if self.capacity_per_unit % self.cacheline_bytes:
            raise ValueError("capacity must be a multiple of the cacheline")
        if self.access_engine not in ("scalar", "batched", "vector"):
            raise ValueError(
                "access_engine must be 'scalar', 'batched' or 'vector', "
                f"got {self.access_engine!r}"
            )


#: Equivalence tier of each access engine.  "exact" engines are
#: bit-identical to each other (scalar is the oracle, batched replays
#: every stateful step in scalar order); the "vector" tier reorders RNG
#: draws and float accumulations, so it is only *statistically*
#: equivalent (tolerance bands, see docs/engines.md).  Regression
#: tooling compares records within a tier: scalar->batched is one
#: compatibility group, batched->vector is a band comparison.
ENGINE_TIERS = {"scalar": "exact", "batched": "exact", "vector": "vector"}


def engine_tier(engine: Optional[str]) -> str:
    """The equivalence tier of an ``access_engine`` name."""
    return ENGINE_TIERS.get(engine or "", "exact")


@dataclass(frozen=True)
class NocConfig:
    """Interconnect cost model (Table 1).

    The intra-stack network is a crossbar (a single hop regardless of the
    pair of units), the inter-stack network a 2D mesh with per-hop latency
    and energy.  ``d_local/d_intra/d_inter`` are the *relative* distance
    costs used by the schedulers (Section 5.2); they are set directly from
    the hardware latencies and need no tuning.
    """

    intra_hop_ns: float = 1.5
    intra_pj_per_bit: float = 0.4
    inter_hop_ns: float = 10.0
    inter_pj_per_bit: float = 4.0
    inter_bw_gbps: float = 32.0

    @property
    def d_local(self) -> float:
        """Scheduling cost of a unit-local access."""
        return 0.0

    @property
    def d_intra(self) -> float:
        """Scheduling cost of an intra-stack (crossbar) access."""
        return self.intra_hop_ns

    @property
    def d_inter(self) -> float:
        """Scheduling cost of one inter-stack mesh hop."""
        return self.inter_hop_ns

    def validate(self) -> None:
        if self.inter_hop_ns <= 0 or self.intra_hop_ns <= 0:
            raise ValueError("hop latencies must be positive")


@dataclass(frozen=True)
class SramConfig:
    """On-die SRAM structures of one NDP unit (Table 1)."""

    l1d_bytes: int = 64 * KB
    l1d_assoc: int = 4
    l1i_bytes: int = 32 * KB
    l1i_assoc: int = 2
    prefetch_buffer_bytes: int = 4 * KB
    l1_hit_ns: float = 0.5
    # Analytic per-access energies (CACTI-7-flavoured; see arch.sram).
    l1_access_pj: float = 20.0
    tag_access_pj: float = 5.0
    prefetch_access_pj: float = 8.0

    def validate(self) -> None:
        if self.l1d_bytes <= 0 or self.prefetch_buffer_bytes <= 0:
            raise ValueError("SRAM sizes must be positive")


@dataclass(frozen=True)
class CacheConfig:
    """Traveller Cache configuration (Sections 4.2-4.4, Table 1)."""

    style: CacheStyle = CacheStyle.TRAVELLER
    # The cache occupies 1/capacity_ratio of the unit's local DRAM.
    capacity_ratio: int = 64
    associativity: int = 4
    num_camps: int = 3
    bypass_probability: float = 0.4
    replacement: ReplacementPolicy = ReplacementPolicy.RANDOM
    camp_mapping: CampMapping = CampMapping.SKEWED
    # Extra DRAM round trip paid per probe when tags live in DRAM (Fig 13).
    dram_tag_penalty_accesses: int = 1

    def cache_bytes(self, memory: MemoryConfig) -> int:
        """Data capacity of the per-unit cache region."""
        return memory.capacity_per_unit // self.capacity_ratio

    def num_sets(self, memory: MemoryConfig) -> int:
        sets = self.cache_bytes(memory) // memory.cacheline_bytes // self.associativity
        if sets < 1:
            raise ValueError("cache too small for the requested associativity")
        return sets

    def num_groups(self) -> int:
        """Camp groups = number of camps + one home group (Section 4.2)."""
        return self.num_camps + 1

    def validate(self) -> None:
        if not 0.0 <= self.bypass_probability <= 1.0:
            raise ValueError("bypass_probability must be in [0, 1]")
        if self.associativity < 1:
            raise ValueError("associativity must be >= 1")
        if self.num_camps < 0:
            raise ValueError("num_camps must be >= 0")
        if self.capacity_ratio < 1:
            raise ValueError("capacity_ratio must be >= 1")


@dataclass(frozen=True)
class SchedulerConfig:
    """Task scheduler configuration (Sections 3.2 and 5)."""

    policy: SchedulingPolicy = SchedulingPolicy.HYBRID
    # Hybrid weight B = hybrid_alpha * D_inter.  ``None`` selects the
    # paper's default alpha = d/2 (half the mesh diameter).
    hybrid_alpha: Optional[float] = None
    exchange_interval_cycles: int = 100_000
    scheduling_window: int = 16
    prefetch_window: int = 8
    # Fraction of a task's memory stall hidden by hint-exact prefetching.
    prefetch_hide_fraction: float = 0.6
    # Fixed per-steal overhead charged to the thief (queue probing etc.).
    steal_overhead_cycles: float = 200.0
    # Hybrid-policy stability knobs (see HybridScheduler's docstrings):
    # near-tie dispersion window, load-signal deadband, and the mean-W
    # floor below which the load term is ignored.
    tie_tolerance_ns: float = 5.0
    load_deadband: float = 0.25
    load_floor_cycles: float = 1000.0

    def resolved_alpha(self, topology: TopologyConfig) -> float:
        if self.hybrid_alpha is not None:
            return self.hybrid_alpha
        return topology.diameter / 2.0

    def hybrid_weight(self, topology: TopologyConfig, noc: NocConfig) -> float:
        """The weight B in Equation 1: ``B = alpha * D_inter``."""
        return self.resolved_alpha(topology) * noc.d_inter

    def validate(self) -> None:
        if self.exchange_interval_cycles <= 0:
            raise ValueError("exchange interval must be positive")
        if not 0.0 <= self.prefetch_hide_fraction <= 1.0:
            raise ValueError("prefetch_hide_fraction must be in [0, 1]")


@dataclass(frozen=True)
class SystemConfig:
    """Complete description of one simulated NDP system (Table 1)."""

    topology: TopologyConfig = field(default_factory=TopologyConfig)
    core: CoreConfig = field(default_factory=CoreConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    noc: NocConfig = field(default_factory=NocConfig)
    sram: SramConfig = field(default_factory=SramConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    seed: int = 2023

    @property
    def num_units(self) -> int:
        return self.topology.num_units

    @property
    def total_capacity(self) -> int:
        return self.num_units * self.memory.capacity_per_unit

    def validate(self) -> "SystemConfig":
        """Check cross-field invariants; returns self for chaining."""
        self.topology.validate()
        self.core.validate()
        self.memory.validate()
        self.noc.validate()
        self.sram.validate()
        self.cache.validate()
        self.scheduler.validate()
        if self.cache.style is not CacheStyle.NONE:
            groups = self.cache.num_groups()
            if self.num_units % groups:
                raise ValueError(
                    f"{self.num_units} units cannot be split into "
                    f"{groups} equal camp groups"
                )
        return self

    def with_(self, **kwargs) -> "SystemConfig":
        """Return a copy with top-level sections replaced."""
        return replace(self, **kwargs)

    def canonical_dict(self) -> dict:
        """Deterministic plain-data form of the full configuration.

        Every field is reduced to JSON scalars (enums by value, nested
        sections as dicts in declaration order), so two equal configs
        always serialize identically — this is the stable form the
        sweep engine hashes into run keys (see ``repro.sweep.keys``).
        """
        return _canonical_value(self)

    def canonical_json(self) -> str:
        """Compact sorted-key JSON of :meth:`canonical_dict`."""
        import json

        return json.dumps(
            self.canonical_dict(), sort_keys=True, separators=(",", ":")
        )

    def scaled(self, mesh_rows: int, mesh_cols: int) -> "SystemConfig":
        """Return a copy with a different mesh size (Figure 10)."""
        return replace(
            self, topology=replace(
                self.topology, mesh_rows=mesh_rows, mesh_cols=mesh_cols
            )
        )


def _canonical_value(value):
    """Reduce a config field to deterministic plain data (recursive)."""
    if isinstance(value, enum.Enum):
        return value.value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        # Fields tagged semantic=False are implementation selectors that
        # cannot change results (e.g. MemoryConfig.access_engine); leaving
        # them out keeps run keys stable across engine choices.
        return {
            f.name: _canonical_value(getattr(value, f.name))
            for f in dataclasses.fields(value)
            if f.metadata.get("semantic", True)
        }
    if isinstance(value, (list, tuple)):
        return [_canonical_value(v) for v in value]
    return value


def default_config(**overrides) -> SystemConfig:
    """The paper's Table 1 configuration, optionally overridden.

    Keyword arguments replace top-level sections, e.g.::

        cfg = default_config(cache=CacheConfig(style=CacheStyle.NONE))
    """
    return SystemConfig(**overrides).validate()


#: Exchange interval used by the reduced-scale experiments.
#:
#: The paper's 100,000-cycle interval corresponds to "thousands of tasks
#: per unit" between exchanges on its full-size datasets.  The datasets
#: in this reproduction are hundreds of times smaller (so the whole run
#: fits a Python simulator), so the interval is scaled by a similar
#: factor to preserve the paper's exchanges-per-phase cadence.  Figure
#: 18's sweep is scaled identically (see EXPERIMENTS.md).
SIM_EXCHANGE_INTERVAL_CYCLES = 250

#: L1-D / prefetch-buffer sizes for the reduced-scale experiments.
#:
#: At paper scale, a unit's per-phase working set is ~500x its L1, so
#: on-die SRAM retains only the hottest few lines.  Our per-phase
#: working sets are ~1000x smaller; full-size SRAM structures would
#: retain *everything* and hide the remote-access behaviour the paper
#: studies.  The experiment machine scales them to keep the SRAM /
#: working-set ratio in the paper's regime.
SIM_L1D_BYTES = 2 * KB
SIM_PREFETCH_BYTES = 256


def experiment_config(**overrides) -> SystemConfig:
    """Table 1 configuration with the scale-dependent knobs (exchange
    interval, on-die SRAM capacities, DRAM service-contention model)
    re-scaled to the reduced dataset sizes used throughout this
    reproduction's experiments.  Accepts the same section overrides as
    :func:`default_config`; an explicit override of a section wins over
    the rescaling.
    """
    cfg = SystemConfig(**overrides)
    if "scheduler" not in overrides:
        cfg = replace(
            cfg,
            scheduler=replace(
                cfg.scheduler,
                exchange_interval_cycles=SIM_EXCHANGE_INTERVAL_CYCLES,
            ),
        )
    if "sram" not in overrides:
        cfg = replace(
            cfg,
            sram=replace(
                cfg.sram,
                l1d_bytes=SIM_L1D_BYTES,
                prefetch_buffer_bytes=SIM_PREFETCH_BYTES,
            ),
        )
    if "memory" not in overrides:
        # The service-contention model needs paper-scale sustained
        # rates to behave; at reduced scale its synchronized-wave
        # bursts dominate, so the experiments run with it disabled
        # (see EXPERIMENTS.md, "model fidelity").
        cfg = replace(cfg, memory=replace(cfg.memory, service_ns=0.0))
    return cfg.validate()


def _fmt_capacity(nbytes: int) -> str:
    """Human-readable capacity ("64 kB", "256 B")."""
    if nbytes >= KB and nbytes % KB == 0:
        return f"{nbytes // KB} kB"
    return f"{nbytes} B"


def describe_config(cfg: SystemConfig) -> str:
    """Render a Table-1-style textual summary of a configuration."""
    topo, mem, core, noc, cache, sched = (
        cfg.topology, cfg.memory, cfg.core, cfg.noc, cfg.cache, cfg.scheduler
    )
    lines = [
        "System configuration (cf. Table 1)",
        "-" * 60,
        f"NDP system     : {topo.mesh_rows}x{topo.mesh_cols} stacks in mesh, "
        f"{topo.units_per_stack} NDP units per stack",
        f"                 {cfg.total_capacity / GB:.0f} GB in total, "
        f"{mem.capacity_per_unit / MB:.0f} MB per unit",
        f"NDP core       : {core.frequency_ghz:.1f} GHz, "
        f"{core.cores_per_unit} cores per unit "
        f"({topo.num_units * core.cores_per_unit} in total)",
        f"L1-D cache     : {_fmt_capacity(cfg.sram.l1d_bytes)}, "
        f"{cfg.sram.l1d_assoc}-way, {mem.cacheline_bytes} B cachelines, LRU",
        f"L1-I cache     : {_fmt_capacity(cfg.sram.l1i_bytes)}, "
        f"{cfg.sram.l1i_assoc}-way, {mem.cacheline_bytes} B cachelines, LRU",
        f"Prefetch buffer: {_fmt_capacity(cfg.sram.prefetch_buffer_bytes)}, "
        f"{mem.cacheline_bytes} B blocks, FIFO",
        f"DRAM channel   : {mem.channel_bits} bits; tCAS=tRCD=tRP="
        f"{mem.t_cas_ns:.0f} ns; {mem.rdwr_pj_per_bit} pJ/bit RD/WR, "
        f"{mem.act_pre_pj} pJ ACT/PRE",
        f"Intra-stack net: {noc.intra_hop_ns} ns/hop; "
        f"{noc.intra_pj_per_bit} pJ/bit",
        f"Inter-stack net: {noc.inter_bw_gbps:.0f} GB/s per direction; "
        f"{noc.inter_hop_ns:.0f} ns/hop; {noc.inter_pj_per_bit} pJ/bit",
        f"Traveller Cache: 1/{cache.capacity_ratio} of local mem. capacity, "
        f"{cache.associativity}-way; C={cache.num_camps} camp loc.; "
        f"{cache.replacement.value} repl., "
        f"{cache.bypass_probability:.0%} bypass",
        f"Scheduler      : {sched.exchange_interval_cycles:,}-cycle workload "
        f"exchange interval; hybrid weight B = "
        f"{sched.resolved_alpha(topo):.0f} x D_inter",
    ]
    return "\n".join(lines)
