"""A minimal HTTP/1.1 layer over asyncio streams.

The experiment server (:mod:`repro.service.server`) speaks plain
HTTP so any stock client — ``curl``, ``urllib``, a browser — can talk
to it, but it must not grow a web-framework dependency; this module is
the whole protocol: parse one request off a :class:`asyncio.
StreamReader`, write one response (or a close-delimited NDJSON
stream) to the :class:`asyncio.StreamWriter`.

Deliberate simplifications, all fine for a LAN experiment service:

* one request per connection (every response carries
  ``Connection: close``) — no keep-alive or pipelining bookkeeping;
* event streams are *close-delimited* (no ``Content-Length``, no
  chunked framing): the client reads NDJSON lines until EOF, which
  every HTTP/1.x client already understands;
* request bodies are bounded (:data:`MAX_BODY_BYTES`) — an experiment
  spec is a few hundred bytes, not a file upload.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional
from urllib.parse import parse_qsl, unquote, urlsplit

import asyncio

#: bound on one request's header block and body.
MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class ProtocolError(ValueError):
    """A malformed or over-limit request (answered with 400)."""


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str                       #: decoded path, query stripped
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Any:
        """The body parsed as JSON (raises :class:`ProtocolError`)."""
        if not self.body:
            raise ProtocolError("request body is empty, expected JSON")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}")


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request; ``None`` on a cleanly closed connection.

    Raises :class:`ProtocolError` on malformed input — the caller
    answers 400 and closes.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # client closed without sending a request
        raise ProtocolError("truncated request head")
    except asyncio.LimitOverrunError:
        raise ProtocolError("request head too large")
    if len(head) > MAX_HEADER_BYTES:
        raise ProtocolError("request head too large")

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1"):
        raise ProtocolError(f"malformed request line {lines[0]!r}")
    method, target = parts[0].upper(), parts[1]
    split = urlsplit(target)
    path = unquote(split.path)
    query = dict(parse_qsl(split.query, keep_blank_values=True))

    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            n = int(length)
        except ValueError:
            raise ProtocolError(f"bad Content-Length {length!r}")
        if n < 0 or n > MAX_BODY_BYTES:
            raise ProtocolError(f"Content-Length {n} out of bounds")
        try:
            body = await reader.readexactly(n)
        except asyncio.IncompleteReadError:
            raise ProtocolError("request body shorter than Content-Length")
    return Request(method=method, path=path, query=query,
                   headers=headers, body=body)


def _head(status: int, content_type: str,
          length: Optional[int]) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}",
             f"Content-Type: {content_type}",
             "Connection: close"]
    if length is not None:
        lines.append(f"Content-Length: {length}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def send_json(
    writer: asyncio.StreamWriter,
    payload: Any,
    status: int = 200,
    raw: Optional[bytes] = None,
) -> None:
    """Write one JSON response (``raw`` bytes win over ``payload``).

    ``raw`` exists for byte-identical serving: a cached result entry
    is sent exactly as it sits on disk, so every client of one run key
    receives the same bytes.
    """
    body = raw if raw is not None \
        else json.dumps(payload, sort_keys=True).encode("utf-8")
    writer.write(_head(status, "application/json", len(body)))
    writer.write(body)
    await writer.drain()


async def send_text(
    writer: asyncio.StreamWriter,
    text: str,
    content_type: str = "text/plain; charset=utf-8",
    status: int = 200,
) -> None:
    """Write one plain-text response (Prometheus exposition et al.)."""
    body = text.encode("utf-8")
    writer.write(_head(status, content_type, len(body)))
    writer.write(body)
    await writer.drain()


async def send_error(writer: asyncio.StreamWriter, status: int,
                     message: str) -> None:
    await send_json(writer, {"error": message, "status": status},
                    status=status)


async def start_ndjson_stream(writer: asyncio.StreamWriter) -> None:
    """Open a close-delimited NDJSON response (lines follow via
    :func:`send_ndjson_line`; EOF ends the stream)."""
    writer.write(_head(200, "application/x-ndjson", None))
    await writer.drain()


async def send_ndjson_line(writer: asyncio.StreamWriter,
                           payload: Any) -> None:
    writer.write(json.dumps(payload, sort_keys=True).encode("utf-8")
                 + b"\n")
    await writer.drain()
