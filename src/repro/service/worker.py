"""The service's worker-side job runner (one sweep point per job).

Runs inside the server's ``ProcessPoolExecutor`` (or, with
``workers=0``, a thread), so everything here must be importable at
module level and the payload picklable.  Mirrors
:func:`repro.sweep.runner._worker`: simulate live, ship the result
back as the exact JSON dict the cache stores, report crashes as data
instead of raising.

Every *execution* (not cache hit, not dedup attach) appends one line
``<unix_ts> <pid> <key>`` to an execution log next to the cache root.
The log is the service's ground truth for "how many simulations
actually ran" — the dedup tests and the CI ``serve-smoke`` job assert
on it, because a server-side counter could lie about what the worker
pool did.  Best-effort like every observability channel: an
unwritable log never fails the job.
"""

from __future__ import annotations

import os
import time
import traceback
from typing import Any, Dict, Optional, Tuple

#: execution-log filename, created inside the cache root.
EXEC_LOG_NAME = "service_executions.log"

JobPayload = Tuple[str, str, Tuple, Any, Optional[Dict[str, Any]],
                   Optional[str]]


def make_payload(key: str, design: str, workload: str,
                 workload_kwargs: Dict[str, Any], config: Any,
                 faults: Optional[Dict[str, Any]],
                 exec_log: Optional[str]) -> JobPayload:
    """Build the picklable payload :func:`run_job` consumes."""
    return (key, design, ("factory", workload, dict(workload_kwargs)),
            config, faults, exec_log)


def record_execution(exec_log: Optional[str], key: str) -> None:
    """Append one worker-side execution line (best-effort)."""
    if not exec_log:
        return
    try:
        from repro.sweep.locking import FileLock, lock_path_for

        with FileLock(lock_path_for(exec_log)):
            with open(exec_log, "a") as fh:
                fh.write(f"{time.time():.3f} {os.getpid()} {key}\n")
    except OSError:
        pass


def count_executions(exec_log: str, key: Optional[str] = None) -> int:
    """Worker executions recorded so far (optionally for one key)."""
    try:
        with open(exec_log) as fh:
            lines = [ln for ln in fh.read().splitlines() if ln.strip()]
    except OSError:
        return 0
    if key is None:
        return len(lines)
    return sum(1 for ln in lines if ln.split()[-1] == key)


def run_job(payload: JobPayload) -> Tuple[str, Optional[Dict],
                                          Optional[str], float]:
    """Simulate one spec; returns ``(key, result_dict, error, dt)``.

    Exactly one of ``result_dict`` / ``error`` is set.  Never raises:
    a crashing simulation is data the server reports, not a dead
    worker.
    """
    key, design, wl_spec, config, faults, exec_log = payload
    t0 = time.time()
    try:
        from repro.sweep.runner import _live_simulate
        from repro.sweep.runtime import resolve_workload_spec
        from repro.sweep.serialize import result_to_dict

        record_execution(exec_log, key)
        # In a warm pool worker this memoizes the materialized workload
        # per process; cold (threads / no initializer) it is exactly
        # ``make_workload(name, **kwargs)``.
        workload = resolve_workload_spec(wl_spec)
        schedule = None
        if faults is not None:
            from repro.faults.schedule import FaultSchedule

            schedule = FaultSchedule.from_dict(faults)
        if schedule:
            result = _live_simulate(design, workload, config,
                                    fault_schedule=schedule)
        else:
            result = _live_simulate(design, workload, config)
        return key, result_to_dict(result), None, time.time() - t0
    except BaseException:
        return key, None, traceback.format_exc(), time.time() - t0
