"""The experiment server: sweeps as a shared, deduplicating service.

``python -m repro serve`` starts one :class:`ExperimentServer`: an
asyncio HTTP server (protocol in :mod:`repro.service.protocol` — no
web framework) that accepts experiment specs
(:mod:`repro.service.spec`) over ``POST /v1/submit`` and fans the
resulting simulations out over a ``ProcessPoolExecutor``.

The server is a *coordination point over the existing storage layer*,
not a new store: results land in the same content-addressed
:class:`~repro.sweep.cache.ResultCache` and history ledger the CLI
uses, so local runs and served runs share one cache.  That makes the
dedup rules natural:

* **cached point** — the run key already has a cache entry: answered
  immediately, no job created, and every reader of that key receives
  the entry's *exact on-disk bytes*;
* **running point** — a job for the key is in flight: the new client
  *attaches* to it (one simulation, N waiters) instead of spawning a
  duplicate;
* **new point** — a job is created and dispatched to the worker pool.

Per-job progress reuses the sweep engine's typed event channel
(:class:`~repro.observatory.progress.ProgressEvent`): each job accrues
``begin / started / done|failed / end`` (or ``cached``) events, and
``GET /v1/events/<key>`` replays them — then follows live — as
close-delimited NDJSON, the same wire format ``--progress-jsonl``
writes locally.

Endpoints (all JSON unless noted):

=======  ======================  =====================================
method   path                    meaning
=======  ======================  =====================================
GET      /v1/health              liveness + simulator version
GET      /v1/stats               dedup counters, job table, cache stats
GET      /v1/metrics             Prometheus text exposition (not JSON):
                                 request counts/latency per route,
                                 dedup/cache counters, job states,
                                 warm-runtime memo counters
POST     /v1/submit              spec in body; ``?wait=1`` long-polls
                                 until the point is terminal
POST     /v1/campaign            campaign document in body (optionally
                                 ``{"campaign": doc, "set": {...}}``);
                                 expands server-side, intakes every
                                 point through the same dedup rules,
                                 answers one ``{label, key, status}``
                                 row per point
GET      /v1/result/<key>        cached result entry (raw bytes);
                                 ``?telemetry=1`` for the sidecar
GET      /v1/events/<key>        NDJSON progress stream (replay+live)
GET      /v1/history             ledger records; ``?limit=N``
GET      /v1/diff                ``?a=&b=&threshold=`` -> RunDiff dict
GET      /v1/regress             ``?tolerance=`` -> history-ledger scan
POST     /v1/shutdown            clean stop
=======  ======================  =====================================

``workers=0`` swaps the process pool for a small thread pool — jobs
then run in-process, where tests can stub the simulation entry point
(:func:`repro.sweep.runner._live_simulate`) with counting fakes.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.observatory.progress import ProgressEvent
from repro.service.protocol import (
    ProtocolError,
    Request,
    read_request,
    send_error,
    send_json,
    send_ndjson_line,
    send_text,
    start_ndjson_stream,
)
from repro.service.spec import ExperimentSpec, SpecError
from repro.service.worker import EXEC_LOG_NAME, make_payload, run_job

#: job states; the last three are terminal.
JOB_STATES = ("queued", "started", "done", "failed", "cached")
TERMINAL_STATES = ("done", "failed", "cached")


@dataclass
class Job:
    """One in-flight (or finished) simulation, shared by its waiters."""

    key: str
    spec: ExperimentSpec
    config: Any                       #: resolved SystemConfig
    status: str = "queued"
    events: List[Dict[str, Any]] = field(default_factory=list)
    error: str = ""
    elapsed_s: float = 0.0
    waiters: int = 0                  #: clients attached beyond the first
    result_bytes: Optional[bytes] = None
    cond: asyncio.Condition = field(default_factory=asyncio.Condition)

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATES

    def describe(self) -> Dict[str, Any]:
        return {
            "key": self.key, "label": self.spec.label,
            "status": self.status, "waiters": self.waiters,
            "elapsed_s": round(self.elapsed_s, 3),
            "events": len(self.events),
            "error": self.error.strip().splitlines()[-1]
            if self.error else "",
        }


class ExperimentServer:
    """Asyncio experiment server over the shared result cache.

    All handler state (the job table, counters) is touched only from
    the event-loop thread, so it needs no locks; blocking work — spec
    resolution, cache IO, the simulations themselves — runs in
    executors.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: Optional[int] = None,
        cache_root: Optional[str] = None,
    ):
        from repro.observatory.history import HistoryLedger
        from repro.sweep.cache import ResultCache, default_cache

        self.host = host
        self.port = port
        self.workers = workers
        if cache_root is not None:
            self.cache = ResultCache(root=cache_root)
        else:
            self.cache = default_cache()
        self.ledger = HistoryLedger(
            path=self.cache.root / "history.jsonl")
        self.exec_log = self.cache.root / EXEC_LOG_NAME
        self.jobs: Dict[str, Job] = {}
        self.counters: Dict[str, int] = {
            "submissions": 0,     # POST /v1/submit requests parsed
            "executions": 0,      # jobs dispatched to the worker pool
            "dedup_attached": 0,  # submits that joined an existing job
            "cache_hits": 0,      # submits answered from the cache
            "campaigns": 0,       # POST /v1/campaign documents expanded
        }
        #: per-(route, method) request accounting for /v1/metrics:
        #: [count, total latency seconds].  Loop-thread only.
        self.request_stats: Dict[Tuple[str, str], List[float]] = {}
        self._executor = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def pool_width(self) -> int:
        if self.workers == 0:
            return 1
        if self.workers:
            return self.workers
        import os

        return os.cpu_count() or 1

    def _make_executor(self):
        if self._executor is None:
            if self.workers == 0:
                # in-process jobs: tests stub the simulate entry point
                self._executor = ThreadPoolExecutor(
                    max_workers=4, thread_name_prefix="repro-job")
            else:
                # warm pool: workers enable the per-process memo caches
                # once and keep them for their lifetime, so repeat jobs
                # skip workload generation and table construction
                # (docs/architecture.md §15).
                from repro.sweep.runtime import _worker_init

                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_worker_init)
        return self._executor

    async def serve(self, ready: Optional[threading.Event] = None) -> None:
        """Bind, accept until :meth:`request_stop`, then tear down."""
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._make_executor()
        server = await asyncio.start_server(
            self._handle_conn, self.host, self.port)
        self.port = server.sockets[0].getsockname()[1]
        if ready is not None:
            ready.set()
        try:
            async with server:
                await self._stop.wait()
        finally:
            self._executor.shutdown(wait=False, cancel_futures=True)

    def request_stop(self) -> None:
        """Ask the serve loop to exit (safe from the loop thread only;
        cross-thread callers go through ``call_soon_threadsafe``)."""
        if self._stop is not None:
            self._stop.set()

    # ------------------------------------------------------------------
    # connection handling / routing
    # ------------------------------------------------------------------
    async def _handle_conn(self, reader, writer) -> None:
        try:
            request = await read_request(reader)
            if request is not None:
                await self._dispatch(request, writer)
        except ProtocolError as exc:
            try:
                await send_error(writer, 400, str(exc))
            except (ConnectionError, OSError):
                pass
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass  # client went away mid-response
        except Exception as exc:  # a handler bug must not kill the loop
            try:
                await send_error(
                    writer, 500, f"{type(exc).__name__}: {exc}")
            except (ConnectionError, OSError):
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, req: Request, writer) -> None:
        parts = [p for p in req.path.split("/") if p]
        if len(parts) >= 1 and parts[0] != "v1":
            await send_error(writer, 404, f"unknown path {req.path!r}")
            return
        route = parts[1] if len(parts) > 1 else ""
        tail = parts[2] if len(parts) > 2 else None

        t0 = time.monotonic()
        try:
            await self._route(req, writer, route, tail)
        finally:
            # one [count, latency-seconds] cell per (route, method);
            # loop-thread only, so a plain dict needs no lock.
            cell = self.request_stats.setdefault(
                (route or "/", req.method), [0, 0.0])
            cell[0] += 1
            cell[1] += time.monotonic() - t0

    async def _route(self, req: Request, writer, route: str,
                     tail: Optional[str]) -> None:
        if route == "health" and req.method == "GET":
            await self._handle_health(writer)
        elif route == "stats" and req.method == "GET":
            await self._handle_stats(writer)
        elif route == "metrics" and req.method == "GET":
            await self._handle_metrics(writer)
        elif route == "submit" and req.method == "POST":
            await self._handle_submit(req, writer)
        elif route == "campaign" and req.method == "POST":
            await self._handle_campaign(req, writer)
        elif route == "result" and req.method == "GET" and tail:
            await self._handle_result(req, writer, tail)
        elif route == "events" and req.method == "GET" and tail:
            await self._handle_events(writer, tail)
        elif route == "history" and req.method == "GET":
            await self._handle_history(req, writer)
        elif route == "diff" and req.method == "GET":
            await self._handle_diff(req, writer)
        elif route == "regress" and req.method == "GET":
            await self._handle_regress(req, writer)
        elif route == "shutdown" and req.method == "POST":
            await send_json(writer, {"ok": True, "stopping": True})
            self.request_stop()
        elif route in ("health", "stats", "metrics", "submit",
                       "campaign", "result", "events", "history",
                       "diff", "regress", "shutdown"):
            await send_error(writer, 405,
                             f"{req.method} not allowed on {req.path!r}")
        else:
            await send_error(writer, 404, f"unknown path {req.path!r}")

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    async def _handle_health(self, writer) -> None:
        from repro.sweep.keys import SIMULATOR_VERSION

        await send_json(writer, {
            "ok": True,
            "version": SIMULATOR_VERSION,
            "pool": self.pool_width(),
            "mode": "threads" if self.workers == 0 else "processes",
        })

    async def _handle_stats(self, writer) -> None:
        await send_json(writer, {
            "counters": dict(self.counters),
            "jobs": [job.describe() for job in self.jobs.values()],
            "cache": {
                "root": str(self.cache.root),
                "entries": len(self.cache),
                "stats": self.cache.stats.summary(),
            },
        })

    async def _handle_metrics(self, writer) -> None:
        """Prometheus text exposition of every passive counter the
        server holds: request accounting, dedup/cache counters, the
        job table by state, and the warm runtime's memo counters.
        Read-only — a scrape allocates nothing in the simulator."""
        from repro.insight.metrics_plane import (
            PROMETHEUS_CONTENT_TYPE,
            MetricFamily,
            render_exposition,
            runtime_metric_families,
        )

        loop = asyncio.get_running_loop()
        # the two filesystem-backed sizes off the loop thread
        cache_entries = await loop.run_in_executor(
            None, len, self.cache)
        ledger_records = await loop.run_in_executor(
            None, len, self.ledger)

        requests = MetricFamily(
            "repro_server_requests_total", "counter",
            "HTTP requests handled, by route and method.")
        latency = MetricFamily(
            "repro_server_request_seconds_total", "counter",
            "Cumulative request handling time, by route and method.")
        for (route, method), (count, seconds) in sorted(
                self.request_stats.items()):
            requests.add(count, route=route, method=method)
            latency.add(round(seconds, 6), route=route, method=method)

        ops = MetricFamily(
            "repro_server_ops_total", "counter",
            "Dedup intake outcomes: submissions parsed, jobs "
            "dispatched, waiters attached, cache answers, campaigns "
            "expanded.")
        for op in sorted(self.counters):
            ops.add(self.counters[op], op=op)

        jobs = MetricFamily(
            "repro_server_jobs", "gauge",
            "Jobs in the table by state (terminal jobs linger until "
            "their key is retried).")
        by_state = {state: 0 for state in JOB_STATES}
        for job in self.jobs.values():
            by_state[job.status] = by_state.get(job.status, 0) + 1
        for state in JOB_STATES:
            jobs.add(by_state.get(state, 0), state=state)
        in_flight = sum(1 for j in self.jobs.values() if not j.terminal)

        cache_ops = MetricFamily(
            "repro_cache_ops_total", "counter",
            "Result-cache operations in this server process.")
        stats = self.cache.stats
        for op in ("hits", "misses", "stores", "corrupt",
                   "uncacheable", "io_errors", "sidecar_skips"):
            cache_ops.add(getattr(stats, op, 0), op=op)

        families = [
            requests, latency, ops, jobs,
            MetricFamily(
                "repro_server_jobs_in_flight", "gauge",
                "Jobs currently queued or running.").add(in_flight),
            MetricFamily(
                "repro_server_pool_width", "gauge",
                "Worker-pool width (occupancy ceiling).",
            ).add(self.pool_width()),
            cache_ops,
            MetricFamily(
                "repro_cache_entries", "gauge",
                "Entries in the shared result cache.",
            ).add(cache_entries),
            MetricFamily(
                "repro_history_records", "gauge",
                "Records in the history ledger.",
            ).add(ledger_records),
        ]
        families.extend(runtime_metric_families())
        await send_text(writer, render_exposition(families),
                        content_type=PROMETHEUS_CONTENT_TYPE)

    async def _handle_submit(self, req: Request, writer) -> None:
        loop = asyncio.get_running_loop()
        try:
            spec = ExperimentSpec.from_dict(req.json())
            # key/config resolution builds dataclasses and may
            # materialize a workload factory — off the loop thread.
            config = await loop.run_in_executor(
                None, spec.resolved_config)
            key = await loop.run_in_executor(None, spec.run_key)
        except (ProtocolError, SpecError) as exc:
            await send_error(writer, 400, str(exc))
            return
        self.counters["submissions"] += 1
        wait = req.query.get("wait") not in (None, "", "0")

        status, attached, job = await self._intake(spec, config, key)
        if status == "cached":
            await send_json(writer, {"key": key, "status": "cached",
                                     "attached": False})
            return
        if status == "done":
            await send_json(writer, {
                "key": key, "status": "done", "attached": False,
                "elapsed_s": round(job.elapsed_s, 3), "error": "",
            })
            return

        if not wait:
            await send_json(writer, {
                "key": key, "attached": attached,
                "status": job.status if job.terminal else "submitted",
            })
            return
        async with job.cond:
            while not job.terminal:
                await job.cond.wait()
        await send_json(writer, {
            "key": key, "status": job.status, "attached": attached,
            "elapsed_s": round(job.elapsed_s, 3),
            "error": job.error,
        })

    async def _intake(self, spec: ExperimentSpec, config: Any,
                      key: str) -> tuple:
        """Dedup intake for one resolved point (submit and campaign
        share this path, so both obey the same rules and counters).

        Returns ``(status, attached, job)`` where status is
        ``"cached"`` (answered from the shared cache, no job),
        ``"done"`` (finished but uncacheable job served from memory)
        or ``"active"`` (job created or attached — may already be
        terminal; read ``job.status``).
        """
        loop = asyncio.get_running_loop()
        job = self.jobs.get(key)
        if job is None or job.terminal:
            # warm path first: a finished (or never-seen) key with a
            # cache entry is answered without touching the job table.
            hit = await loop.run_in_executor(None, self.cache.load, key)
            if hit is not None:
                self.counters["cache_hits"] += 1
                return "cached", False, None
            # the await released the loop: a racing submit may have
            # created this key's job meanwhile — re-read before
            # choosing between create and attach, or two clients
            # would each dispatch the same simulation.
            job = self.jobs.get(key)
        if job is not None and job.status == "done" and \
                job.result_bytes is not None:
            # done but uncacheable (vector tier / cache disabled):
            # serve the finished job from memory.
            self.counters["cache_hits"] += 1
            return "done", False, job
        if job is None or job.terminal:
            # new point — or a failed one being retried.
            job = Job(key=key, spec=spec, config=config)
            self.jobs[key] = job
            self.counters["executions"] += 1
            asyncio.ensure_future(self._run_job(job))
            attached = False
        else:
            self.counters["dedup_attached"] += 1
            job.waiters += 1
            attached = True
        return "active", attached, job

    async def _handle_campaign(self, req: Request, writer) -> None:
        """Expand a campaign document worker-side and intake every
        point through the same dedup rules as ``/v1/submit``."""
        loop = asyncio.get_running_loop()
        try:
            body = req.json()
            if isinstance(body, dict) and "campaign" in body:
                doc = body.get("campaign")
                sets = body.get("set") or {}
            else:
                doc, sets = body, {}
            if not isinstance(sets, dict):
                raise SpecError(
                    "set must be an object of {path: value} entries")

            def _expand():
                from repro.campaign.spec import CampaignSpec

                campaign = CampaignSpec.from_dict(doc)
                return campaign, campaign.expand(sets=sets)

            campaign, expansion = await loop.run_in_executor(
                None, _expand)
            resolved = []
            for point in expansion.points:
                config = await loop.run_in_executor(
                    None, point.spec.resolved_config)
                key = await loop.run_in_executor(
                    None, point.spec.run_key)
                resolved.append((point, config, key))
        except (ProtocolError, SpecError) as exc:
            await send_error(writer, 400, str(exc))
            return
        self.counters["campaigns"] += 1
        rows = []
        for point, config, key in resolved:
            self.counters["submissions"] += 1
            status, attached, job = await self._intake(
                point.spec, config, key)
            if status == "active":
                status = job.status if job.terminal else "submitted"
            rows.append({"label": point.label, "key": key,
                         "status": status, "attached": attached,
                         "spec": point.spec.to_dict()})
        await send_json(writer, {
            "name": campaign.name,
            "fingerprint": expansion.fingerprint,
            "total": len(rows),
            "pool": self.pool_width(),
            "duplicates_dropped": expansion.duplicates_dropped,
            "points": rows,
        })

    async def _handle_result(self, req: Request, writer,
                             key: str) -> None:
        loop = asyncio.get_running_loop()
        if req.query.get("telemetry") not in (None, "", "0"):
            path = self.cache.telemetry_path_for(key)
        else:
            path = self.cache.path_for(key)
        blob = await loop.run_in_executor(None, _read_bytes, path)
        if blob is None:
            job = self.jobs.get(key)
            if job is not None and job.result_bytes is not None and \
                    not req.query.get("telemetry"):
                blob = job.result_bytes
        if blob is None:
            await send_error(writer, 404,
                             f"no stored result for key {key!r}")
            return
        await send_json(writer, None, raw=blob)

    async def _handle_events(self, writer, key: str) -> None:
        job = self.jobs.get(key)
        if job is None:
            loop = asyncio.get_running_loop()
            hit = await loop.run_in_executor(None, self.cache.load, key)
            if hit is None:
                await send_error(writer, 404,
                                 f"no job or cached result for {key!r}")
                return
            # a point resolved before this server ever saw it: replay
            # the two events a cache hit produces in a local sweep.
            await start_ndjson_stream(writer)
            await send_ndjson_line(writer, ProgressEvent(
                event="cached", label=key[:12], done=1, total=1,
                source="cache").to_dict())
            await send_ndjson_line(writer, ProgressEvent(
                event="end", done=1, total=1).to_dict())
            return
        await start_ndjson_stream(writer)
        sent = 0
        while True:
            async with job.cond:
                while sent >= len(job.events) and not job.terminal:
                    await job.cond.wait()
                batch = job.events[sent:]
                sent = len(job.events)
                finished = job.terminal and sent >= len(job.events)
            for event in batch:
                await send_ndjson_line(writer, event)
            if finished:
                return

    async def _handle_history(self, req: Request, writer) -> None:
        loop = asyncio.get_running_loop()
        records = await loop.run_in_executor(None, self.ledger.records)
        limit = req.query.get("limit")
        if limit:
            try:
                records = records[-max(0, int(limit)):]
            except ValueError:
                await send_error(writer, 400,
                                 f"bad limit {limit!r}")
                return
        await send_json(writer, {
            "path": str(self.ledger.path),
            "records": [r.to_dict() for r in records],
        })

    async def _handle_diff(self, req: Request, writer) -> None:
        from repro.observatory.diffing import DEFAULT_THRESHOLD, diff_refs

        ref_a, ref_b = req.query.get("a"), req.query.get("b")
        if not ref_a or not ref_b:
            await send_error(writer, 400,
                             "diff needs ?a=<ref>&b=<ref>")
            return
        try:
            threshold = float(req.query.get("threshold",
                                            DEFAULT_THRESHOLD))
        except ValueError:
            await send_error(writer, 400, "bad threshold")
            return
        loop = asyncio.get_running_loop()
        try:
            diff = await loop.run_in_executor(
                None, lambda: diff_refs(
                    ref_a, ref_b, ledger=self.ledger, cache=self.cache,
                    threshold=threshold))
        except ValueError as exc:
            await send_error(writer, 400, str(exc))
            return
        await send_json(writer, diff.to_dict())

    async def _handle_regress(self, req: Request, writer) -> None:
        from repro.observatory.regression import (
            DEFAULT_TOLERANCE,
            scan_history,
        )

        try:
            tolerance = float(req.query.get("tolerance",
                                            DEFAULT_TOLERANCE))
        except ValueError:
            await send_error(writer, 400, "bad tolerance")
            return
        loop = asyncio.get_running_loop()
        report = await loop.run_in_executor(
            None, lambda: scan_history(ledger=self.ledger,
                                       tolerance=tolerance))
        payload = report.to_dict()
        payload["summary"] = report.summary()
        await send_json(writer, payload)

    # ------------------------------------------------------------------
    # job execution
    # ------------------------------------------------------------------
    async def _emit(self, job: Job, **kwargs) -> None:
        """Append one typed progress event and wake streamers.

        Every event inherits the spec's submission-time ``trace_id``
        (empty on untraced specs, and then absent from the NDJSON
        line) so ``/v1/events`` streams correlate end to end.
        """
        kwargs.setdefault("trace_id", job.spec.trace_id)
        async with job.cond:
            job.events.append(ProgressEvent(**kwargs).to_dict())
            job.cond.notify_all()

    async def _finish(self, job: Job, status: str) -> None:
        async with job.cond:
            job.status = status
            job.cond.notify_all()

    async def _run_job(self, job: Job) -> None:
        loop = asyncio.get_running_loop()
        await self._emit(job, event="begin", total=1,
                         jobs=self.pool_width())
        job.status = "started"
        await self._emit(job, event="started", label=job.spec.label,
                         index=0, total=1)
        payload = make_payload(
            job.key, job.spec.design, job.spec.workload,
            job.spec.workload_kwargs, job.config, job.spec.faults,
            str(self.exec_log))
        try:
            _, rdict, error, dt = await loop.run_in_executor(
                self._executor, run_job, payload)
        except Exception as exc:  # pool broke (e.g. shutdown mid-job)
            rdict, error, dt = None, f"worker pool failure: {exc}", 0.0
        job.elapsed_s = dt
        if rdict is not None:
            job.result_bytes = await loop.run_in_executor(
                None, self._store_result, job, rdict)
            await self._emit(job, event="done", label=job.spec.label,
                             index=0, done=1, total=1, source="run",
                             elapsed_s=dt)
            await self._emit(job, event="end", done=1, total=1,
                             elapsed_s=dt)
            await self._finish(job, "done")
        else:
            job.error = error or "unknown worker failure"
            await self._emit(job, event="failed", label=job.spec.label,
                             done=1, total=1, source="failed",
                             error=job.error)
            await self._emit(job, event="end", done=1, total=1,
                             elapsed_s=dt)
            await self._finish(job, "failed")

    def _store_result(self, job: Job, rdict: Dict[str, Any]) -> bytes:
        """Feed the shared cache (exact tiers only) and return the
        bytes every client of this key will be served."""
        from repro.config import engine_tier
        from repro.sweep.serialize import result_from_dict

        result = result_from_dict(rdict)
        engine = job.config.memory.access_engine
        if engine_tier(engine) == "exact":
            self.cache.store(job.key, result, meta={
                "design": job.spec.design,
                "workload": job.spec.workload,
            })
        blob = _read_bytes(self.cache.path_for(job.key))
        if blob is not None:
            return blob
        # cache disabled or vector tier: serve a cache-shaped payload
        # straight from memory (not byte-stable across servers, but
        # stable for every client of this job).
        return json.dumps({"schema": self.cache.SCHEMA, "key": job.key,
                           "result": rdict}).encode("utf-8")


def _read_bytes(path) -> Optional[bytes]:
    try:
        return path.read_bytes()
    except OSError:
        return None


# ----------------------------------------------------------------------
# threaded harness (tests, serve-smoke, notebooks)
# ----------------------------------------------------------------------
@dataclass
class ServerHandle:
    """A server running on a background thread."""

    server: ExperimentServer
    thread: threading.Thread

    @property
    def base_url(self) -> str:
        return f"http://{self.server.host}:{self.server.port}"

    def stop(self, timeout: float = 10.0) -> None:
        loop = self.server._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self.server.request_stop)
        self.thread.join(timeout)


def run_in_thread(**kwargs) -> ServerHandle:
    """Start an :class:`ExperimentServer` on a daemon thread and wait
    until it is accepting (its ephemeral port resolved)."""
    server = ExperimentServer(**kwargs)
    ready = threading.Event()
    thread = threading.Thread(
        target=lambda: asyncio.run(server.serve(ready=ready)),
        name="repro-serve", daemon=True)
    thread.start()
    if not ready.wait(timeout=15.0):
        raise RuntimeError("experiment server failed to start")
    return ServerHandle(server=server, thread=thread)
