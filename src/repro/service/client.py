"""Thin client for the experiment server (stdlib ``urllib`` only).

Three layers:

* :class:`ServiceClient` — one method per endpoint, JSON in/out, plus
  an NDJSON event iterator for ``/v1/events``;
* :class:`RemoteLedger` / :class:`RemoteCache` — duck-typed stand-ins
  for :class:`~repro.observatory.history.HistoryLedger` and
  :class:`~repro.sweep.cache.ResultCache` that read through the
  server, so the *existing* diff engine and regression detector run
  unchanged against a remote observatory (``repro diff --server``,
  ``repro regress --server``).  Fetched entries spool into a local
  temp directory mirroring the cache layout, so path-based logic
  (telemetry sidecars, staleness warnings) keeps working;
* :func:`run_specs` — the grid thin-client: submit every spec, let the
  server dedupe and fan out, and re-emit typed
  :class:`~repro.observatory.progress.ProgressEvent`\\ s so the local
  renderers (live status line, ``--progress-jsonl``) work identically
  in ``--server`` mode.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.parse
import urllib.request
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.service.spec import ExperimentSpec


class ServiceError(ValueError):
    """An error answer (or no answer) from the experiment server.

    A ``ValueError`` so the CLI's top-level handler renders it as a
    one-line ``error: …`` (exit 2) instead of a traceback.
    """

    def __init__(self, message: str, status: int = 0):
        super().__init__(message)
        self.status = status


class ServiceClient:
    """One experiment server, addressed by base URL."""

    def __init__(self, base_url: str, timeout: float = 600.0):
        self.base_url = base_url.rstrip("/")
        if "://" not in self.base_url:
            self.base_url = "http://" + self.base_url
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _open(self, method: str, path: str,
              query: Optional[Dict[str, Any]] = None,
              body: Optional[Dict[str, Any]] = None):
        url = self.base_url + path
        if query:
            url += "?" + urllib.parse.urlencode(
                {k: v for k, v in query.items() if v is not None})
        data = json.dumps(body).encode("utf-8") if body is not None \
            else (b"" if method == "POST" else None)
        request = urllib.request.Request(
            url, data=data, method=method,
            headers={"Content-Type": "application/json"})
        try:
            return urllib.request.urlopen(request, timeout=self.timeout)
        except urllib.error.HTTPError as exc:
            detail = ""
            try:
                detail = json.loads(exc.read().decode("utf-8"))\
                    .get("error", "")
            except (ValueError, OSError):
                pass
            raise ServiceError(
                f"{method} {path}: HTTP {exc.code}"
                + (f" — {detail}" if detail else ""),
                status=exc.code) from None
        except (urllib.error.URLError, OSError) as exc:
            raise ServiceError(
                f"cannot reach experiment server at {self.base_url}: "
                f"{getattr(exc, 'reason', exc)}") from None

    def _json(self, method: str, path: str,
              query: Optional[Dict[str, Any]] = None,
              body: Optional[Dict[str, Any]] = None) -> Any:
        with self._open(method, path, query=query, body=body) as resp:
            return json.loads(resp.read().decode("utf-8"))

    def _bytes(self, path: str,
               query: Optional[Dict[str, Any]] = None) -> bytes:
        with self._open("GET", path, query=query) as resp:
            return resp.read()

    # ------------------------------------------------------------------
    # endpoint methods
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return self._json("GET", "/v1/health")

    def stats(self) -> Dict[str, Any]:
        return self._json("GET", "/v1/stats")

    def metrics(self) -> Tuple[str, str]:
        """Scrape ``/v1/metrics``: ``(content_type, exposition_text)``."""
        with self._open("GET", "/v1/metrics") as resp:
            content_type = resp.headers.get("Content-Type", "")
            return content_type, resp.read().decode("utf-8")

    def submit(self, spec: Any, wait: bool = True) -> Dict[str, Any]:
        """Submit one spec (an :class:`ExperimentSpec` or plain dict).

        ``wait=True`` long-polls until the point is terminal; the
        answer carries ``key`` and ``status`` (``cached`` / ``done`` /
        ``failed`` / ``submitted`` / ``attached``).
        """
        body = spec.to_dict() if isinstance(spec, ExperimentSpec) \
            else dict(spec)
        return self._json("POST", "/v1/submit",
                          query={"wait": 1 if wait else None}, body=body)

    def campaign(self, doc: Dict[str, Any],
                 sets: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """Expand and intake a whole campaign document server-side.

        Answers ``{name, fingerprint, total, pool, points: [...]}``
        with one ``{label, key, status, attached, spec}`` row per
        deduped point (``status`` as in :meth:`submit`).
        """
        body: Dict[str, Any] = {"campaign": dict(doc)}
        if sets:
            body["set"] = dict(sets)
        return self._json("POST", "/v1/campaign", body=body)

    def result_bytes(self, key: str, telemetry: bool = False) -> bytes:
        """The stored entry for ``key``, exactly as the server holds it."""
        return self._bytes(f"/v1/result/{key}",
                           query={"telemetry": 1 if telemetry else None})

    def result(self, key: str):
        """The cached :class:`~repro.analysis.metrics.RunResult`."""
        from repro.sweep.serialize import result_from_dict

        payload = json.loads(self.result_bytes(key).decode("utf-8"))
        return result_from_dict(payload["result"])

    def events(self, key: str) -> Iterator[Dict[str, Any]]:
        """Iterate the NDJSON progress stream for one run key."""
        with self._open("GET", f"/v1/events/{key}") as resp:
            for line in resp:
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))

    def history(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        return self._json("GET", "/v1/history",
                          query={"limit": limit})["records"]

    def diff(self, ref_a: str, ref_b: str,
             threshold: Optional[float] = None) -> Dict[str, Any]:
        return self._json("GET", "/v1/diff", query={
            "a": ref_a, "b": ref_b, "threshold": threshold})

    def regress(self, tolerance: Optional[float] = None) -> Dict[str, Any]:
        return self._json("GET", "/v1/regress",
                          query={"tolerance": tolerance})

    def shutdown(self) -> Dict[str, Any]:
        return self._json("POST", "/v1/shutdown")


# ----------------------------------------------------------------------
# remote observatory adapters (duck-typed ledger / cache)
# ----------------------------------------------------------------------
class RemoteLedger:
    """A read-only :class:`HistoryLedger` look-alike over the server.

    Implements exactly the surface the diff engine and the regression
    detector consume: ``records()``, ``find_key()``, ``path``.
    """

    def __init__(self, client: ServiceClient):
        self.client = client
        self.path = f"{client.base_url}/v1/history"

    def records(self):
        from repro.observatory.history import RunRecord

        return [RunRecord.from_dict(d) for d in self.client.history()]

    def find_key(self, key_prefix: str):
        for record in reversed(self.records()):
            if record.key and record.key.startswith(key_prefix):
                return record
        return None

    def __len__(self) -> int:
        return len(self.records())


class RemoteCache:
    """A read-only :class:`ResultCache` look-alike over the server.

    Entries (and telemetry sidecars) are fetched once per key and
    spooled under a local temp root in the cache's own on-disk layout,
    so ``path_for`` / ``telemetry_path_for`` return real files and the
    diff engine's sidecar handling works untouched.
    """

    def __init__(self, client: ServiceClient,
                 spool: Optional[Path] = None):
        import tempfile

        self.client = client
        self.root = Path(spool) if spool is not None else Path(
            tempfile.mkdtemp(prefix="repro-remote-cache-"))
        self._fetched: Dict[str, bool] = {}

    # layout mirrors ResultCache
    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def telemetry_path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.telemetry.json"

    def _ensure(self, key: str) -> None:
        if self._fetched.get(key):
            return
        self._fetched[key] = True
        for telemetry, path in ((False, self.path_for(key)),
                                (True, self.telemetry_path_for(key))):
            try:
                blob = self.client.result_bytes(key, telemetry=telemetry)
            except ServiceError as exc:
                if exc.status == 404:
                    continue
                raise
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_bytes(blob)

    def load(self, key: str):
        from repro.sweep.serialize import result_from_dict

        self._ensure(key)
        try:
            payload = json.loads(self.path_for(key).read_text())
            return result_from_dict(payload["result"])
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def load_telemetry(self, key: str) -> Optional[Dict[str, Any]]:
        self._ensure(key)
        try:
            payload = json.loads(
                self.telemetry_path_for(key).read_text())
            return payload if isinstance(payload, dict) else None
        except (OSError, ValueError):
            return None


# ----------------------------------------------------------------------
# grid thin-client
# ----------------------------------------------------------------------
def run_specs(
    client: ServiceClient,
    specs: Sequence[ExperimentSpec],
    events=None,
):
    """Run a grid of specs through the server; the local sweep's
    counterpart to :meth:`SweepRunner.run`.

    Every spec is submitted without waiting (the server dedupes and
    fans out over its own pool), then completion is long-polled spec
    by spec.  Typed progress events are re-emitted locally so the
    caller's renderer shows the same feed a local sweep would.

    Returns ``(outcomes, keys)`` where outcomes is a list of dicts
    ``{spec, key, status, result, error}`` in input order.
    """
    from repro.observatory.progress import ProgressEvent

    def emit(**kwargs):
        if events is not None:
            try:
                events(ProgressEvent(**kwargs))
            except Exception:
                pass  # observability never fails the run

    total = len(specs)
    pool = 1
    try:
        pool = int(client.health().get("pool", 1))
    except (ServiceError, ValueError, TypeError):
        pass
    emit(event="begin", total=total, jobs=pool)

    submitted = []
    for index, spec in enumerate(specs):
        answer = client.submit(spec, wait=False)
        submitted.append((index, spec, answer))
        if answer.get("status") not in ("cached", "done", "failed"):
            emit(event="started", label=spec.label, index=index,
                 total=total)

    outcomes: List[Dict[str, Any]] = [None] * total  # type: ignore
    done = 0
    t0 = time.time()
    for index, spec, answer in submitted:
        status = answer.get("status")
        if status not in ("cached", "done", "failed"):
            final = client.submit(spec, wait=True)
            status = final.get("status")
            answer = dict(answer, **final)
        done += 1
        key = answer.get("key")
        outcome = {"spec": spec, "key": key, "status": status,
                   "result": None, "error": answer.get("error", "")}
        if status in ("cached", "done"):
            try:
                outcome["result"] = client.result(key)
            except (ServiceError, ValueError, KeyError) as exc:
                outcome["status"] = "failed"
                outcome["error"] = f"result fetch failed: {exc}"
        if outcome["status"] == "cached":
            emit(event="cached", label=spec.label, index=index,
                 done=done, total=total, source="cache")
        elif outcome["status"] == "done":
            emit(event="done", label=spec.label, index=index,
                 done=done, total=total, source="run",
                 elapsed_s=float(answer.get("elapsed_s") or 0.0))
        else:
            emit(event="failed", label=spec.label, done=done,
                 total=total, source="failed",
                 error=str(outcome["error"]))
        outcomes[index] = outcome
    emit(event="end", done=done, total=total,
         elapsed_s=time.time() - t0)
    return outcomes
