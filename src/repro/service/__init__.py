"""Sweep-as-a-service: the asyncio experiment server and its clients.

``python -m repro serve`` exposes the sweep engine over HTTP: clients
submit experiment specs as JSON, the server dedupes them by
content-addressed run key (cached → immediate; in flight → attach;
new → dispatch to a process pool), streams typed progress events as
NDJSON, and serves the shared result cache, history ledger, diff and
regression endpoints read-only.  See docs/service.md.

Layout:

* :mod:`repro.service.protocol` — minimal HTTP/1.1 over asyncio
  streams (request parsing, JSON / NDJSON responses);
* :mod:`repro.service.spec` — the JSON experiment-spec format and its
  key-preserving resolution to a :class:`~repro.config.SystemConfig`;
* :mod:`repro.service.worker` — the process-pool job runner and the
  worker-side execution log;
* :mod:`repro.service.server` — :class:`ExperimentServer` itself;
* :mod:`repro.service.client` — stdlib thin client, the remote
  ledger/cache adapters behind ``--server``, and the grid runner.
"""

from repro.service.spec import ExperimentSpec, SpecError

__all__ = ["ExperimentSpec", "SpecError"]
