"""Experiment specs: the JSON request format of the sweep service.

One spec fully describes one simulation point, the same cell a
:class:`~repro.sweep.runner.SweepPoint` names programmatically::

    {
      "design": "O",
      "workload": "pr",
      "workload_kwargs": {},              // optional factory kwargs
      "mesh": "4x4",                      // optional, scales topology
      "engine": "batched",                // optional, non-semantic
      "seed": 2023,                       // optional
      "config": {                         // optional section overrides
        "scheduler": {"hybrid_alpha": 2.0},
        "cache": {"num_camps": 7}
      },
      "faults": { ... FaultSchedule.to_dict() ... }   // optional
    }

Resolution is *key-preserving by construction*: the spec starts from
:func:`repro.config.experiment_config` and applies exactly the
transformations the CLI applies (``scaled`` for the mesh, section
``dataclasses.replace`` for overrides), so a spec submitted to the
server produces byte-for-byte the same run key — and therefore hits
the same cache entries — as the equivalent local ``repro run`` /
``repro sweep`` invocation.  Enum-typed fields accept their value
strings (``"style": "traveller"``); unknown sections, fields, designs
and workloads raise :class:`SpecError` with an actionable message
(answered as HTTP 400, never a server crash).

Since the campaign subsystem landed, all of the parsing and
resolution logic lives in :mod:`repro.campaign.resolver`; a spec is a
thin wrapper over it — a single experiment is a single-point
campaign.  The names re-exported here (``SpecError``,
``CONFIG_SECTIONS``) are the same objects the resolver defines, so
``isinstance`` checks and imports written against either module agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Union

from repro.campaign.resolver import (  # noqa: F401 (re-exports)
    CONFIG_SECTIONS,
    POINT_KEYS,
    SpecError,
    apply_sections as _apply_sections,
    coerce_field as _coerce_field,
    parse_mesh as _parse_mesh,
    resolve_system_config,
    validate_point,
)
from repro.config import SystemConfig
from repro.sweep.keys import UncacheableError, run_key

#: spec keys the parser understands; anything else is a typo worth 400.
_KNOWN_KEYS = set(POINT_KEYS)


@dataclass
class ExperimentSpec:
    """One validated, resolvable experiment request."""

    design: str
    workload: str
    workload_kwargs: Dict[str, Any] = field(default_factory=dict)
    mesh: Optional[str] = None
    engine: Optional[str] = None
    seed: Optional[int] = None
    config: Dict[str, Any] = field(default_factory=dict)
    faults: Optional[Dict[str, Any]] = None
    label: str = ""
    #: end-to-end correlation id (repro.insight.trace).  Annotation
    #: only: serialized when set, but never part of :meth:`run_key` —
    #: two specs differing only in trace_id share one cache entry.
    trace_id: str = ""

    def __post_init__(self) -> None:
        if not self.label:
            self.label = f"{self.design}/{self.workload}"

    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Any) -> "ExperimentSpec":
        """Parse and validate one spec payload (raises SpecError)."""
        return cls(**validate_point(data))

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"design": self.design,
                               "workload": self.workload}
        if self.workload_kwargs:
            out["workload_kwargs"] = self.workload_kwargs
        if self.mesh:
            out["mesh"] = self.mesh
        if self.engine:
            out["engine"] = self.engine
        if self.seed is not None:
            out["seed"] = self.seed
        if self.config:
            out["config"] = self.config
        if self.faults is not None:
            out["faults"] = self.faults
        if self.label != f"{self.design}/{self.workload}":
            out["label"] = self.label
        if self.trace_id:
            out["trace_id"] = self.trace_id
        return out

    # ------------------------------------------------------------------
    def resolved_config(self) -> SystemConfig:
        """The full :class:`SystemConfig` this spec describes."""
        return resolve_system_config(mesh=self.mesh, config=self.config,
                                     engine=self.engine, seed=self.seed)

    def fault_schedule(self):
        """The :class:`~repro.faults.FaultSchedule`, or ``None``."""
        if self.faults is None:
            return None
        from repro.faults.schedule import FaultSchedule

        try:
            return FaultSchedule.from_dict(self.faults)
        except (KeyError, TypeError, ValueError) as exc:
            raise SpecError(f"invalid fault schedule: {exc}")

    def workload_for_key(self) -> Union[str, Any]:
        """What the run key hashes: the bare name when there are no
        kwargs (matching :func:`~repro.sweep.runner.cached_simulate`),
        the materialized factory instance otherwise."""
        if not self.workload_kwargs:
            return self.workload
        from repro.workloads.base import make_workload

        return make_workload(self.workload, **self.workload_kwargs)

    def run_key(self) -> str:
        """The content-addressed key of this spec — byte-identical to
        the key the local sweep engine computes for the same point."""
        schedule = self.fault_schedule()
        extra = {"faults": schedule} if schedule else None
        try:
            return run_key(self.design, self.workload_for_key(),
                           self.resolved_config(), extra=extra)
        except UncacheableError as exc:
            raise SpecError(f"spec is uncacheable: {exc}")
