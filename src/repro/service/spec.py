"""Experiment specs: the JSON request format of the sweep service.

One spec fully describes one simulation point, the same cell a
:class:`~repro.sweep.runner.SweepPoint` names programmatically::

    {
      "design": "O",
      "workload": "pr",
      "workload_kwargs": {},              // optional factory kwargs
      "mesh": "4x4",                      // optional, scales topology
      "engine": "batched",                // optional, non-semantic
      "seed": 2023,                       // optional
      "config": {                         // optional section overrides
        "scheduler": {"hybrid_alpha": 2.0},
        "cache": {"num_camps": 7}
      },
      "faults": { ... FaultSchedule.to_dict() ... }   // optional
    }

Resolution is *key-preserving by construction*: the spec starts from
:func:`repro.config.experiment_config` and applies exactly the
transformations the CLI applies (``scaled`` for the mesh, section
``dataclasses.replace`` for overrides), so a spec submitted to the
server produces byte-for-byte the same run key — and therefore hits
the same cache entries — as the equivalent local ``repro run`` /
``repro sweep`` invocation.  Enum-typed fields accept their value
strings (``"style": "traveller"``); unknown sections, fields, designs
and workloads raise :class:`SpecError` with an actionable message
(answered as HTTP 400, never a server crash).
"""

from __future__ import annotations

import dataclasses
import enum
import typing
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple, Union

from repro.config import SystemConfig, experiment_config
from repro.sweep.keys import UncacheableError, run_key

#: config sections a spec may override (every SystemConfig section).
CONFIG_SECTIONS = ("topology", "core", "memory", "noc", "sram", "cache",
                   "scheduler")

#: spec keys the parser understands; anything else is a typo worth 400.
_KNOWN_KEYS = {"design", "workload", "workload_kwargs", "mesh", "engine",
               "seed", "config", "faults", "label"}


class SpecError(ValueError):
    """A malformed experiment spec (client error, not a server bug)."""


def _coerce_field(section: Any, name: str, value: Any) -> Any:
    """Coerce a JSON value onto a config dataclass field's type.

    Enums accept their ``.value`` strings; everything else passes
    through (the config's own ``validate()`` is the arbiter of
    ranges).
    """
    hints = typing.get_type_hints(type(section))
    target = hints.get(name)
    if target is None:
        return value
    origin = typing.get_origin(target)
    if origin is Union:  # Optional[...] fields like hybrid_alpha
        args = [a for a in typing.get_args(target) if a is not type(None)]
        if len(args) == 1:
            target = args[0]
    if isinstance(target, type) and issubclass(target, enum.Enum) \
            and not isinstance(value, target):
        try:
            return target(value)
        except ValueError:
            choices = sorted(m.value for m in target)
            raise SpecError(
                f"config.{name}: {value!r} is not one of {choices}"
            )
    return value


def _apply_sections(cfg: SystemConfig,
                    overrides: Dict[str, Any]) -> SystemConfig:
    if not isinstance(overrides, dict):
        raise SpecError(f"config must be an object of sections, "
                        f"got {type(overrides).__name__}")
    for section_name, fields in overrides.items():
        if section_name not in CONFIG_SECTIONS:
            raise SpecError(
                f"unknown config section {section_name!r}; expected one "
                f"of {sorted(CONFIG_SECTIONS)}"
            )
        if not isinstance(fields, dict):
            raise SpecError(
                f"config.{section_name} must be an object of fields"
            )
        section = getattr(cfg, section_name)
        known = {f.name for f in dataclasses.fields(section)}
        coerced = {}
        for name, value in fields.items():
            if name not in known:
                raise SpecError(
                    f"unknown field {name!r} in config.{section_name}; "
                    f"expected one of {sorted(known)}"
                )
            coerced[name] = _coerce_field(section, name, value)
        try:
            cfg = cfg.with_(**{
                section_name: dataclasses.replace(section, **coerced)
            })
        except (TypeError, ValueError) as exc:
            raise SpecError(f"config.{section_name}: {exc}")
    return cfg


def _parse_mesh(mesh: str) -> Tuple[int, int]:
    try:
        rows, cols = (int(v) for v in str(mesh).lower().split("x"))
        return rows, cols
    except ValueError:
        raise SpecError(f"mesh must look like '4x4', got {mesh!r}")


@dataclass
class ExperimentSpec:
    """One validated, resolvable experiment request."""

    design: str
    workload: str
    workload_kwargs: Dict[str, Any] = field(default_factory=dict)
    mesh: Optional[str] = None
    engine: Optional[str] = None
    seed: Optional[int] = None
    config: Dict[str, Any] = field(default_factory=dict)
    faults: Optional[Dict[str, Any]] = None
    label: str = ""

    def __post_init__(self) -> None:
        if not self.label:
            self.label = f"{self.design}/{self.workload}"

    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Any) -> "ExperimentSpec":
        """Parse and validate one spec payload (raises SpecError)."""
        if not isinstance(data, dict):
            raise SpecError("spec must be a JSON object")
        unknown = set(data) - _KNOWN_KEYS
        if unknown:
            raise SpecError(
                f"unknown spec key(s) {sorted(unknown)}; expected a "
                f"subset of {sorted(_KNOWN_KEYS)}"
            )
        from repro.core.system import DESIGN_POINTS
        from repro.workloads.base import WORKLOAD_FACTORIES

        design = data.get("design")
        if design not in DESIGN_POINTS:
            raise SpecError(
                f"unknown design {design!r}; expected one of "
                f"{sorted(DESIGN_POINTS)}"
            )
        workload = data.get("workload")
        if workload not in WORKLOAD_FACTORIES:
            raise SpecError(
                f"unknown workload {workload!r}; expected one of "
                f"{sorted(WORKLOAD_FACTORIES)}"
            )
        kwargs = data.get("workload_kwargs") or {}
        if not isinstance(kwargs, dict):
            raise SpecError("workload_kwargs must be an object")
        seed = data.get("seed")
        if seed is not None and not isinstance(seed, int):
            raise SpecError(f"seed must be an integer, got {seed!r}")
        faults = data.get("faults")
        if faults is not None and not isinstance(faults, dict):
            raise SpecError("faults must be a FaultSchedule object")
        return cls(
            design=design, workload=workload,
            workload_kwargs=dict(kwargs),
            mesh=data.get("mesh"), engine=data.get("engine"),
            seed=seed, config=dict(data.get("config") or {}),
            faults=faults, label=str(data.get("label") or ""),
        )

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"design": self.design,
                               "workload": self.workload}
        if self.workload_kwargs:
            out["workload_kwargs"] = self.workload_kwargs
        if self.mesh:
            out["mesh"] = self.mesh
        if self.engine:
            out["engine"] = self.engine
        if self.seed is not None:
            out["seed"] = self.seed
        if self.config:
            out["config"] = self.config
        if self.faults is not None:
            out["faults"] = self.faults
        if self.label != f"{self.design}/{self.workload}":
            out["label"] = self.label
        return out

    # ------------------------------------------------------------------
    def resolved_config(self) -> SystemConfig:
        """The full :class:`SystemConfig` this spec describes."""
        cfg = experiment_config()
        if self.mesh:
            cfg = cfg.scaled(*_parse_mesh(self.mesh))
        cfg = _apply_sections(cfg, self.config)
        if self.engine:
            cfg = cfg.with_(memory=dataclasses.replace(
                cfg.memory, access_engine=self.engine))
        if self.seed is not None:
            cfg = cfg.with_(seed=self.seed)
        try:
            return cfg.validate()
        except ValueError as exc:
            raise SpecError(f"invalid configuration: {exc}")

    def fault_schedule(self):
        """The :class:`~repro.faults.FaultSchedule`, or ``None``."""
        if self.faults is None:
            return None
        from repro.faults.schedule import FaultSchedule

        try:
            return FaultSchedule.from_dict(self.faults)
        except (KeyError, TypeError, ValueError) as exc:
            raise SpecError(f"invalid fault schedule: {exc}")

    def workload_for_key(self) -> Union[str, Any]:
        """What the run key hashes: the bare name when there are no
        kwargs (matching :func:`~repro.sweep.runner.cached_simulate`),
        the materialized factory instance otherwise."""
        if not self.workload_kwargs:
            return self.workload
        from repro.workloads.base import make_workload

        return make_workload(self.workload, **self.workload_kwargs)

    def run_key(self) -> str:
        """The content-addressed key of this spec — byte-identical to
        the key the local sweep engine computes for the same point."""
        schedule = self.fault_schedule()
        extra = {"faults": schedule} if schedule else None
        try:
            return run_key(self.design, self.workload_for_key(),
                           self.resolved_config(), extra=extra)
        except UncacheableError as exc:
            raise SpecError(f"spec is uncacheable: {exc}")
