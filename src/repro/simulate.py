"""One-call simulation helpers: the public entry points most users need.

    from repro import simulate, compare_designs
    result = simulate("O", "pr")
    results = compare_designs(["B", "Sl", "O"], "pr")

Every run builds a fresh machine (caches cold, counters zero) from the
paper's Table 1 configuration, optionally overridden.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.analysis.metrics import RunResult
from repro.config import SystemConfig, default_config, experiment_config
from repro.core.system import DESIGN_POINTS, build_system
from repro.telemetry import Telemetry
import repro.workloads  # noqa: F401  (imports register the workload factories)
from repro.workloads.base import Workload, make_workload

WorkloadLike = Union[str, Workload]

#: the designs of Table 2 in presentation order (H is analytic).
ALL_DESIGNS = ("B", "Sm", "Sl", "Sh", "C", "O")

#: the workloads of Section 6 in Figure 6 order.
ALL_WORKLOADS = ("pr", "bfs", "sssp", "astar", "gcn", "kmeans", "knn", "spmv")

#: the workload subset shown in the detailed figures (8, 9, 11-18).
DETAIL_WORKLOADS = ("pr", "bfs", "gcn", "knn", "spmv")


def _resolve_workload(workload: WorkloadLike, **kwargs) -> Workload:
    if isinstance(workload, Workload):
        return workload
    return make_workload(workload, **kwargs)


def simulate(
    design: str,
    workload: WorkloadLike,
    config: Optional[SystemConfig] = None,
    verify: bool = False,
    telemetry: Optional[Telemetry] = None,
    fault_schedule=None,
    **workload_kwargs,
) -> RunResult:
    """Run one (design, workload) pair and return its metrics.

    ``workload`` is a registered name ("pr", "bfs", ...) or a prepared
    :class:`~repro.workloads.base.Workload` instance (which can be
    reused across designs so every design sees the identical dataset).
    With ``verify=True`` the workload's answer is checked against its
    independent reference implementation after the run.

    ``config`` defaults to :func:`repro.config.experiment_config` — the
    Table 1 machine with the workload-exchange interval scaled to the
    reduced dataset sizes (see the constant's docstring).

    Pass a :class:`~repro.telemetry.Telemetry` to instrument the run:
    the returned result then carries a ``telemetry`` summary and the
    Telemetry object itself holds the full timeline/series for export.

    Pass a :class:`~repro.faults.FaultSchedule` to run the machine
    under injected failures; the result then carries ``resilience``
    counters.
    """
    wl = _resolve_workload(workload, **workload_kwargs)
    if config is None:
        config = experiment_config()
    system = build_system(design, config, telemetry=telemetry,
                          fault_schedule=fault_schedule)
    t0 = time.perf_counter()
    result = system.run(wl, verify=verify)
    wall_s = time.perf_counter() - t0
    # Warm-runtime donation (docs/architecture.md §15): inside a warm
    # scope the finished machine's derived tables (NoC fast tables,
    # camp home/nearest tables) feed the process memos for later
    # points.  A cold process skips this entirely, and fault-touched
    # state is never donated.
    from repro.core.system import _sweep_memos

    memos = _sweep_memos()
    if memos is not None:
        memos.harvest(system)
    # Cross-run bookkeeping (docs/observability.md): one compact line
    # in the history ledger.  Best-effort and non-semantic — the result
    # object, run keys, and cached bytes are untouched, and a disabled
    # or unwritable ledger never fails the run.
    from repro.observatory.history import record_run

    record_run(result, config=config, workload=wl, wall_s=wall_s,
               source="simulate", fault_schedule=fault_schedule)
    return result


def compare_designs(
    designs: Sequence[str],
    workload: WorkloadLike,
    config: Optional[SystemConfig] = None,
    cache: object = "default",
    **workload_kwargs,
) -> Dict[str, RunResult]:
    """Run the same workload (same dataset) across several designs.

    Each (design, workload, config) point routes through the on-disk
    result cache (``repro.sweep``): previously simulated points load
    from ``.repro_cache/`` instead of re-running.  Simulations are
    deterministic, so a hit is bit-identical to a live run.  Pass
    ``cache=False`` (or set ``REPRO_NO_CACHE``) to force live runs.
    """
    from repro.sweep.runner import cached_simulate

    wl = _resolve_workload(workload, **workload_kwargs)
    return {d: cached_simulate(d, wl, config, cache=cache) for d in designs}


def sweep_configs(
    design: str,
    workload: WorkloadLike,
    configs: Dict[str, SystemConfig],
    cache: object = "default",
) -> Dict[str, RunResult]:
    """Run one design/workload across a dict of named configurations.

    Each configuration routes through the on-disk result cache exactly
    like :func:`compare_designs` — re-sweeping a grid re-simulates only
    the points whose configuration actually changed.  ``cache=False``
    (or the ``REPRO_NO_CACHE`` environment variable) forces live runs.

    (Formerly exported as ``repro.sweep``; that name now hosts the
    sweep-engine package, whose module object remains callable with
    this signature for backwards compatibility.)
    """
    from repro.sweep.runner import cached_simulate

    wl = _resolve_workload(workload)
    return {
        name: cached_simulate(design, wl, cfg, cache=cache)
        for name, cfg in configs.items()
    }
