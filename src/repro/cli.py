"""Command-line interface.

    python -m repro describe                 # print the Table 1 machine
    python -m repro designs                  # print the Table 2 matrix
    python -m repro run -d O -w pr           # one simulation
    python -m repro trace O pr --out t.json  # instrumented run -> Chrome
                                             # trace (Perfetto-loadable)
    python -m repro compare -w knn           # all designs on one workload
    python -m repro matrix                   # the full Figure 6/7/8 matrix
    python -m repro sweep                    # the same matrix, parallel +
                                             # cached + sweep_results.json
    python -m repro sweep alpha -w pr        # a Section 7.2 parameter sweep
    python -m repro faults O pr --units 4    # resilience campaign under
                                             # injected failures
    python -m repro campaign run \
        campaigns/full_matrix.json           # a committed declarative
                                             # campaign file (validate /
                                             # expand / report too)
    python -m repro bench                    # time the simulator itself
                                             # -> BENCH_<n>.json
    python -m repro report campaign_out/x    # bottleneck classification
                                             # matrix (DAMOV-style) over
                                             # a campaign/sweep/ledger
    python -m repro diff -1 -2               # compare the two newest
                                             # runs in the history ledger
    python -m repro regress                  # perf-regression scan over
                                             # the BENCH_*.json trajectory
    python -m repro run -d O -w pr --profile # cProfile a live run
    python -m repro serve                    # sweep-as-a-service: HTTP
                                             # server over the result cache
    python -m repro compact                  # compact the history ledger,
                                             # prune orphaned cache temps

Grid commands (``matrix`` / ``sweep``), ``diff`` and ``regress
--history`` accept ``--server URL`` to run through a shared
``repro serve`` instance instead of the local machine — submissions
dedupe by run key across all of the server's clients (see
docs/service.md).

Every simulation routes through the content-addressed result cache in
``.repro_cache/`` (``--no-cache`` bypasses it) and drops a one-line
record into the run-history ledger (``.repro_cache/history.jsonl``;
disable with ``REPRO_NO_HISTORY``); grid commands fan out over
``--jobs`` worker processes with a live progress line on TTYs
(``--quiet`` / ``--no-progress`` / ``--progress-jsonl`` adjust it).
Results can be exported with ``--csv out.csv`` / ``--json out.json``.
See ``docs/observability.md`` for the cross-run workflow.
"""

from __future__ import annotations

import argparse
import dataclasses
import json as _json
import sys
from typing import Dict, List, Optional

import repro
from repro.analysis import export
from repro.analysis.metrics import RunResult
from repro.analysis.plotting import bar_chart
from repro.analysis.stats import geomean
from repro.config import SystemConfig, describe_config, experiment_config
from repro.sweep import SIMULATOR_VERSION, cached_simulate, run_matrix


def _config_from_args(args) -> SystemConfig:
    cfg = experiment_config()
    if args.mesh:
        rows, cols = (int(v) for v in args.mesh.lower().split("x"))
        cfg = cfg.scaled(rows, cols)
    overrides = {}
    if args.alpha is not None:
        overrides["hybrid_alpha"] = args.alpha
    if args.interval is not None:
        overrides["exchange_interval_cycles"] = args.interval
    if overrides:
        cfg = cfg.with_(
            scheduler=dataclasses.replace(cfg.scheduler, **overrides)
        )
    if args.camps is not None or args.bypass is not None:
        cache_over = {}
        if args.camps is not None:
            cache_over["num_camps"] = args.camps
        if args.bypass is not None:
            cache_over["bypass_probability"] = args.bypass
        cfg = cfg.with_(cache=dataclasses.replace(cfg.cache, **cache_over))
    engine = getattr(args, "engine", None)
    if engine:
        cfg = cfg.with_(
            memory=dataclasses.replace(cfg.memory, access_engine=engine)
        )
    return cfg.validate()


def _cache_from_args(args):
    """The ``cache=`` argument for the sweep engine (False = bypass)."""
    return False if getattr(args, "no_cache", False) else "default"


def _spec_from_args(args, design: str, workload: str):
    """An :class:`ExperimentSpec` mirroring :func:`_config_from_args`.

    Field-for-field the same transformations, so the spec's run key —
    computed server-side — matches what the local path would compute.
    """
    from repro.service.spec import ExperimentSpec

    spec: Dict[str, object] = {"design": design, "workload": workload}
    if args.mesh:
        spec["mesh"] = args.mesh
    scheduler = {}
    if args.alpha is not None:
        scheduler["hybrid_alpha"] = args.alpha
    if args.interval is not None:
        scheduler["exchange_interval_cycles"] = args.interval
    cache_over = {}
    if args.camps is not None:
        cache_over["num_camps"] = args.camps
    if args.bypass is not None:
        cache_over["bypass_probability"] = args.bypass
    config = {}
    if scheduler:
        config["scheduler"] = scheduler
    if cache_over:
        config["cache"] = cache_over
    if config:
        spec["config"] = config
    engine = getattr(args, "engine", None)
    if engine:
        spec["engine"] = engine
    return ExperimentSpec.from_dict(spec)


def _run_grid_via_server(args, designs, workloads, log):
    """Run a design x workload grid through ``--server`` (thin client).

    Returns a :class:`~repro.sweep.runner.SweepReport` shaped exactly
    like the local engine's, so the table/export code downstream is
    shared between the two modes.
    """
    import time

    from repro.service.client import ServiceClient, run_specs
    from repro.sweep.runner import PointOutcome, SweepPoint, SweepReport

    client = ServiceClient(args.server)
    specs = [_spec_from_args(args, d, w)
             for w in workloads for d in designs]
    log.detail(f"submitting {len(specs)} point(s) to {client.base_url}")
    t0 = time.time()
    raw = run_specs(client, specs, events=_events_from_args(args, log))
    outcomes = []
    for item in raw:
        spec = item["spec"]
        point = SweepPoint(design=spec.design, workload=spec.workload)
        source = {"cached": "cache", "done": "run"}.get(
            item["status"], "failed")
        outcomes.append(PointOutcome(
            point=point, result=item["result"], source=source,
            key=item["key"],
            error=(item["error"] or "remote run failed")
            if source == "failed" else None,
        ))
    return SweepReport(outcomes=outcomes, elapsed_s=time.time() - t0)


def _log_from_args(args):
    """The status logger honouring ``--quiet`` / ``-v`` (stderr)."""
    from repro.observatory.logging import from_flags

    return from_flags(quiet=getattr(args, "quiet", False),
                      verbose=getattr(args, "verbose", 0))


def _events_from_args(args, log):
    """The per-point event consumer for grid runs, or None.

    ``--quiet`` silences the status renderer (a ``--progress-jsonl``
    stream still records); ``--no-progress`` downgrades the live TTY
    line to plain per-point lines.  Both renderers write to stderr, so
    stdout stays parseable.
    """
    from repro.observatory.progress import (JsonlProgress, SweepProgress,
                                            tee)

    consumers = []
    if not log.quiet:
        live = False if getattr(args, "no_progress", False) else None
        consumers.append(SweepProgress(live=live))
    jsonl = getattr(args, "progress_jsonl", None)
    if jsonl:
        consumers.append(JsonlProgress(jsonl))
    return tee(*consumers) if consumers else None


def _telemetry_from_args(args):
    """A live Telemetry when any tracing flag was given, else None."""
    trace_out = getattr(args, "trace_out", None)
    interval = getattr(args, "sample_interval", None)
    if trace_out is None and interval is None:
        return None
    from repro.telemetry import Telemetry

    return Telemetry(sample_interval=interval if interval else 1)


def _write_trace(telemetry, out: Optional[str],
                 jsonl: Optional[str] = None,
                 trace_id: str = "") -> None:
    tl = telemetry.timeline
    if out:
        tl.write_chrome(out)
        if trace_id:
            # Stamp the correlation id at write time only — never into
            # timeline.metadata, which summary() copies into the
            # byte-stable telemetry sidecar.
            _stamp_trace_file(out, trace_id)
        print(f"wrote {out} ({len(tl)} events, {tl.dropped} dropped; "
              f"open at chrome://tracing or https://ui.perfetto.dev)")
    if jsonl:
        tl.write_jsonl(jsonl)
        print(f"wrote {jsonl}")


def _stamp_trace_file(path: str, trace_id: str) -> None:
    """Add the trace_id to a written Chrome trace's otherData."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = _json.load(fh)
        if isinstance(payload, dict):
            payload.setdefault("otherData", {})["trace_id"] = trace_id
            with open(path, "w", encoding="utf-8") as fh:
                _json.dump(payload, fh)
    except (OSError, ValueError):
        pass  # annotation only — never fail the run over it


def _export(args, results: List[RunResult]) -> None:
    if getattr(args, "csv", None):
        export.write_csv(args.csv, results)
        print(f"wrote {args.csv}")
    if getattr(args, "json", None):
        export.write_json(args.json, results)
        print(f"wrote {args.json}")


def _print_comparison(results: Dict[str, RunResult]) -> None:
    base = results.get("B") or next(iter(results.values()))
    header = (f"{'design':7} {'speedup':>8} {'hops/B':>8} {'imbal':>7} "
              f"{'energy/B':>9} {'hit':>5}")
    print(header)
    print("-" * len(header))
    for design, r in results.items():
        hops = r.hops_ratio_over(base) if base.inter_hops else 0.0
        print(f"{design:7} {r.speedup_over(base):8.2f} {hops:8.2f} "
              f"{r.load_imbalance():7.2f} "
              f"{r.energy_ratio_over(base):9.2f} {r.cache.hit_rate:5.0%}")


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------
def cmd_describe(args) -> int:
    if getattr(args, "run", None):
        return _describe_run(args.run, args)
    print(describe_config(_config_from_args(args)))
    tel = _telemetry_from_args(args)
    if tel is None:
        print("telemetry: disabled (null sink; enable with "
              "`run --trace-out` / `--sample-interval`, or `repro trace`)")
    else:
        print(f"telemetry: enabled "
              f"(sample interval = {tel.sampler.interval} timestamps)")
    return 0


def _describe_run(ref: str, args) -> int:
    """``repro describe --run REF``: one recorded run's status line,
    including its bottleneck class when a telemetry sidecar exists."""
    from repro.observatory.diffing import (_bottleneck_profile,
                                           resolve_ref)

    handle = resolve_ref(ref, cache=_cache_from_args(args))
    print(f"run {handle.describe()}")
    profile = _bottleneck_profile(handle)
    if profile is None:
        print("bottleneck: unclassifiable (no metrics for this "
              "reference — its cache entry and ledger line are gone)")
        return 0
    if handle.telemetry:
        print(f"bottleneck: {profile.describe()}")
    else:
        print(f"bottleneck: {profile.describe()} — no telemetry "
              f"sidecar, so NoC attribution is the mean-link lower "
              f"bound; re-run via `repro sweep` (sidecars record "
              f"automatically) or `repro trace` for link-level detail")
    return 0


def cmd_designs(args) -> int:
    for name, point in repro.DESIGN_POINTS.items():
        print(f"{name:3} policy={point.policy.value:16} "
              f"cache={point.cache.value:10} {point.description}")
    return 0


def cmd_run(args) -> int:
    cfg = _config_from_args(args)
    telemetry = _telemetry_from_args(args)
    profiling = args.profile or args.profile_out
    if profiling:
        import cProfile

        prof = cProfile.Profile()
        prof.enable()
    if args.verify or telemetry is not None or profiling:
        # Verification re-runs the workload's reference algorithm
        # against the just-computed answer, tracing needs the live
        # telemetry object, and profiling a cache replay would time
        # disk I/O — all three require a live run.
        result = repro.simulate(args.design, args.workload, cfg,
                                verify=args.verify, telemetry=telemetry)
    else:
        result = cached_simulate(args.design, args.workload, cfg,
                                 cache=_cache_from_args(args))
    if profiling:
        import pstats

        prof.disable()
        pstats.Stats(prof).sort_stats("cumulative").print_stats(25)
        if args.profile_out:
            prof.dump_stats(args.profile_out)
            print(f"wrote {args.profile_out} "
                  f"(inspect with `python -m pstats {args.profile_out}` "
                  f"or snakeviz)")
    print(result.summary())
    if args.verify:
        print("answer verified against the reference implementation")
    if telemetry is not None:
        from repro.insight.trace import mint_trace_id

        _write_trace(telemetry, getattr(args, "trace_out", None),
                     trace_id=mint_trace_id())
    _export(args, [result])
    return 0


def cmd_trace(args) -> int:
    from repro.telemetry import Telemetry

    cfg = _config_from_args(args)
    telemetry = Telemetry(sample_interval=args.sample_interval)
    result = repro.simulate(args.design, args.workload, cfg,
                            telemetry=telemetry)
    print(result.summary())
    from repro.insight.trace import mint_trace_id

    _write_trace(telemetry, args.out, getattr(args, "jsonl", None),
                 trace_id=mint_trace_id())
    return 0


def cmd_compare(args) -> int:
    cfg = _config_from_args(args)
    workload = repro.make_workload(args.workload)
    results = repro.compare_designs(
        repro.ALL_DESIGNS, workload, cfg, cache=_cache_from_args(args)
    )
    _print_comparison(results)
    base = results["B"]
    print()
    print(bar_chart(
        f"speedup over B ({args.workload})",
        {d: r.speedup_over(base) for d, r in results.items()},
        baseline="B",
    ))
    _export(args, list(results.values()))
    return 0


def cmd_matrix(args) -> int:
    cfg = _config_from_args(args)
    log = _log_from_args(args)
    if getattr(args, "server", None):
        report = _run_grid_via_server(
            args, list(repro.ALL_DESIGNS), list(repro.ALL_WORKLOADS), log)
    else:
        report = run_matrix(
            config=cfg, cache=_cache_from_args(args), jobs=args.jobs,
            events=_events_from_args(args, log),
        )
    if report.failures:
        for o in report.failures:
            log.error(f"FAILED {o.point.label}: "
                      f"{o.error.strip().splitlines()[-1]}")
        return 1
    grid = report.results()
    all_results: List[RunResult] = []
    speedups: Dict[str, List[float]] = {d: [] for d in repro.ALL_DESIGNS}
    for name in repro.ALL_WORKLOADS:
        row = grid[name]
        base = row["B"]
        line = f"{name:8}"
        for d in repro.ALL_DESIGNS:
            s = row[d].speedup_over(base)
            speedups[d].append(s)
            line += f" {d}:{s:5.2f}"
        print(line, flush=True)
        all_results.extend(row[d] for d in repro.ALL_DESIGNS)
    print("geomean " + " ".join(
        f"{d}:{geomean(speedups[d]):5.2f}" for d in repro.ALL_DESIGNS
    ))
    print(report.summary())
    _export(args, all_results)
    return 0


_SWEEPS = {
    "alpha": ("hybrid_alpha", [0.0, 1.0, 2.0, 3.0, 4.0, 6.0]),
    "interval": ("exchange_interval_cycles", [62, 125, 250, 500, 1000, 2000]),
    "camps": ("num_camps", [1, 3, 7, 15]),
    "bypass": ("bypass_probability", [0.0, 0.2, 0.4, 0.6, 0.8]),
}


def _geomean_table(grid, designs, workloads) -> Dict[str, Dict[str, float]]:
    """Geomean speedup/energy/hops ratios over B, per design.

    Workloads whose baseline makes no inter-stack accesses (a hop
    ratio of zero would zero the whole product) are excluded from the
    hops geomean, matching the paper's Figure 8 treatment.
    """
    out = {"speedup": {}, "energy": {}, "hops": {}}
    for d in designs:
        if d == "B":
            continue
        rows = [(grid[w][d], grid[w]["B"]) for w in workloads]
        out["speedup"][d] = geomean([r.speedup_over(b) for r, b in rows])
        out["energy"][d] = geomean([r.energy_ratio_over(b) for r, b in rows])
        hop_rows = [
            r.hops_ratio_over(b) for r, b in rows
            if b.inter_hops and r.inter_hops
        ]
        out["hops"][d] = geomean(hop_rows) if hop_rows else 0.0
    return out


def cmd_sweep_matrix(args) -> int:
    """``python -m repro sweep`` with no parameter: the full design x
    workload matrix, parallel and cached, with machine-readable output."""
    cfg = _config_from_args(args)
    log = _log_from_args(args)
    designs = (args.designs.split(",") if args.designs
               else list(repro.ALL_DESIGNS))
    workloads = (args.workloads.split(",") if args.workloads
                 else list(repro.ALL_WORKLOADS))
    if getattr(args, "server", None):
        report = _run_grid_via_server(args, designs, workloads, log)
    else:
        report = run_matrix(
            designs=designs, workloads=workloads, config=cfg,
            cache=_cache_from_args(args), jobs=args.jobs,
            events=_events_from_args(args, log),
        )
    grid = report.results()
    complete = [w for w in workloads
                if "B" in grid.get(w, {})
                and all(d in grid[w] for d in designs)]

    for metric, fn in (
        ("speedup", lambda r, b: r.speedup_over(b)),
        ("energy", lambda r, b: r.energy_ratio_over(b)),
        ("hops", lambda r, b: r.hops_ratio_over(b)),
    ):
        print(f"\n{metric} over B:")
        print(f"{'workload':9}" + "".join(f"{d:>7}" for d in designs))
        for w in complete:
            base = grid[w]["B"]
            print(f"{w:9}" + "".join(
                f"{fn(grid[w][d], base):7.2f}" for d in designs
            ))
    if complete:
        gm = _geomean_table(grid, designs, complete)
        print("\ngeomean over B:")
        for metric in ("speedup", "energy", "hops"):
            print(f"  {metric:8}" + " ".join(
                f"{d}:{v:5.2f}" for d, v in gm[metric].items()
            ))
    else:
        gm = {"speedup": {}, "energy": {}, "hops": {}}
    print()
    print(report.summary())
    for o in report.failures:
        log.error(f"FAILED {o.point.label}: "
                  f"{o.error.strip().splitlines()[-1]}")

    payload = {
        "meta": {
            "simulator_version": SIMULATOR_VERSION,
            "designs": designs,
            "workloads": workloads,
            "elapsed_s": report.elapsed_s,
            "cache": dataclasses.asdict(report.cache.stats)
            if report.cache else None,
        },
        "points": [
            dict(export.result_row(o.result),
                 source=o.source, key=o.key, elapsed_s=o.elapsed_s)
            for o in report.outcomes if o.ok
        ],
        "failures": [
            {"label": o.point.label, "error": o.error}
            for o in report.failures
        ],
        "geomean_over_B": gm,
    }
    with open(args.output, "w") as fh:
        _json.dump(payload, fh, indent=2)
    print(f"wrote {args.output}")
    _export(args, [o.result for o in report.outcomes if o.ok])
    return 1 if report.failures else 0


def cmd_faults(args) -> int:
    """``python -m repro faults O pr --units 4 --links 2``: a resilience
    campaign — one healthy reference plus one faulted run per schedule,
    all through the sweep engine."""
    from repro.arch.topology import Topology
    from repro.faults import (FaultSchedule, make_random_schedule,
                              run_fault_campaign)

    cfg = _config_from_args(args)
    schedules: Dict[str, FaultSchedule] = {}
    for path in args.schedule or []:
        schedules[path] = FaultSchedule.load(path)
    if args.units or args.links or args.vaults:
        topo = Topology(cfg.topology, num_groups=cfg.cache.num_groups())
        seed = args.seed if args.seed is not None else cfg.seed
        label = (f"seed{seed}:u{args.units}"
                 f"+l{args.links}+v{args.vaults}")
        schedules[label] = make_random_schedule(
            topo.num_units, topo.mesh_links(),
            unit_fails=args.units, link_fails=args.links,
            vault_slowdowns=args.vaults, seed=seed,
        )
    if not schedules:
        print("error: give --schedule FILE and/or --units/--links/--vaults",
              file=sys.stderr)
        return 2

    if args.dump_schedule:
        next(iter(schedules.values())).dump(args.dump_schedule)
        print(f"wrote {args.dump_schedule}")

    log = _log_from_args(args)
    campaign = run_fault_campaign(
        args.design, args.workload, schedules, config=cfg,
        cache=_cache_from_args(args), jobs=args.jobs,
        events=_events_from_args(args, log),
    )

    header = (f"{'schedule':24} {'makespan':>14} {'slowdn':>7} {'lost':>5} "
              f"{'reexec':>7} {'unreach':>8} {'recov_cyc':>10}")
    print(header)
    print("-" * len(header))
    print(f"{'healthy':24} {campaign.healthy.makespan_cycles:14,.0f} "
          f"{1.0:7.2f} {0:5} {'-':>7} {'-':>8} {'-':>10}")
    lost_any = False
    for label, r in campaign.faulted.items():
        lost = campaign.lost_tasks(label)
        lost_any = lost_any or lost != 0
        res = r.resilience
        print(f"{label[:24]:24} {r.makespan_cycles:14,.0f} "
              f"{campaign.slowdown(label):7.2f} {lost:5} "
              f"{res.tasks_reexecuted:7} {res.unreachable_accesses:8} "
              f"{res.recovery_cycles:10,.0f}")
    for label in campaign.failures:
        print(f"FAILED {label}", file=sys.stderr)
    if lost_any:
        print("error: tasks were lost under faults", file=sys.stderr)
    else:
        print(f"\nzero lost tasks across {len(campaign.faulted)} "
              f"faulted run(s)")
    _export(args, [campaign.healthy, *campaign.faulted.values()])
    return 1 if (lost_any or campaign.failures) else 0


def _campaign_events(args, log, campaign, out_dir):
    """Event consumers for a campaign run: the usual progress flags
    plus the campaign file's own ``telemetry.progress_jsonl``."""
    from pathlib import Path

    from repro.observatory.progress import JsonlProgress, tee

    consumers = []
    base = _events_from_args(args, log)
    if base is not None:
        consumers.append(base)
    telemetry = campaign.doc.get("telemetry") or {}
    jsonl = telemetry.get("progress_jsonl")
    if jsonl and not getattr(args, "progress_jsonl", None):
        path = Path(jsonl)
        if not path.is_absolute():
            path = Path(out_dir) / path
        path.parent.mkdir(parents=True, exist_ok=True)
        consumers.append(JsonlProgress(str(path)))
    return tee(*consumers) if consumers else None


def _campaign_out_dir(args, campaign):
    artifacts = campaign.doc.get("artifacts") or {}
    return (getattr(args, "out", None) or artifacts.get("dir")
            or f"campaign_out/{campaign.name}")


def cmd_campaign(args) -> int:
    """``python -m repro campaign run|validate|expand|report``: the
    declarative front door (docs/campaigns.md).  ``validate`` and
    ``expand`` keep stdout machine-parseable with ``--json``; status
    goes to the stderr logger."""
    from repro.campaign import load_campaign, parse_set_args

    log = _log_from_args(args)
    sets = parse_set_args(getattr(args, "set", None))

    if args.action == "validate":
        rows, ok = [], True
        for path in args.file:
            row = {"file": str(path), "ok": True, "error": ""}
            try:
                campaign = load_campaign(path)
                expansion = campaign.expand(sets=sets)
                row.update(name=campaign.name,
                           points=len(expansion.points),
                           fingerprint=expansion.fingerprint,
                           duplicates_dropped=
                           expansion.duplicates_dropped)
                log.detail(f"{path}: {len(expansion.points)} point(s), "
                           f"fingerprint {expansion.fingerprint}")
            except ValueError as exc:
                ok = False
                row.update(ok=False, error=str(exc))
                log.error(f"invalid campaign {path}: {exc}")
            rows.append(row)
        if args.json_out:
            print(_json.dumps({"ok": ok, "campaigns": rows}, indent=2,
                              sort_keys=True))
        else:
            for row in rows:
                status = "ok " if row["ok"] else "BAD"
                detail = (f"{row.get('name')}: {row.get('points')} "
                          f"point(s) [{row.get('fingerprint')}]"
                          if row["ok"] else row["error"])
                print(f"{status} {row['file']} — {detail}")
        return 0 if ok else 2

    if args.action == "expand":
        campaign = load_campaign(args.file)
        expansion = campaign.expand(sets=sets)
        log.detail(f"{campaign.name}: {len(expansion.points)} point(s), "
                   f"{expansion.duplicates_dropped} duplicate(s) "
                   f"dropped")
        points = [{"label": p.label, "key": p.spec.run_key(),
                   "spec": p.spec.to_dict()}
                  for p in expansion.points]
        if args.json_out:
            print(_json.dumps({
                "name": campaign.name,
                "fingerprint": expansion.fingerprint,
                "duplicates_dropped": expansion.duplicates_dropped,
                "points": points,
            }, indent=2, sort_keys=True))
        else:
            for point in points:
                print(f"{point['key'][:12]}  {point['label']}")
            print(f"{len(points)} point(s), fingerprint "
                  f"{expansion.fingerprint}")
        return 0

    if args.action == "report":
        from repro.campaign import CampaignReport
        from pathlib import Path

        path = Path(args.path)
        if path.is_dir():
            path = path / "report.json"
        payload = CampaignReport.load(path)
        if args.json_out:
            print(_json.dumps(payload, indent=2, sort_keys=True))
            return 0
        print(f"campaign {payload.get('name')!r} "
              f"[{payload.get('fingerprint')}] — spec "
              f"{payload.get('spec_path') or '<inline>'} "
              f"(sha256 {str(payload.get('spec_sha256'))[:12]})")
        for point in payload.get("points", []):
            key = (point.get("key") or "")[:12]
            metrics = point.get("metrics") or {}
            makespan = metrics.get("makespan_cycles")
            tail = (f"makespan={makespan:,.0f}"
                    if isinstance(makespan, (int, float))
                    else f"error: {point.get('error')}")
            print(f"  {key:12}  {point.get('source', ''):6} "
                  f"{point.get('label', ''):28} {tail}")
        return 0

    # action == "run"
    campaign = load_campaign(args.file)
    expansion = campaign.expand(sets=sets)
    out_dir = _campaign_out_dir(args, campaign)
    log.info(f"campaign {campaign.name!r}: {len(expansion.points)} "
             f"point(s), fingerprint {expansion.fingerprint}")
    if expansion.duplicates_dropped:
        log.detail(f"{expansion.duplicates_dropped} duplicate "
                   f"point(s) dropped during expansion")
    events = _campaign_events(args, log, campaign, out_dir)
    from repro.insight.trace import mint_trace_id

    trace_id = mint_trace_id()
    log.detail(f"trace id {trace_id}")
    if getattr(args, "server", None):
        from repro.campaign import run_campaign_via_server
        from repro.service.client import ServiceClient

        client = ServiceClient(args.server)
        log.detail(f"submitting campaign to {client.base_url}")
        report = run_campaign_via_server(client, campaign, sets=sets,
                                         events=events,
                                         trace_id=trace_id)
    else:
        from repro.campaign import run_campaign

        report = run_campaign(campaign, expansion,
                              cache=_cache_from_args(args),
                              jobs=args.jobs, events=events,
                              trace_id=trace_id)
    for o in report.failures:
        log.error(f"FAILED {o.point.label}: "
                  f"{(o.error or 'unknown').strip().splitlines()[-1]}")
    report_path = report.write(out_dir,
                               artifacts=campaign.doc.get("artifacts"))
    print(report.summary())
    print(f"wrote {report_path}")
    _export(args, [o.result for o in report.outcomes if o.ok])
    return 1 if report.failures else 0


def cmd_report(args) -> int:
    """``python -m repro report ARTIFACT``: DAMOV-style bottleneck
    classification over a campaign report.json, a ``repro sweep``
    export, or a history-ledger slice (docs/insight.md).  Points whose
    run keys still resolve in the result cache are refined with the
    full per-unit cycle vector and the telemetry sidecar."""
    from pathlib import Path

    from repro.insight import build_report
    from repro.sweep.cache import resolve_cache

    source = Path(args.input)
    if source.is_dir():
        source = source / "report.json"
    cache = resolve_cache(_cache_from_args(args))
    report = build_report(source, cache=cache, last=args.last)
    if not report.points:
        print(f"error: no classifiable points in {source} (every point "
              f"failed, or the artifact holds no metric rows)",
              file=sys.stderr)
        return 2
    if args.out:
        for path in report.write(args.out, formats=args.format,
                                 with_heatmap=args.heatmap):
            print(f"wrote {path}")
    elif args.format == "json":
        print(report.to_json(), end="")
    else:
        print(report.to_markdown())
        if args.heatmap:
            print(report.heatmap())
    if args.trace_out:
        from repro.insight.trace import write_campaign_trace

        try:
            payload = _json.loads(source.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise ValueError(
                f"--trace-out needs a readable campaign report: {exc}")
        if not isinstance(payload, dict) or "points" not in payload:
            raise ValueError(
                "--trace-out needs a campaign report.json input (the "
                "correlated timeline is built from its per-point "
                "record)")
        out = write_campaign_trace(payload, args.trace_out,
                                   extra_trace_paths=args.merge_trace
                                   or ())
        print(f"wrote {out} (open at chrome://tracing or "
              f"https://ui.perfetto.dev)")
    return 0


def cmd_bench(args) -> int:
    """``python -m repro bench``: time the simulator itself (see
    docs/performance.md) and record a ``BENCH_<n>.json`` at the repo
    root; ``--smoke`` instead cross-checks the three access engines on
    one small point (CI's perf gate)."""
    from pathlib import Path

    from repro.bench import (
        bench_mesh_point,
        bench_points,
        bench_warm_sweep,
        next_bench_path,
        write_bench,
    )

    if args.smoke:
        return _bench_smoke()
    log = _log_from_args(args)
    designs = (args.designs.split(",") if args.designs
               else list(repro.ALL_DESIGNS))
    workloads = args.workloads.split(",") if args.workloads else ["pr"]
    payload = bench_points(
        args.engine, designs, workloads, config=_config_from_args(args),
        repeats=args.repeats, progress=log.info,
    )
    if args.warm:
        # warm-runtime trajectory + the first large-mesh point
        # (docs/performance.md): cold fork-per-point vs a warm
        # WorkerRuntime filling then steady, plus one live 8x8 run.
        payload["warm_runtime"] = bench_warm_sweep(
            args.engine, config=_config_from_args(args),
            progress=log.info)
        payload["mesh_scaling"] = bench_mesh_point(
            args.engine, mesh="8x8", progress=log.info)
        if not payload["warm_runtime"]["identical"]:
            print("error: warm-runtime passes were not bit-identical "
                  "to the cold sweep — refusing to record", file=sys.stderr)
            return 1
    if args.output:
        out = Path(args.output)
    else:
        out = next_bench_path(Path(args.out) if args.out else Path.cwd())
    write_bench(payload, out)
    from repro.observatory.history import record_bench

    record_bench(payload, out)
    t = payload["totals"]
    print(f"wrote {out} (engine={args.engine}, total {t['wall_s']:.2f}s, "
          f"{t['tasks_per_s']:,.0f} tasks/s, "
          f"{t['accesses_per_s']:,.0f} accesses/s)")
    return 0


def _bench_smoke() -> int:
    """One small point (O/pr on a 2x2 mesh) under all three engines.

    Scalar and batched must match bit-for-bit; vector must land inside
    its statistical-equivalence bands (docs/engines.md); and each tier
    must not be slower than the one before it (scalar >= batched >=
    vector wall time).
    """
    import time

    from repro.bench import engine_config
    from repro.core.vector_engine import ENERGY_BAND, MAKESPAN_BAND
    from repro.simulate import simulate
    from repro.sweep.serialize import result_to_dict
    from repro.workloads.base import make_workload

    base = experiment_config().scaled(2, 2)
    workload = make_workload("pr")
    best: Dict[str, float] = {}
    payload: Dict[str, str] = {}
    results: Dict[str, object] = {}
    for engine in ("scalar", "batched", "vector"):
        cfg = engine_config(engine, base)
        simulate("O", workload, config=cfg)  # warmup
        best[engine] = float("inf")
        for _ in range(3):
            t0 = time.process_time()
            result = simulate("O", workload, config=cfg)
            best[engine] = min(best[engine], time.process_time() - t0)
        payload[engine] = _json.dumps(result_to_dict(result),
                                      sort_keys=True)
        results[engine] = result
    identical = payload["scalar"] == payload["batched"]
    mk_ratio = (results["vector"].makespan_cycles
                / results["batched"].makespan_cycles)
    en_ratio = (results["vector"].energy.total_pj
                / results["batched"].energy.total_pj)
    ratio = best["scalar"] / best["batched"]
    vratio = best["batched"] / best["vector"]
    print(f"bench smoke O/pr mesh=2x2: scalar={best['scalar']:.2f}s "
          f"batched={best['batched']:.2f}s ({ratio:.2f}x) "
          f"vector={best['vector']:.2f}s ({vratio:.2f}x) "
          f"scalar/batched {'identical' if identical else 'DIFFER'}, "
          f"vector mk x{mk_ratio:.4f} energy x{en_ratio:.4f}")
    if not identical:
        print("error: exact engines disagree on the same seeded point",
              file=sys.stderr)
        return 1
    if abs(mk_ratio - 1.0) > MAKESPAN_BAND:
        print(f"error: vector makespan ratio {mk_ratio:.4f} outside "
              f"the +/-{MAKESPAN_BAND:.0%} band", file=sys.stderr)
        return 1
    if abs(en_ratio - 1.0) > ENERGY_BAND:
        print(f"error: vector energy ratio {en_ratio:.4f} outside "
              f"the +/-{ENERGY_BAND:.0%} band", file=sys.stderr)
        return 1
    if best["batched"] > best["scalar"]:
        print("error: batched engine slower than scalar on the smoke "
              "point", file=sys.stderr)
        return 1
    if best["vector"] > best["batched"]:
        print("error: vector engine slower than batched on the smoke "
              "point", file=sys.stderr)
        return 1
    return _bench_smoke_warm_race(base)


def _bench_smoke_warm_race(base) -> int:
    """Race the legacy cold sweep path against the warm runtime on one
    uncached point (best of two passes each; the warm second pass runs
    memo-hot).  Fails on a result mismatch — the warm runtime's hard
    bit-identity contract — or on the warm path losing the race."""
    import time

    from repro.bench import engine_config
    from repro.sweep.runner import SweepPoint, SweepRunner
    from repro.sweep.runtime import WorkerRuntime
    from repro.sweep.serialize import result_to_dict

    cfg = engine_config("batched", base)
    points = [SweepPoint(design="O", workload="pr", config=cfg,
                         label="O/pr")]

    def best_of(runtime, passes: int = 2):
        best, blob = float("inf"), None
        for _ in range(passes):
            t0 = time.perf_counter()
            report = SweepRunner(cache=False, jobs=1,
                                 runtime=runtime).run(points)
            dt = time.perf_counter() - t0
            if report.failures:
                raise RuntimeError(report.failures[0].error)
            best = min(best, dt)
            blob = _json.dumps(result_to_dict(report.outcomes[0].result),
                               sort_keys=True)
        return best, blob

    cold_s, cold_blob = best_of(False)
    with WorkerRuntime(jobs=1) as rt:
        warm_s, warm_blob = best_of(rt)
    identical = warm_blob == cold_blob
    print(f"bench smoke warm race O/pr: cold={cold_s:.2f}s "
          f"warm={warm_s:.2f}s "
          f"({'identical' if identical else 'DIFFER'})")
    if not identical:
        print("error: warm runtime result differs from the cold path",
              file=sys.stderr)
        return 1
    if warm_s > cold_s:
        print("error: warm runtime slower than the cold path on the "
              "smoke point", file=sys.stderr)
        return 1
    return 0


def cmd_diff(args) -> int:
    """``python -m repro diff A B``: structured run-to-run comparison.

    A and B are history indices (``-1`` = newest run), run-key
    prefixes, or paths to cached run JSON; see docs/observability.md.
    """
    from repro.observatory.diffing import diff_refs

    if getattr(args, "server", None):
        from repro.service.client import (RemoteCache, RemoteLedger,
                                          ServiceClient)

        client = ServiceClient(args.server)
        diff = diff_refs(args.a, args.b, ledger=RemoteLedger(client),
                         cache=RemoteCache(client),
                         threshold=args.threshold / 100.0)
    else:
        diff = diff_refs(args.a, args.b, cache=_cache_from_args(args),
                         threshold=args.threshold / 100.0)
    if args.json_out:
        print(_json.dumps(diff.to_dict(), indent=2, sort_keys=True))
    else:
        print(diff.render(verbose=getattr(args, "verbose", 0) >= 1))
    if args.fail_on_delta and not diff.identical:
        return 1
    return 0


def cmd_regress(args) -> int:
    """``python -m repro regress``: perf-regression detection.

    Default mode scans the ``BENCH_*.json`` trajectory under ``--dir``
    (tolerance bands + change-point scan, compatible records only);
    ``--against BASELINE`` instead band-checks one candidate record
    against a chosen baseline; ``--history`` adds a wall-time scan of
    the run-history ledger.  ``--fail-on-regression`` makes the exit
    code a CI gate.
    """
    from pathlib import Path

    from repro.observatory import regression as reg

    log = _log_from_args(args)
    tol = args.tolerance / 100.0
    reports = []
    if args.against:
        try:
            baseline = _json.loads(Path(args.against).read_text())
        except (OSError, ValueError) as exc:
            raise ValueError(f"cannot read baseline {args.against}: {exc}")
        if args.candidate:
            try:
                candidate = _json.loads(Path(args.candidate).read_text())
            except (OSError, ValueError) as exc:
                raise ValueError(
                    f"cannot read candidate {args.candidate}: {exc}")
            cand_name = args.candidate
        else:
            records = reg.load_bench_dir(Path(args.dir))
            if not records:
                raise ValueError(
                    f"no BENCH_*.json under {args.dir!r} to use as the "
                    f"candidate — run `python -m repro bench` first or "
                    f"pass --candidate PATH"
                )
            cand_name, candidate = records[-1]
        log.detail(f"comparing {cand_name} against {args.against} "
                   f"(band ±{tol:.0%})")
        reports.append(reg.compare_bench(
            baseline, candidate, tolerance=tol,
            baseline_name=args.against, candidate_name=cand_name,
        ))
    else:
        records = reg.load_bench_dir(Path(args.dir))
        if not records and not (args.history or
                                getattr(args, "server", None)):
            raise ValueError(
                f"no BENCH_*.json records under {args.dir!r} — run "
                f"`python -m repro bench` first (or pass --history to "
                f"scan the run ledger)"
            )
        reports.append(reg.scan_bench_trajectory(records, tolerance=tol))
    if args.history or getattr(args, "server", None):
        # --server reads the *server's* ledger (its clients' runs);
        # it implies the history scan.
        ledger = None
        if getattr(args, "server", None):
            from repro.service.client import RemoteLedger, ServiceClient

            ledger = RemoteLedger(ServiceClient(args.server))
        reports.append(reg.scan_history(ledger=ledger, tolerance=tol))
    report = reg.merge_reports(*reports)
    if args.json_out:
        print(_json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    if args.fail_on_regression and not report.ok:
        return 1
    return 0


def cmd_serve(args) -> int:
    """``python -m repro serve``: the sweep-as-a-service server.

    Clients (``--server URL`` on grid/diff/regress commands, or plain
    HTTP) share this process's result cache and history ledger;
    identical submissions dedupe by run key.  See docs/service.md.
    """
    import asyncio
    import os

    from repro.service.server import ExperimentServer

    if args.cache_dir:
        # env (not a constructor arg) so pool workers inherit it and
        # self-record history into the same root.
        os.environ["REPRO_CACHE_DIR"] = args.cache_dir
    server = ExperimentServer(host=args.host, port=args.port,
                              workers=args.workers)

    class _Announce:
        def set(self) -> None:
            mode = ("in-process threads" if args.workers == 0
                    else f"{server.pool_width()} worker process(es)")
            print(f"experiment server on http://{server.host}:"
                  f"{server.port} ({mode}, cache root "
                  f"{server.cache.root}) — Ctrl-C to stop", flush=True)

    try:
        asyncio.run(server.serve(ready=_Announce()))
    except KeyboardInterrupt:
        print("\nstopped")
    return 0


def cmd_compact(args) -> int:
    """``python -m repro compact``: bound the history ledger and sweep
    orphaned cache temp files (storage maintenance; see
    docs/service.md)."""
    from repro.observatory.history import default_ledger
    from repro.sweep.cache import default_cache

    stats = default_ledger().compact(max_bytes=args.max_bytes)
    print(f"history: {stats.summary()}")
    pruned = default_cache().prune_tmp()
    print(f"cache: {pruned} orphaned temp file(s) pruned")
    return 1 if stats.failed else 0


def cmd_sweep(args) -> int:
    if args.parameter is None:
        return cmd_sweep_matrix(args)
    field, values = _SWEEPS[args.parameter]
    workload = repro.make_workload(args.workload)
    cache = _cache_from_args(args)
    results = []
    for v in values:
        cfg = experiment_config()
        if args.parameter in ("alpha", "interval"):
            cfg = cfg.with_(scheduler=dataclasses.replace(
                cfg.scheduler, **{field: v}))
        else:
            cfg = cfg.with_(cache=dataclasses.replace(
                cfg.cache, **{field: v}))
        r = cached_simulate(args.design, workload, cfg.validate(),
                            cache=cache)
        results.append(r)
        print(f"{args.parameter}={v:<8} makespan={r.makespan_cycles:12,.0f} "
              f"hops={r.inter_hops:10,} hit={r.cache.hit_rate:.0%}",
              flush=True)
    _export(args, results)
    return 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ABNDP (ASPLOS'23) reproduction - NDP simulator CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_config(p):
        p.add_argument("--mesh", help="stack mesh, e.g. 2x2 / 4x4 / 8x8")
        p.add_argument("--alpha", type=float, help="hybrid weight alpha")
        p.add_argument("--interval", type=int,
                       help="workload exchange interval (cycles)")
        p.add_argument("--camps", type=int, help="camp locations C")
        p.add_argument("--bypass", type=float, help="bypass probability")

    def add_telemetry(p):
        p.add_argument("--trace-out", metavar="PATH",
                       help="write a Chrome trace_event JSON of the run "
                            "(forces a live, instrumented simulation)")
        p.add_argument("--sample-interval", type=int, default=None,
                       metavar="N",
                       help="timestamps between telemetry time-series "
                            "samples (implies instrumentation)")

    def add_verbosity(p):
        p.add_argument("-q", "--quiet", action="store_true",
                       help="suppress status/progress output (results "
                            "still print to stdout)")
        p.add_argument("-v", "--verbose", action="count", default=0,
                       help="more status detail (repeatable)")

    def add_progress(p):
        add_verbosity(p)
        p.add_argument("--no-progress", action="store_true",
                       help="plain per-point lines instead of the live "
                            "single-line TTY status")
        p.add_argument("--progress-jsonl", metavar="PATH", default=None,
                       help="append machine-readable per-point progress "
                            "events to PATH (one JSON object per line)")

    def add_server(p):
        p.add_argument("--server", metavar="URL", default=None,
                       help="run through a shared `repro serve` "
                            "instance instead of this machine "
                            "(submissions dedupe by run key)")

    def add_common(p, workload=True, design=False):
        add_config(p)
        p.add_argument("--csv", help="export results to a CSV file")
        p.add_argument("--json", help="export results to a JSON file")
        p.add_argument("--no-cache", action="store_true",
                       help="bypass the on-disk result cache")
        p.add_argument("-j", "--jobs", type=int, default=None,
                       help="worker processes for grid runs "
                            "(default: all cores)")
        if workload:
            p.add_argument("-w", "--workload", default="pr",
                           choices=sorted(repro.WORKLOAD_FACTORIES))
        if design:
            p.add_argument("-d", "--design", default="O",
                           choices=list(repro.ALL_DESIGNS))

    p_describe = sub.add_parser("describe", help="print the configuration")
    add_common(p_describe, workload=False)
    add_telemetry(p_describe)
    p_describe.add_argument(
        "--run", metavar="REF", default=None,
        help="describe one recorded run instead (history index, "
             "run-key prefix, or run JSON path): identity line plus "
             "its bottleneck class when a telemetry sidecar exists")
    sub.add_parser("designs", help="print the Table 2 design matrix")

    p_run = sub.add_parser("run", help="simulate one design/workload")
    add_common(p_run, design=True)
    add_telemetry(p_run)
    p_run.add_argument("--engine", default=None,
                       choices=["scalar", "batched", "vector"],
                       help="access engine tier (default: batched; "
                            "see docs/engines.md)")
    p_run.add_argument("--verify", action="store_true",
                       help="check the computed answer")
    p_run.add_argument("--profile", action="store_true",
                       help="cProfile the simulation (live run) and "
                            "print the top 25 functions by cumulative "
                            "time")
    p_run.add_argument("--profile-out", metavar="PATH", default=None,
                       help="also dump the raw profile to PATH "
                            "(pstats format; implies --profile)")

    p_trace = sub.add_parser(
        "trace",
        help="instrumented run exporting a Chrome/Perfetto timeline",
    )
    p_trace.add_argument("design", choices=list(repro.ALL_DESIGNS))
    p_trace.add_argument("workload",
                         choices=sorted(repro.WORKLOAD_FACTORIES))
    p_trace.add_argument("--out", default="trace.json",
                         help="Chrome trace_event JSON output path "
                              "(default: trace.json)")
    p_trace.add_argument("--jsonl", metavar="PATH",
                         help="also write one-event-per-line JSONL")
    p_trace.add_argument("--sample-interval", type=int, default=1,
                         metavar="N",
                         help="timestamps between time-series samples")
    add_config(p_trace)

    add_common(sub.add_parser("compare",
                              help="all designs on one workload"))
    p_matrix = sub.add_parser("matrix", help="all designs x all workloads")
    add_common(p_matrix, workload=False)
    add_progress(p_matrix)
    add_server(p_matrix)

    p_faults = sub.add_parser(
        "faults",
        help="resilience campaign: healthy reference vs runs under "
             "injected unit/link/vault faults",
    )
    p_faults.add_argument("design", choices=list(repro.ALL_DESIGNS))
    p_faults.add_argument("workload",
                          choices=sorted(repro.WORKLOAD_FACTORIES))
    p_faults.add_argument("--schedule", action="append", metavar="FILE",
                          help="fault schedule JSON (repeatable; see "
                               "FaultSchedule.dump)")
    p_faults.add_argument("--units", type=int, default=0,
                          help="random permanent NDP-unit failures")
    p_faults.add_argument("--links", type=int, default=0,
                          help="random permanent NoC link failures")
    p_faults.add_argument("--vaults", type=int, default=0,
                          help="random DRAM-vault latency slowdowns")
    p_faults.add_argument("--seed", type=int, default=None,
                          help="fault-stream seed (default: config seed)")
    p_faults.add_argument("--dump-schedule", metavar="PATH",
                          help="write the generated schedule to a JSON file")
    add_common(p_faults, workload=False)
    add_progress(p_faults)

    p_bench = sub.add_parser(
        "bench",
        help="benchmark the simulator itself and record BENCH_<n>.json "
             "(--smoke: cross-engine CI gate on one small point)",
    )
    p_bench.add_argument("--engine",
                         choices=["scalar", "batched", "vector"],
                         default="batched",
                         help="access engine to time (default: batched)")
    p_bench.add_argument("--designs",
                         help="comma-separated design subset "
                              "(default: all six)")
    p_bench.add_argument("--workloads",
                         help="comma-separated workload subset "
                              "(default: pr)")
    p_bench.add_argument("--repeats", type=int, default=2,
                         help="timed repetitions per point; the best "
                              "is kept (default: 2)")
    p_bench.add_argument("--output", metavar="PATH", default=None,
                         help="record path (default: next free "
                              "BENCH_<n>.json under --out)")
    p_bench.add_argument("--out", metavar="DIR", default=None,
                         help="directory for the auto-numbered "
                              "BENCH_<n>.json (default: current "
                              "directory; created on demand)")
    p_bench.add_argument("--smoke", action="store_true",
                         help="run one small point under all three "
                              "engines; fail on a scalar/batched result "
                              "mismatch, an out-of-band vector result, "
                              "an engine-tier slowdown, or a warm-"
                              "runtime mismatch/slowdown")
    p_bench.add_argument("--warm", action="store_true",
                         help="additionally record the warm-runtime "
                              "trajectory (cold fork vs WorkerRuntime "
                              "filling/steady) and one 8x8 mesh point")
    add_config(p_bench)
    add_verbosity(p_bench)

    p_sweep = sub.add_parser(
        "sweep",
        help="the full design x workload matrix (no argument; parallel, "
             "cached, emits sweep_results.json) or a Section 7.2 "
             "parameter sweep",
    )
    p_sweep.add_argument("parameter", nargs="?", default=None,
                         choices=sorted(_SWEEPS))
    p_sweep.add_argument("--designs",
                         help="comma-separated design subset (matrix mode)")
    p_sweep.add_argument("--workloads",
                         help="comma-separated workload subset (matrix mode)")
    p_sweep.add_argument("--output", default="sweep_results.json",
                         help="machine-readable matrix output path")
    add_common(p_sweep, design=True)
    add_progress(p_sweep)
    add_server(p_sweep)

    p_campaign = sub.add_parser(
        "campaign",
        help="declarative campaigns: run/validate/expand committed "
             "campaigns/*.json specs (see docs/campaigns.md)",
    )
    csub = p_campaign.add_subparsers(dest="action", required=True)

    def add_sets(p):
        p.add_argument("--set", action="append", metavar="PATH=VALUE",
                       default=None,
                       help="override a campaign or point value "
                            "(repeatable; JSON-parsed, applied last; "
                            "also binds $RUNTIME_VALUE placeholders)")

    pc_run = csub.add_parser(
        "run", help="expand a campaign and run every point (local "
                    "sweep engine, or --server URL)")
    pc_run.add_argument("file", help="campaign JSON file")
    add_sets(pc_run)
    pc_run.add_argument("--out", metavar="DIR", default=None,
                        help="artifact directory for report.json "
                             "(default: the campaign's artifacts.dir, "
                             "else campaign_out/<name>)")
    pc_run.add_argument("--csv", help="export results to a CSV file")
    pc_run.add_argument("--json", help="export results to a JSON file")
    pc_run.add_argument("--no-cache", action="store_true",
                        help="bypass the on-disk result cache")
    pc_run.add_argument("-j", "--jobs", type=int, default=None,
                        help="worker processes (default: all cores)")
    add_progress(pc_run)
    add_server(pc_run)

    pc_validate = csub.add_parser(
        "validate", help="load and expand campaign files, reporting "
                         "errors without running anything")
    pc_validate.add_argument("file", nargs="+",
                             help="campaign JSON file(s)")
    add_sets(pc_validate)
    pc_validate.add_argument("--json", dest="json_out",
                             action="store_true",
                             help="machine-readable verdicts on stdout")
    add_verbosity(pc_validate)

    pc_expand = csub.add_parser(
        "expand", help="print the expanded point list (labels, run "
                       "keys, resolved specs) without running")
    pc_expand.add_argument("file", help="campaign JSON file")
    add_sets(pc_expand)
    pc_expand.add_argument("--json", dest="json_out",
                           action="store_true",
                           help="machine-readable expansion on stdout")
    add_verbosity(pc_expand)

    pc_report = csub.add_parser(
        "report", help="render an archived campaign report.json")
    pc_report.add_argument("path",
                           help="artifact directory or report.json path")
    pc_report.add_argument("--json", dest="json_out",
                           action="store_true",
                           help="dump the raw report payload")
    add_verbosity(pc_report)

    p_report = sub.add_parser(
        "report",
        help="bottleneck classification report (DAMOV-style) over a "
             "campaign report.json, sweep export, or history ledger "
             "(see docs/insight.md)",
    )
    p_report.add_argument(
        "input",
        help="campaign artifact dir or report.json, `repro sweep` "
             "output JSON, or a history .jsonl ledger")
    p_report.add_argument("--out", metavar="DIR", default=None,
                          help="write insight.json / insight.md under "
                               "DIR instead of printing to stdout")
    p_report.add_argument("--format", choices=["json", "md", "both"],
                          default="both",
                          help="renderings to emit (default: both; "
                               "stdout mode prints markdown unless "
                               "--format json)")
    p_report.add_argument("--heatmap", action="store_true",
                          help="also render the ASCII memory-intensity "
                               "heatmap")
    p_report.add_argument("--last", type=int, default=None, metavar="N",
                          help="only the newest N records of a ledger "
                               "or sweep input")
    p_report.add_argument("--trace-out", metavar="PATH", default=None,
                          help="merge the campaign's per-point record "
                               "into one correlated Chrome trace at "
                               "PATH (campaign report inputs only)")
    p_report.add_argument("--merge-trace", action="append",
                          metavar="PATH", default=None,
                          help="extra per-run Chrome trace fragments "
                               "to fold into --trace-out (repeatable)")
    p_report.add_argument("--no-cache", action="store_true",
                          help="classify from the artifact alone, "
                               "without result-cache refinement")
    add_verbosity(p_report)

    p_diff = sub.add_parser(
        "diff",
        help="compare two recorded runs (history indices like -1/-2, "
             "run-key prefixes, or cached-run JSON paths)",
    )
    p_diff.add_argument("a", help="baseline run reference")
    p_diff.add_argument("b", help="candidate run reference")
    p_diff.add_argument("--threshold", type=float, default=0.1,
                        metavar="PCT",
                        help="relative change (percent) below which a "
                             "delta is noise (default: 0.1)")
    p_diff.add_argument("--json", dest="json_out", action="store_true",
                        help="emit the structured diff as JSON")
    p_diff.add_argument("--fail-on-delta", action="store_true",
                        help="exit 1 when any semantic metric differs")
    p_diff.add_argument("--no-cache", action="store_true",
                        help="resolve references without the result cache")
    add_verbosity(p_diff)
    add_server(p_diff)

    p_regress = sub.add_parser(
        "regress",
        help="perf-regression scan over BENCH_*.json records "
             "(tolerance bands + change-point detection)",
    )
    p_regress.add_argument("--against", metavar="BASELINE",
                           help="band-check one candidate record against "
                                "this baseline BENCH_*.json instead of "
                                "scanning the whole trajectory")
    p_regress.add_argument("--candidate", metavar="PATH", default=None,
                           help="candidate record for --against "
                                "(default: the newest BENCH_<n>.json "
                                "under --dir)")
    p_regress.add_argument("--dir", default=".", metavar="DIR",
                           help="directory holding the BENCH_*.json "
                                "trajectory (default: current directory)")
    p_regress.add_argument("--tolerance", type=float, default=10.0,
                           metavar="PCT",
                           help="allowed regression band, percent "
                                "(default: 10)")
    p_regress.add_argument("--history", action="store_true",
                           help="also scan wall times in the run-history "
                                "ledger")
    p_regress.add_argument("--json", dest="json_out", action="store_true",
                           help="emit the report as JSON")
    p_regress.add_argument("--fail-on-regression", action="store_true",
                           help="exit 1 when any regression is flagged")
    add_verbosity(p_regress)
    add_server(p_regress)

    p_serve = sub.add_parser(
        "serve",
        help="sweep-as-a-service: HTTP server over the shared result "
             "cache (spec dedup by run key, process-pool fan-out, "
             "NDJSON progress streams)",
    )
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8642,
                         help="bind port; 0 picks an ephemeral one "
                              "(default: 8642)")
    p_serve.add_argument("--workers", type=int, default=None,
                         help="simulation worker processes (default: "
                              "all cores; 0 = in-process threads, for "
                              "tests)")
    p_serve.add_argument("--cache-dir", metavar="DIR", default=None,
                         help="result-cache root to serve "
                              "(default: .repro_cache, or "
                              "REPRO_CACHE_DIR)")

    p_compact = sub.add_parser(
        "compact",
        help="compact the history ledger (merge rotated generation, "
             "drop corrupt lines) and prune orphaned cache temp files",
    )
    p_compact.add_argument("--max-bytes", type=int, default=None,
                           help="byte budget for the compacted ledger "
                                "(default: the 8 MB rotation bound)")

    return parser


_COMMANDS = {
    "describe": cmd_describe,
    "designs": cmd_designs,
    "run": cmd_run,
    "trace": cmd_trace,
    "compare": cmd_compare,
    "matrix": cmd_matrix,
    "faults": cmd_faults,
    "bench": cmd_bench,
    "sweep": cmd_sweep,
    "campaign": cmd_campaign,
    "report": cmd_report,
    "diff": cmd_diff,
    "regress": cmd_regress,
    "serve": cmd_serve,
    "compact": cmd_compact,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (ValueError, MemoryError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
