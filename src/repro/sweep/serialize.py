"""Lossless RunResult <-> JSON round-trip for the result cache.

Unlike :mod:`repro.analysis.export` (which flattens results into
analysis-friendly rows), this module preserves *every* field of a
:class:`~repro.analysis.metrics.RunResult` exactly, so a cache hit is
indistinguishable from a live run.  Python's ``json`` serializes floats
with shortest-round-trip ``repr``, so the reconstruction is
bit-identical.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict

import numpy as np

from repro.analysis.metrics import RunResult
from repro.arch.dram import DramStats
from repro.arch.energy import EnergyBreakdown
from repro.arch.noc import TrafficMeter
from repro.arch.sram import SramStats
from repro.core.cache.traveller import CacheStatsTotal

#: RunResult component fields that are flat stats dataclasses.
_COMPONENTS = {
    "traffic": TrafficMeter,
    "dram": DramStats,
    "sram": SramStats,
    "cache": CacheStatsTotal,
    "energy": EnergyBreakdown,
}


def result_to_dict(result: RunResult) -> Dict[str, Any]:
    """Flatten one run into a JSON-able dict (exact, reversible)."""
    cycles = np.asarray(result.active_cycles_per_core)
    out: Dict[str, Any] = {
        "design": result.design,
        "workload": result.workload,
        "makespan_cycles": float(result.makespan_cycles),
        "active_cycles_per_core": {
            "dtype": cycles.dtype.str,
            "data": cycles.tolist(),
        },
        "tasks_executed": int(result.tasks_executed),
        "timestamps_executed": int(result.timestamps_executed),
        "steals": int(result.steals),
        "instructions": float(result.instructions),
        "extra": {str(k): float(v) for k, v in result.extra.items()},
    }
    for name in _COMPONENTS:
        out[name] = dataclasses.asdict(getattr(result, name))
    if result.resilience is not None:
        # Present only for faulted runs — fault-free cache entries must
        # stay byte-identical to those written before this field existed.
        out["resilience"] = result.resilience.to_dict()
    return out


def result_from_dict(data: Dict[str, Any]) -> RunResult:
    """Rebuild a :class:`RunResult` written by :func:`result_to_dict`.

    Raises ``KeyError``/``TypeError`` on malformed input; the cache
    treats those as a corrupt entry and falls back to a live run.
    """
    cycles = data["active_cycles_per_core"]
    components = {
        name: cls(**data[name]) for name, cls in _COMPONENTS.items()
    }
    resilience = None
    if data.get("resilience") is not None:
        from repro.faults.schedule import ResilienceStats

        resilience = ResilienceStats.from_dict(data["resilience"])
    return RunResult(
        design=data["design"],
        workload=data["workload"],
        makespan_cycles=data["makespan_cycles"],
        active_cycles_per_core=np.asarray(
            cycles["data"], dtype=np.dtype(cycles["dtype"])
        ),
        tasks_executed=data["tasks_executed"],
        timestamps_executed=data["timestamps_executed"],
        steals=data["steals"],
        instructions=data["instructions"],
        extra=dict(data.get("extra", {})),
        resilience=resilience,
        **components,
    )
