"""repro.sweep — parallel sweep engine with a content-addressed cache.

The subsystem behind ``python -m repro sweep`` and every batch runner
in the repo (``scripts/matrix.py``, ``benchmarks/common.py``):

* :mod:`repro.sweep.keys` — deterministic run keys (config + design +
  workload + simulator version salt);
* :mod:`repro.sweep.cache` — the on-disk JSON result store under
  ``.repro_cache/`` with hit/miss/invalidation accounting;
* :mod:`repro.sweep.serialize` — exact RunResult round-tripping;
* :mod:`repro.sweep.runner` — cached single-point runs and the
  multiprocessing grid runner with per-point failure capture;
* :mod:`repro.sweep.runtime` — the warm worker runtime: persistent
  pools, per-process memo caches, the shared-memory workload store
  and history-informed LPT point ordering.

See ``docs/experiments.md`` for the end-to-end workflow.

Backwards compatibility: before this package existed, ``repro.sweep``
was a *function* running one design across named configurations.  The
module object is callable and keeps that behaviour (now also available
as :func:`repro.simulate.sweep_configs`)::

    repro.sweep("B", workload, {"2x2": cfg_a, "4x4": cfg_b})
"""

from __future__ import annotations

import sys
import types

from repro.sweep.cache import (
    CacheStats,
    ResultCache,
    default_cache,
    resolve_cache,
)
from repro.sweep.keys import (
    SIMULATOR_VERSION,
    UncacheableError,
    canonicalize,
    run_key,
    stable_hash,
)
from repro.sweep.runner import (
    PointOutcome,
    SweepPoint,
    SweepReport,
    SweepRunner,
    cached_simulate,
    matrix_points,
    run_matrix,
    run_point,
)
from repro.sweep.runtime import (
    ProcessMemos,
    SharedWorkloadStore,
    WorkerRuntime,
    active_memos,
    lpt_order,
    process_memos,
    warm_memos,
)
from repro.sweep.serialize import result_from_dict, result_to_dict

__all__ = [
    "CacheStats",
    "ResultCache",
    "default_cache",
    "resolve_cache",
    "SIMULATOR_VERSION",
    "UncacheableError",
    "canonicalize",
    "run_key",
    "stable_hash",
    "PointOutcome",
    "SweepPoint",
    "SweepReport",
    "SweepRunner",
    "cached_simulate",
    "matrix_points",
    "run_matrix",
    "run_point",
    "ProcessMemos",
    "SharedWorkloadStore",
    "WorkerRuntime",
    "active_memos",
    "lpt_order",
    "process_memos",
    "warm_memos",
    "result_from_dict",
    "result_to_dict",
]


class _CallableSweepModule(types.ModuleType):
    """Keeps the legacy ``repro.sweep(design, workload, configs)`` call
    working now that ``repro.sweep`` names this package."""

    def __call__(self, design, workload, configs):
        from repro.simulate import sweep_configs

        return sweep_configs(design, workload, configs)


sys.modules[__name__].__class__ = _CallableSweepModule
