"""On-disk, content-addressed result cache.

One JSON file per run, stored under ``.repro_cache/<key[:2]>/<key>.json``
(the two-character fan-out keeps directories small on full-matrix
sweeps).  The cache is *safe by construction*:

* keys are content hashes over config + design + workload + simulator
  version (:mod:`repro.sweep.keys`), so a hit can only ever return the
  exact result the simulation would produce;
* a corrupted / truncated / stale-schema file counts as a miss (and is
  deleted) — the point is re-simulated live;
* every filesystem error is swallowed and accounted, never raised: a
  broken disk degrades to "no cache", not to a failed sweep;
* writes are crash-atomic (temp-file-then-rename, so a killed worker
  never leaves a truncated ``.json``) and serialized across processes
  through an advisory root lock (:mod:`repro.sweep.locking`); reads
  never lock — they always see whole files.

Environment overrides:

* ``REPRO_CACHE_DIR`` — cache root (default ``.repro_cache`` in the
  working directory);
* ``REPRO_NO_CACHE`` — any non-empty value disables reads and writes
  (the programmatic/CLI equivalent is ``cache=False`` / ``--no-cache``).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.analysis.metrics import RunResult
from repro.sweep.locking import FileLock, atomic_write_bytes
from repro.sweep.serialize import result_from_dict, result_to_dict

#: default cache root, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro_cache"
ENV_CACHE_DIR = "REPRO_CACHE_DIR"
ENV_NO_CACHE = "REPRO_NO_CACHE"


@dataclass
class CacheStats:
    """Hit/miss/invalidation accounting for one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0      # unreadable entries invalidated (then re-run)
    uncacheable: int = 0  # points whose key could not be computed
    io_errors: int = 0    # swallowed filesystem failures
    sidecar_skips: int = 0  # telemetry sidecars left untouched (same bytes)

    def summary(self) -> str:
        parts = [f"{self.hits} hits", f"{self.misses} misses"]
        if self.stores:
            parts.append(f"{self.stores} stored")
        if self.corrupt:
            parts.append(f"{self.corrupt} corrupt invalidated")
        if self.uncacheable:
            parts.append(f"{self.uncacheable} uncacheable")
        if self.io_errors:
            parts.append(f"{self.io_errors} io errors")
        if self.sidecar_skips:
            parts.append(f"{self.sidecar_skips} sidecars unchanged")
        return ", ".join(parts)


class ResultCache:
    """JSON-per-run result store addressed by run key."""

    #: bump when the stored file layout changes; older entries then
    #: read as corrupt and are transparently re-run.
    SCHEMA = 1

    def __init__(
        self,
        root: Union[str, Path, None] = None,
        enabled: bool = True,
    ):
        if root is None:
            root = os.environ.get(ENV_CACHE_DIR) or DEFAULT_CACHE_DIR
        self.root = Path(root)
        self.enabled = enabled
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def _active(self) -> bool:
        return self.enabled and not os.environ.get(ENV_NO_CACHE)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def lock_path(self) -> Path:
        """One advisory writer lock for the whole cache root."""
        return self.root / ".lock"

    def telemetry_path_for(self, key: str) -> Path:
        """Sidecar path for a run's telemetry summary.

        Telemetry lives *next to* the result entry rather than inside
        it: run keys and the result schema stay byte-identical whether
        or not a run was instrumented.
        """
        return self.root / key[:2] / f"{key}.telemetry.json"

    # ------------------------------------------------------------------
    def load(self, key: str) -> Optional[RunResult]:
        """Return the cached result for ``key``, or ``None`` on a miss.

        Corrupt entries (bad JSON, wrong schema, missing fields) are
        deleted and reported as a miss so the caller re-simulates.
        """
        if not self._active():
            return None
        path = self.path_for(key)
        if not path.exists():
            self.stats.misses += 1
            return None
        try:
            payload = json.loads(path.read_text())
            if payload.get("schema") != self.SCHEMA:
                raise ValueError("cache schema mismatch")
            result = result_from_dict(payload["result"])
        except (OSError, ValueError, KeyError, TypeError):
            self.stats.corrupt += 1
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                self.stats.io_errors += 1
            return None
        self.stats.hits += 1
        return result

    def store(
        self,
        key: str,
        result: RunResult,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Persist one result (atomic write; failures are swallowed).

        Crash-atomic (temp-file-then-rename: a killed worker never
        leaves a truncated ``.json`` for :meth:`load` to quarantine)
        and cross-process safe (writers serialize on the root lock;
        concurrent same-key stores are idempotent — the key is a
        content hash, so both write the same bytes).
        """
        if not self._active():
            return
        payload = {
            "schema": self.SCHEMA,
            "key": key,
            "meta": dict(meta or {}, created_unix=time.time()),
            "result": result_to_dict(result),
        }
        path = self.path_for(key)
        try:
            blob = json.dumps(payload).encode("utf-8")
            with FileLock(self.lock_path()):
                atomic_write_bytes(path, blob)
            self.stats.stores += 1
        except OSError:
            self.stats.io_errors += 1

    def store_telemetry(self, key: str, summary: Dict[str, Any]) -> None:
        """Persist a telemetry-summary dict next to the result entry.

        Same error policy as :meth:`store`: failures are swallowed and
        accounted, never raised.  Re-instrumenting a deterministic run
        reproduces the same summary, so a sidecar whose bytes would
        not change is left untouched — its mtime keeps meaning "when
        this telemetry was first captured" and repeated ``repro
        trace`` runs stop churning the cache directory.
        """
        if not self._active():
            return
        path = self.telemetry_path_for(key)
        blob = json.dumps(summary)
        try:
            if path.exists() and path.read_text() == blob:
                self.stats.sidecar_skips += 1
                return
        except OSError:
            pass  # unreadable sidecar: fall through and rewrite it
        try:
            with FileLock(self.lock_path()):
                atomic_write_bytes(path, blob.encode("utf-8"))
        except OSError:
            self.stats.io_errors += 1

    def load_telemetry(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored telemetry-summary dict, or None (miss/corrupt)."""
        if not self._active():
            return None
        path = self.telemetry_path_for(key)
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
            if not isinstance(payload, dict):
                raise ValueError("telemetry sidecar is not an object")
            return payload
        except (OSError, ValueError):
            try:
                path.unlink()
            except OSError:
                self.stats.io_errors += 1
            return None

    # ------------------------------------------------------------------
    def clear(self) -> int:
        """Delete every cached entry; returns the number removed."""
        removed = 0
        if not self.root.exists():
            return removed
        with FileLock(self.lock_path()):
            for entry in self.root.glob("*/*.json"):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    self.stats.io_errors += 1
        return removed

    def prune_tmp(self) -> int:
        """Remove orphaned ``*.tmp`` files left by killed writers.

        Atomic writes stage through ``<dir>/tmpXXXX.tmp``; a process
        killed between staging and rename leaves the orphan behind.
        Runs under the writer lock so an in-flight store's live temp
        file (held only within the lock) is never swept.
        """
        removed = 0
        if not self.root.exists():
            return removed
        with FileLock(self.lock_path()):
            for entry in self.root.glob("*/*.tmp"):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    self.stats.io_errors += 1
        return removed

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))


# ----------------------------------------------------------------------
# shared default instance (one per resolved root, so stats aggregate)
# ----------------------------------------------------------------------
_DEFAULT_CACHES: Dict[Path, ResultCache] = {}


def default_cache() -> ResultCache:
    """The process-wide cache at the current default root.

    Honours ``REPRO_CACHE_DIR`` at call time; one instance per root so
    hit/miss accounting aggregates across callers.
    """
    root = Path(
        os.environ.get(ENV_CACHE_DIR) or DEFAULT_CACHE_DIR
    ).absolute()
    cache = _DEFAULT_CACHES.get(root)
    if cache is None:
        cache = _DEFAULT_CACHES[root] = ResultCache(root=root)
    return cache


def resolve_cache(
    cache: Union[ResultCache, bool, str, None]
) -> Optional[ResultCache]:
    """Normalize the ``cache=`` argument accepted across the API.

    ``"default"``/``True``/``None`` -> the shared default cache;
    ``False`` -> no caching; a :class:`ResultCache` -> itself.
    """
    if cache is False:
        return None
    if cache is None or cache is True or cache == "default":
        return default_cache()
    return cache
