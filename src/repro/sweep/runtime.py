"""The warm worker runtime: persistent pools and cross-point memos.

A cold sweep pays the same fixed costs at every point: workloads are
re-materialized from their factory specs, topology objects and NoC
fast tables are rebuilt, camp-location tables are re-primed line by
line — even though most points of the 48-cell matrix share all of
them.  This module makes the 2nd..Nth points skip that work without
changing a single simulated value:

* :class:`ProcessMemos` — per-process memo caches for materialized
  workloads (keyed by the existing ``workload_token``), shared
  :class:`~repro.arch.topology.Topology` instances, healthy-mesh NoC
  fast tables, camp home/nearest tables, and vector-engine columnar
  tables.  Every memoized value is a pure function of the config and
  the workload spec (no RNG or clock state), so warm results are
  bit-identical to cold ones; anything touched by a fault epoch is
  never donated back.
* :class:`SharedWorkloadStore` — parent-side
  ``multiprocessing.shared_memory`` segments holding each workload's
  pickle exactly once; workers attach zero-copy instead of receiving
  a fresh pickle per point.
* :class:`WorkerRuntime` — a reusable handle bundling a persistent
  worker pool (initialized warm) with the shared store, injectable
  into :class:`~repro.sweep.runner.SweepRunner`, ``run_matrix``,
  :func:`~repro.campaign.runner.run_campaign` and the experiment
  server so multi-sweep drivers stop paying pool startup per sweep.
* :func:`lpt_order` — history-ledger-informed longest-processing-time
  point ordering (predicted-slowest first), shrinking pool tail
  latency on the dispatch side.

The memos are *opt-in by scope*: nothing in the simulator consults
them unless the process is inside an enabled scope (a worker of a
:class:`WorkerRuntime` pool, or a ``with runtime.activate():`` block
in the parent).  A cold build — the default for direct
:func:`repro.simulate.simulate` calls and for every existing test —
is byte-for-byte the pre-runtime code path.

See docs/architecture.md §15 for the memo keys, the shared-memory
lifecycle and the invalidation rules.
"""

from __future__ import annotations

import atexit
import contextlib
import multiprocessing
import os
import pickle
import time
import traceback
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.sweep.keys import (
    UncacheableError,
    canonicalize,
    stable_hash,
    workload_token,
)
from repro.workloads.base import make_workload

#: name prefix of every shared-memory segment this runtime creates;
#: the CI leak check greps /dev/shm for it after the test suite.
SHM_PREFIX = "repro_wl_"

#: memo capacity bounds — generous for real sweeps (8 workloads, a
#: handful of mesh sizes) while keeping a pathological driver from
#: growing worker memory without bound.
MAX_WORKLOAD_MEMOS = 16
MAX_VECTOR_TABLE_MEMOS = 32
MAX_SHM_SEGMENTS = 32
#: camp tables beyond this many memoized lines are not harvested (the
#: per-line tables are the largest memo class by far).
MAX_CAMP_LINES = 200_000


# ----------------------------------------------------------------------
# runtime counters (observability only)
# ----------------------------------------------------------------------
#: plain-int process-wide counters the metrics plane exports through
#: ``GET /v1/metrics`` (see :mod:`repro.insight.metrics_plane`).  Pure
#: bookkeeping: nothing in the simulation reads them, and bumping a
#: dict entry is cheap enough for the paths that do (pool startup, shm
#: segment lifecycle, LPT planning — never the per-access hot path).
_RUNTIME_COUNTERS: Dict[str, int] = {}


def _bump(name: str, amount: int = 1) -> None:
    _RUNTIME_COUNTERS[name] = _RUNTIME_COUNTERS.get(name, 0) + amount


def runtime_counters() -> Dict[str, int]:
    """A passive snapshot of this process's runtime counters.

    Merges the event counters above with the memo hit/miss stats of
    this process's :class:`ProcessMemos` — *without* creating memos:
    scraping an idle process reports zeros instead of allocating warm
    state (the zero-overhead telemetry contract extends to metrics).
    """
    snap = dict(_RUNTIME_COUNTERS)
    memos = _MEMOS
    if memos is not None:
        import dataclasses

        for field in dataclasses.fields(memos.stats):
            snap[f"memo_{field.name}"] = getattr(memos.stats, field.name)
    return snap


# ----------------------------------------------------------------------
# per-process memo caches
# ----------------------------------------------------------------------
@dataclass
class MemoStats:
    """Hit/miss counters of one process's memo caches (observability
    only — never consulted by the simulation)."""

    workload_hits: int = 0
    workload_misses: int = 0
    topology_hits: int = 0
    topology_misses: int = 0
    noc_hits: int = 0
    camp_seeds: int = 0
    camp_harvests: int = 0
    line_seeds: int = 0
    line_harvests: int = 0
    vector_hits: int = 0
    vector_donations: int = 0

    def summary(self) -> str:
        return (
            f"workloads {self.workload_hits}h/{self.workload_misses}m, "
            f"topology {self.topology_hits}h/{self.topology_misses}m, "
            f"noc {self.noc_hits}h, camp {self.camp_seeds}s/"
            f"{self.camp_harvests}w, lines {self.line_seeds}s/"
            f"{self.line_harvests}w, vector {self.vector_hits}h"
        )


class ProcessMemos:
    """Cross-point memo caches held by one (worker or parent) process.

    Every entry is deterministic derived data:

    * ``workloads`` — materialized workload instances keyed by the
      stable hash of their :func:`~repro.sweep.keys.workload_token`
      (the exact identity run keys use).  Workload generation is
      seeded from the factory kwargs alone, so the same token always
      materializes the same object.
    * ``topologies`` — immutable :class:`~repro.arch.topology.Topology`
      instances keyed by (topology-config fields, num_groups).
    * ``noc_tables`` — the healthy-mesh ``fast_tables``/``fast_arrays``
      pair keyed by (topology key, inter/intra hop latency).  Only
      harvested and only seeded at ``fault_epoch == 0``; a fault
      transition nulls the interconnect's own copy and bumps the
      epoch, so faulted tables can never be donated.
    * ``camp_tables`` — ``(loc_cache, nearest_cache)`` dict pairs
      keyed by the machine key (topology+memory+cache+noc sections).
      Seeded as shallow copies into a fresh mapper; harvested back
      only from mappers that stayed at ``epoch == 0`` (never cleared,
      no alive-mask) on a fault-free interconnect.
    * ``line_memos`` — the memory system's per-line
      ``(home, nearest, is_home)`` memo (the batched read path's
      flattened tables), keyed like ``camp_tables`` and guarded by the
      same epoch rules plus the memory system's own memo-epoch tuple.
    * ``vector_tables`` — the vector phase engine's per-line columnar
      tables keyed by (machine key, unique-lines digest).
    """

    def __init__(self) -> None:
        self.workloads: "OrderedDict[str, Any]" = OrderedDict()
        self.topologies: Dict[Tuple, Any] = {}
        self.noc_tables: Dict[Tuple, Tuple[Any, Any]] = {}
        self.camp_tables: Dict[str, Tuple[dict, dict]] = {}
        self.line_memos: Dict[str, dict] = {}
        self.vector_tables: "OrderedDict[Tuple[str, str], Tuple]" = \
            OrderedDict()
        self.stats = MemoStats()
        #: machine-key memo keyed on id() of a config (configs are
        #: frozen; id reuse after GC only costs a recompute).
        self._machine_keys: Dict[int, Tuple[Any, str]] = {}

    # -- workloads -----------------------------------------------------
    def remember_workload(self, token: str, workload: Any) -> None:
        self.workloads[token] = workload
        self.workloads.move_to_end(token)
        while len(self.workloads) > MAX_WORKLOAD_MEMOS:
            self.workloads.popitem(last=False)

    def workload_from_factory(self, name: str, kwargs: Dict[str, Any]):
        """A materialized workload for a factory spec, memoized."""
        try:
            token = stable_hash({"factory": name,
                                 "kwargs": canonicalize(kwargs)})
        except UncacheableError:
            self.stats.workload_misses += 1
            return make_workload(name, **kwargs)
        hit = self.workloads.get(token)
        if hit is not None:
            self.workloads.move_to_end(token)
            self.stats.workload_hits += 1
            return hit
        workload = make_workload(name, **kwargs)
        self.remember_workload(token, workload)
        self.stats.workload_misses += 1
        return workload

    # -- machine keys --------------------------------------------------
    def machine_key(self, config) -> str:
        """Stable digest of the config sections the machine-shape
        memos depend on (topology, memory, cache, noc) — scheduler
        policy and core parameters deliberately excluded, so e.g. the
        C and O design points share camp tables."""
        hit = self._machine_keys.get(id(config))
        if hit is not None and hit[0] is config:
            return hit[1]
        sections = config.canonical_dict()
        key = stable_hash({
            name: sections.get(name)
            for name in ("topology", "memory", "cache", "noc")
        })
        self._machine_keys[id(config)] = (config, key)
        return key

    @staticmethod
    def _topology_key(topo_config, num_groups: int) -> Tuple:
        import dataclasses

        return (dataclasses.astuple(topo_config), int(num_groups))

    def topology_for(self, topo_config, num_groups: int):
        """A shared immutable Topology for (config, groups)."""
        from repro.arch.topology import Topology

        key = self._topology_key(topo_config, num_groups)
        hit = self.topologies.get(key)
        if hit is not None:
            self.stats.topology_hits += 1
            return hit
        topo = Topology(topo_config, num_groups=num_groups)
        self.topologies[key] = topo
        self.stats.topology_misses += 1
        return topo

    def _noc_key(self, system) -> Tuple:
        topo = system.config.topology
        noc = system.config.noc
        return (
            self._topology_key(topo, system.topology.num_groups),
            float(noc.inter_hop_ns),
            float(noc.intra_hop_ns),
        )

    # -- attach / harvest ----------------------------------------------
    def attach(self, system) -> None:
        """Seed a freshly built machine from the memos (bit-identical:
        every seeded value is exactly what the run would compute)."""
        icn = system.interconnect
        if icn.fault_epoch == 0 and icn._fast_tables is None:
            hit = self.noc_tables.get(self._noc_key(system))
            if hit is not None:
                icn._fast_tables, icn._fast_arrays = hit
                self.stats.noc_hits += 1
        mapper = system.camp_mapper
        if (mapper is not None and mapper.epoch == 0
                and not system.telemetry.enabled):
            # telemetry runs stay cold: the camp.memo_lines gauge
            # reports the memo footprint, which seeding would inflate.
            hit = self.camp_tables.get(self.machine_key(system.config))
            if hit is not None:
                mapper._loc_cache = dict(hit[0])
                mapper._nearest_cache = dict(hit[1])
                self.stats.camp_seeds += 1
        ms = system.memory_system
        if (icn.fault_epoch == 0 and not system.telemetry.enabled
                and ms._engine in ("batched", "vector")
                and (mapper is None or mapper.epoch == 0)
                and not ms._line_memo):
            hit = self.line_memos.get(self.machine_key(system.config))
            if hit is not None:
                ms._line_memo = dict(hit)
                # pin the memo epoch the batched path would compute, or
                # its first access clears the seed as "stale".
                ms._memo_epoch = (
                    mapper.epoch if mapper is not None else -1,
                    icn.fault_epoch,
                )
                self.stats.line_seeds += 1

    def harvest(self, system) -> None:
        """Donate a finished machine's derived tables back to the
        memos.  Anything a fault epoch ever touched is skipped — the
        interconnect nulls its tables and the mapper bumps its epoch
        on every fault transition, so this check is airtight."""
        icn = system.interconnect
        if icn.fault_epoch == 0 and icn._fast_tables is not None:
            self.noc_tables.setdefault(
                self._noc_key(system),
                (icn._fast_tables, icn._fast_arrays),
            )
        mapper = system.camp_mapper
        if (mapper is not None and mapper.epoch == 0
                and mapper._alive is None and icn.fault_epoch == 0
                and not system.telemetry.enabled
                and len(mapper._nearest_cache) <= MAX_CAMP_LINES):
            self.camp_tables[self.machine_key(system.config)] = (
                mapper._loc_cache, mapper._nearest_cache,
            )
            self.stats.camp_harvests += 1
        ms = system.memory_system
        if (icn.fault_epoch == 0 and not system.telemetry.enabled
                and (mapper is None
                     or (mapper.epoch == 0 and mapper._alive is None))
                and ms._memo_epoch == (
                    mapper.epoch if mapper is not None else -1, 0)
                and 0 < len(ms._line_memo) <= MAX_CAMP_LINES):
            self.line_memos[self.machine_key(system.config)] = \
                ms._line_memo
            self.stats.line_harvests += 1

    # -- vector-engine tables ------------------------------------------
    def vector_tables_get(self, key: Tuple[str, str]):
        hit = self.vector_tables.get(key)
        if hit is not None:
            self.vector_tables.move_to_end(key)
            self.stats.vector_hits += 1
        return hit

    def vector_tables_put(self, key: Tuple[str, str], tables) -> None:
        self.vector_tables[key] = tables
        self.vector_tables.move_to_end(key)
        self.stats.vector_donations += 1
        while len(self.vector_tables) > MAX_VECTOR_TABLE_MEMOS:
            self.vector_tables.popitem(last=False)


# ----------------------------------------------------------------------
# warm scope: the memos are inert unless a scope enables them
# ----------------------------------------------------------------------
_MEMOS: Optional[ProcessMemos] = None
_SCOPE_DEPTH = 0


def process_memos() -> ProcessMemos:
    """This process's memo caches (created on first use).  The data
    outlives scopes — re-entering a warm scope resumes warm."""
    global _MEMOS
    if _MEMOS is None:
        _MEMOS = ProcessMemos()
    return _MEMOS


def active_memos() -> Optional[ProcessMemos]:
    """The memos, or None when this process is in a cold scope.
    Every simulator hook goes through this gate, so cold behaviour is
    exactly the pre-runtime code path."""
    return _MEMOS if _SCOPE_DEPTH > 0 else None


def enable_memos() -> ProcessMemos:
    global _SCOPE_DEPTH
    _SCOPE_DEPTH += 1
    return process_memos()


def disable_memos() -> None:
    global _SCOPE_DEPTH
    _SCOPE_DEPTH = max(0, _SCOPE_DEPTH - 1)


@contextlib.contextmanager
def warm_memos():
    """``with warm_memos():`` — a warm scope for in-process callers."""
    enable_memos()
    try:
        yield process_memos()
    finally:
        disable_memos()


def _worker_init() -> None:
    """Pool initializer: workers run warm for their whole life."""
    enable_memos()


# ----------------------------------------------------------------------
# shared-memory workload store
# ----------------------------------------------------------------------
def _unregister_segment(shm) -> None:
    """Detach a worker-side attach from the resource tracker.

    ``SharedMemory(name=...)`` registers the segment with the process's
    resource tracker, which would *unlink* it when the worker exits —
    destroying the parent's segment mid-sweep.  The parent owns the
    lifecycle (create / unlink); attachers must only close.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass  # tracker variants differ across platforms; best-effort


def _load_shm_workload(name: str, size: int):
    """Attach, unpickle and detach one stored workload (worker side)."""
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=name)
    try:
        _unregister_segment(shm)
        return pickle.loads(bytes(shm.buf[:size]))
    finally:
        shm.close()


class SharedWorkloadStore:
    """Parent-owned shared-memory segments of pickled workloads.

    The parent materializes each unique workload once, pickles it into
    a named ``/dev/shm`` segment (``repro_wl_<pid>_<token12>``), and
    ships only the (name, size) descriptor in worker payloads; workers
    attach zero-copy, unpickle once, and memoize the instance.  The
    store is strictly best-effort: any failure (no /dev/shm, an
    unpicklable workload, a vanished segment) falls back to the cold
    spec.  Cleanup is the parent's job — :meth:`close` unlinks every
    segment, an ``atexit`` hook backstops a forgotten close, and a
    worker crash cannot leak anything because workers never create."""

    def __init__(self) -> None:
        self._segments: "OrderedDict[str, Tuple[Any, int]]" = OrderedDict()
        self._closed = False
        atexit.register(self.close)

    def __len__(self) -> int:
        return len(self._segments)

    def descriptor(self, token: str) -> Optional[Tuple[str, int]]:
        """(segment name, payload size) for a stored token, if any."""
        entry = self._segments.get(token)
        if entry is None:
            return None
        shm, size = entry
        return (shm.name, size)

    def put(self, token: str, workload: Any) -> Optional[Tuple[str, int]]:
        """Store one workload; returns its descriptor or None."""
        if self._closed:
            return None
        hit = self.descriptor(token)
        if hit is not None:
            return hit
        from multiprocessing import shared_memory

        try:
            blob = pickle.dumps(workload, protocol=pickle.HIGHEST_PROTOCOL)
            name = f"{SHM_PREFIX}{os.getpid():x}_{token[:12]}"
            shm = shared_memory.SharedMemory(
                name=name, create=True, size=len(blob)
            )
        except Exception:
            return None  # fall back to the cold workload spec
        shm.buf[: len(blob)] = blob
        self._segments[token] = (shm, len(blob))
        _bump("shm_segments_created")
        _bump("shm_segments_open")
        _bump("shm_bytes_open", len(blob))
        while len(self._segments) > MAX_SHM_SEGMENTS:
            _, (old, old_size) = self._segments.popitem(last=False)
            self._release(old, old_size)
        return (shm.name, len(blob))

    @staticmethod
    def _release(shm, size: int = 0) -> None:
        for step in (shm.close, shm.unlink):
            try:
                step()
            except Exception:
                pass
        _bump("shm_segments_open", -1)
        _bump("shm_bytes_open", -size)

    def close(self) -> None:
        """Unlink every segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for shm, size in self._segments.values():
            self._release(shm, size)
        self._segments.clear()
        with contextlib.suppress(Exception):
            atexit.unregister(self.close)


# ----------------------------------------------------------------------
# workload spec resolution (worker side)
# ----------------------------------------------------------------------
def resolve_workload_spec(spec: Tuple):
    """Materialize a worker payload's workload spec.

    Specs are ``("factory", name, kwargs)``, ``("object", workload)``
    or ``("shm", token, segment, size, fallback_spec)``.  Warm scopes
    memoize by token; cold scopes behave exactly like the original
    per-point materialization.
    """
    kind = spec[0]
    if kind == "factory":
        memos = active_memos()
        if memos is None:
            return make_workload(spec[1], **spec[2])
        return memos.workload_from_factory(spec[1], spec[2])
    if kind == "shm":
        _, token, name, size, fallback = spec
        memos = active_memos()
        if memos is not None:
            hit = memos.workloads.get(token)
            if hit is not None:
                memos.workloads.move_to_end(token)
                memos.stats.workload_hits += 1
                return hit
        try:
            workload = _load_shm_workload(name, size)
        except Exception:
            if fallback is not None:
                return resolve_workload_spec(fallback)
            raise
        if memos is not None:
            memos.remember_workload(token, workload)
            memos.stats.workload_misses += 1
        return workload
    return spec[1]  # ("object", workload)


def materialize_point(point):
    """A workload instance for one sweep point, memoized when warm."""
    memos = active_memos()
    if memos is not None and isinstance(point.workload, str):
        return memos.workload_from_factory(
            point.workload, point.workload_kwargs
        )
    return point.materialize()


def _warm_worker(payload: Tuple) -> Tuple[int, Optional[Dict],
                                          Optional[str], float]:
    """Warm-pool sibling of :func:`repro.sweep.runner._worker`.

    Same payload tuple, same return contract; the only differences are
    the memoized workload resolution and that ``_live_simulate`` runs
    inside this process's (permanently enabled) warm scope.
    """
    from repro.sweep import runner as _runner
    from repro.sweep.serialize import result_to_dict

    idx, design, wl_spec, config, fault_schedule = payload
    t0 = time.time()
    try:
        workload = resolve_workload_spec(wl_spec)
        result = _runner._live_simulate(
            design, workload, config, fault_schedule=fault_schedule
        )
        return idx, result_to_dict(result), None, time.time() - t0
    except BaseException:
        return idx, None, traceback.format_exc(), time.time() - t0


# ----------------------------------------------------------------------
# the runtime handle
# ----------------------------------------------------------------------
class WorkerRuntime:
    """A reusable warm execution context for sweeps.

    Bundles three things with one lifecycle:

    * a persistent ``multiprocessing.Pool`` whose workers are
      initialized warm and keep their memos across sweeps,
    * a :class:`SharedWorkloadStore` of parent-materialized workloads,
    * a parent-side warm scope (:meth:`activate`) for the serial path.

    Inject one runtime into several :class:`SweepRunner`\\ s /
    ``run_campaign`` calls to amortize pool startup and memo warmup
    across them; :meth:`close` (or the context manager) tears down the
    pool and unlinks every shared-memory segment.
    """

    def __init__(self, jobs: Optional[int] = None):
        self.jobs = jobs
        self.store = SharedWorkloadStore()
        self._pool = None
        self._pool_width = 0
        self._closed = False

    # ------------------------------------------------------------------
    def pool(self, width: int):
        """The persistent warm pool (created on first use).

        The width is fixed at creation; later calls reuse the existing
        pool even when they ask for fewer workers (idle workers cost
        nothing and keep their memos warm).
        """
        if self._closed:
            raise RuntimeError("WorkerRuntime is closed")
        if self._pool is None:
            self._pool_width = max(1, int(width))
            self._pool = multiprocessing.Pool(
                processes=self._pool_width, initializer=_worker_init
            )
            _bump("warm_pools_started")
        return self._pool

    @property
    def pool_width(self) -> int:
        return self._pool_width

    def activate(self):
        """A parent-side warm scope (used around serial execution and
        payload preparation)."""
        return warm_memos()

    # ------------------------------------------------------------------
    def workload_spec(self, point) -> Tuple:
        """The worker payload spec for one point, through the store.

        Parent materializes (memoized) and stores the pickle once per
        unique workload token; uncacheable or unstorable workloads
        fall back to the exact cold spec.
        """
        if isinstance(point.workload, str):
            base: Tuple = ("factory", point.workload,
                           dict(point.workload_kwargs))
        else:
            base = ("object", point.workload)
        try:
            if base[0] == "factory":
                token_src: Any = {"factory": base[1], "kwargs": base[2]}
            else:
                token_src = workload_token(point.workload)
            token = stable_hash(token_src)
        except UncacheableError:
            return base
        desc = self.store.descriptor(token)
        if desc is None:
            if base[0] == "object":
                workload = base[1]
            else:
                memos = active_memos()
                if memos is not None:
                    workload = memos.workload_from_factory(base[1], base[2])
                else:
                    workload = make_workload(base[1], **base[2])
            desc = self.store.put(token, workload)
        if desc is None:
            return base
        fallback = base if base[0] == "factory" else None
        return ("shm", token, desc[0], desc[1], fallback)

    def worker_payload(self, idx: int, point) -> Tuple:
        return (idx, point.design, self.workload_spec(point),
                point.resolved_config(), point.fault_schedule)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Tear the pool down and unlink every shm segment."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        self.store.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "WorkerRuntime":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing
        with contextlib.suppress(Exception):
            self.close()


# ----------------------------------------------------------------------
# history-informed LPT ordering
# ----------------------------------------------------------------------
def predicted_wall_times(
    points: Sequence, ledger=None,
) -> Optional[List[float]]:
    """Predicted per-point wall seconds from the history ledger.

    Median of the newest (≤5) ``source == "simulate"`` records per
    (design, workload, mesh); points the ledger has never seen get the
    mean prediction.  Returns None (→ callers keep input order) when
    history is disabled, empty or unreadable — strictly best-effort.
    """
    try:
        import statistics

        from repro.observatory.history import (
            default_ledger,
            history_enabled,
        )

        if not history_enabled():
            return None
        led = ledger if ledger is not None else default_ledger()
        samples: Dict[Tuple[str, str, str], List[float]] = {}
        for rec in led.records():
            if rec.source != "simulate" or rec.wall_s <= 0:
                continue
            key = (rec.design, rec.workload, rec.mesh)
            samples.setdefault(key, []).append(rec.wall_s)
        if not samples:
            return None
        medians = {k: statistics.median(v[-5:]) for k, v in samples.items()}
        fallback = statistics.fmean(medians.values())
        out: List[float] = []
        for point in points:
            name = (
                point.workload if isinstance(point.workload, str)
                else getattr(point.workload, "name", "")
            )
            cfg = point.resolved_config()
            mesh = f"{cfg.topology.mesh_rows}x{cfg.topology.mesh_cols}"
            out.append(medians.get((point.design, name, mesh), fallback))
        return out
    except Exception:
        return None


def lpt_order(points: Sequence, ledger=None) -> List[int]:
    """Indices of ``points`` in predicted-slowest-first (LPT) order.

    Stable: ties and unpredicted points keep their input order, and
    with no usable history the identity order comes back.  Dispatch
    order only — reports stay indexed by input position, so results
    are unaffected.
    """
    order = list(range(len(points)))
    preds = predicted_wall_times(points, ledger=ledger)
    if preds is None:
        return order
    _bump("lpt_orders")
    _bump("lpt_predicted_points", len(points))
    return sorted(order, key=lambda i: (-preds[i], i))
