"""Cross-process file locking for the shared on-disk stores.

The result cache (:mod:`repro.sweep.cache`) and the history ledger
(:mod:`repro.observatory.history`) are written concurrently by sweep
worker processes, the experiment server's worker pool, and any number
of CLI clients pointed at the same ``.repro_cache/`` root.  Writers
serialize through an advisory ``fcntl`` lock on a dedicated ``.lock``
sidecar file; readers never lock — every write is
temp-file-then-``os.replace``, so a reader always sees either the old
bytes or the new bytes, never a torn file (the "lock-free read path").

The lock is *best-effort by contract*, matching the storage layers it
protects: a filesystem that cannot lock (no ``fcntl`` on the platform,
a read-only directory, an NFS mount refusing ``flock``) degrades to
unlocked writes — exactly the pre-lock behaviour — rather than
failing the run.  :attr:`FileLock.acquired` reports whether the lock
is actually held, so callers that *need* mutual exclusion (the ledger
rotation) can fall back defensively.

The lock file lives *next to* the protected path rather than being the
path itself: rotation and compaction ``os.replace`` the protected file
away, which would silently detach any lock held on its inode.
"""

from __future__ import annotations

import os
from pathlib import Path
from types import TracebackType
from typing import Optional, Type, Union

try:  # pragma: no cover - exercised only on platforms without fcntl
    import fcntl
except ImportError:  # Windows: advisory locking degrades to a no-op
    fcntl = None  # type: ignore[assignment]

#: suffix appended to the protected path to name its lock sidecar.
LOCK_SUFFIX = ".lock"


def lock_path_for(path: Union[str, Path]) -> Path:
    """The lock-sidecar path protecting ``path``."""
    path = Path(path)
    return path.with_name(path.name + LOCK_SUFFIX)


class FileLock:
    """Advisory exclusive lock on a sidecar file (``with`` style).

    Blocking acquire; reentrant use is not supported (each writer
    creates its own instance).  Every failure to lock is swallowed:
    the protected write proceeds unlocked, as it did before locking
    existed.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._fh = None
        self.acquired = False

    def acquire(self) -> bool:
        """Take the lock; returns whether it is actually held."""
        if fcntl is None or self._fh is not None:
            return self.acquired
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fh = open(self.path, "a+b")
        except OSError:
            return False
        try:
            fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
        except OSError:
            try:
                fh.close()
            except OSError:
                pass
            return False
        self._fh = fh
        self.acquired = True
        return True

    def release(self) -> None:
        if self._fh is None:
            return
        try:
            if fcntl is not None:
                fcntl.flock(self._fh.fileno(), fcntl.LOCK_UN)
        except OSError:
            pass
        try:
            self._fh.close()
        except OSError:
            pass
        self._fh = None
        self.acquired = False

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.release()


def locked_for(path: Union[str, Path]) -> FileLock:
    """A :class:`FileLock` on the sidecar protecting ``path``."""
    return FileLock(lock_path_for(path))


def atomic_write_bytes(path: Path, blob: bytes) -> None:
    """Write ``blob`` to ``path`` via temp-file-then-rename.

    The write is crash-atomic: a killed process leaves either the old
    file or an orphan ``*.tmp`` (cleaned by compaction), never a
    truncated ``path``.  Raises ``OSError`` on failure — callers own
    the swallow-and-account policy.
    """
    import tempfile

    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(blob)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
