"""Content-addressed run keys.

A *run key* is a stable SHA-256 digest over everything that determines
the outcome of one simulation:

* the resolved :class:`~repro.config.SystemConfig` (every field, via
  its canonical serialization),
* the design string ("B", "Sm", ..., "O"),
* the workload identity — either its factory spec (name + explicit
  keyword arguments) when it was built through
  :func:`repro.workloads.base.make_workload`, or a structural hash of
  the instance's public attributes (datasets included) otherwise,
* a simulator version salt (:data:`SIMULATOR_VERSION`).

Because the simulator is deterministic (every RNG is seeded from the
config and the workload), two runs with the same key produce
bit-identical :class:`~repro.analysis.metrics.RunResult` values — which
is what makes the on-disk result cache (:mod:`repro.sweep.cache`)
sound.

Bump :data:`SIMULATOR_VERSION` whenever a change alters simulation
*outcomes* (timing models, scheduler behaviour, dataset generators,
default workload parameters): the salt is the cache's global
invalidation lever.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any, Dict, Optional, Union

import numpy as np

from repro.config import SystemConfig

#: Salt mixed into every run key.  Bump on any behaviour change of the
#: simulator or the default datasets; every cached result is then
#: automatically ignored (a clean miss, not an error).
SIMULATOR_VERSION = "abndp-sim-1"

#: Version of the key layout itself (payload structure, not behaviour).
KEY_SCHEMA = 1


class UncacheableError(TypeError):
    """Raised when an object cannot be canonicalized into a run key.

    Callers treat it as "run live, skip the cache" — it is never a
    failure of the simulation itself.
    """


def canonicalize(obj: Any) -> Any:
    """Reduce ``obj`` to a deterministic JSON-able structure.

    Handles primitives, enums, dataclasses (field order is the class
    declaration order), numpy scalars and arrays (hashed by dtype,
    shape and raw bytes), dicts (sorted by key), lists/tuples, and any
    object exposing a ``cache_token()`` method.  Raises
    :class:`UncacheableError` for everything else.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, enum.Enum):
        return {"__enum__": [type(obj).__name__, obj.value]}
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, np.ndarray):
        digest = hashlib.sha256(
            np.ascontiguousarray(obj).tobytes()
        ).hexdigest()
        return {"__ndarray__": [obj.dtype.str, list(obj.shape), digest]}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__dataclass__": type(obj).__name__,
            "fields": {
                f.name: canonicalize(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            },
        }
    if isinstance(obj, dict):
        try:
            items = sorted(obj.items())
        except TypeError as exc:
            raise UncacheableError(f"unsortable dict keys in {obj!r}") from exc
        return {str(k): canonicalize(v) for k, v in items}
    if isinstance(obj, (list, tuple)):
        return [canonicalize(v) for v in obj]
    token = getattr(obj, "cache_token", None)
    if callable(token):
        return {"__token__": [type(obj).__name__, token()]}
    raise UncacheableError(
        f"cannot canonicalize {type(obj).__name__!r} for a run key"
    )


def stable_hash(obj: Any) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``obj``."""
    payload = json.dumps(
        canonicalize(obj), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def workload_token(workload: Union[str, Any]) -> Dict[str, Any]:
    """The workload part of a run key.

    A bare name keys the default factory product; an instance built by
    :func:`~repro.workloads.base.make_workload` keys its factory spec
    (so the instance and the equivalent name+kwargs call share cache
    entries); any other instance is keyed structurally — its public
    attributes, datasets and all, are hashed.
    """
    if isinstance(workload, str):
        return {"factory": workload, "kwargs": {}}
    spec = getattr(workload, "_factory_spec", None)
    if spec is not None:
        name, kwargs = spec
        return {"factory": name, "kwargs": canonicalize(kwargs)}
    state = {
        k: v for k, v in vars(workload).items() if not k.startswith("_")
    }
    return {
        "class": type(workload).__qualname__,
        "state": canonicalize(state),
    }


def run_key(
    design: str,
    workload: Union[str, Any],
    config: SystemConfig,
    extra: Optional[Dict[str, Any]] = None,
) -> str:
    """The content-addressed key of one (design, workload, config) run.

    Raises :class:`UncacheableError` when the workload cannot be
    identified deterministically (e.g. it holds a non-hashable custom
    object); callers should then run live and skip the cache.
    """
    payload = {
        "schema": KEY_SCHEMA,
        "sim": SIMULATOR_VERSION,
        "design": design,
        "workload": workload_token(workload),
        "config": config.canonical_dict(),
        "extra": canonicalize(extra) if extra else None,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
