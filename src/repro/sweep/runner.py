"""The sweep engine: cached single points and parallel grids.

Three layers, each usable on its own:

* :func:`cached_simulate` — drop-in replacement for
  :func:`repro.simulate.simulate` that consults the on-disk result
  cache first (and feeds it after a live run).
* :func:`run_point` — the same, wrapped in a
  :class:`PointOutcome` that captures failures instead of raising.
* :class:`SweepRunner` / :func:`run_matrix` — fan a list of
  :class:`SweepPoint`\\ s out over ``multiprocessing`` workers, with
  per-point progress lines, per-point failure capture and a single
  retry (one crashed point never kills the sweep), and results that
  are bit-identical to the serial path (every simulation is seeded and
  independent).

Workers re-materialize workloads from their factory spec when
available (cheap, deterministic) and receive pickled instances
otherwise; results travel back as the JSON dicts of
:mod:`repro.sweep.serialize`, the exact representation the cache
stores.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.metrics import RunResult
from repro.config import SystemConfig, engine_tier, experiment_config
from repro.observatory.progress import EventFn, ProgressEvent
from repro.sweep.cache import ResultCache, resolve_cache
from repro.sweep.keys import UncacheableError, run_key
from repro.sweep.runtime import (
    WorkerRuntime,
    _warm_worker,
    lpt_order,
    materialize_point,
)
from repro.sweep.serialize import result_from_dict, result_to_dict
from repro.workloads.base import Workload, make_workload

ProgressFn = Callable[[str], None]
CacheLike = Union[ResultCache, bool, str, None]
#: ``None`` = a private WorkerRuntime per run (warm, torn down after);
#: ``False`` = the legacy cold fork-per-point path; a WorkerRuntime =
#: shared across calls, never closed by the runner.
RuntimeLike = Union[WorkerRuntime, bool, None]


def _record_history(result: RunResult, workload, config,
                    key: Optional[str], wall_s: float) -> None:
    """Best-effort run-history line for a cache hit resolved here.

    Live runs record themselves inside :func:`repro.simulate.simulate`
    (including in worker processes); only hits bypass that path.
    """
    from repro.observatory.history import record_run

    record_run(result, config=config, workload=workload, wall_s=wall_s,
               source="cache", key=key)


def _live_simulate(design: str, workload, config, telemetry=None,
                   fault_schedule=None) -> RunResult:
    """The uncached simulation call (module-level so tests can stub it
    with a counting fake and workers can resolve it after a fork)."""
    from repro.simulate import simulate

    if fault_schedule:
        return simulate(design, workload, config, telemetry=telemetry,
                        fault_schedule=fault_schedule)
    return simulate(design, workload, config, telemetry=telemetry)


def _point_key(
    design: str, workload, config: SystemConfig,
    cache: Optional[ResultCache],
    fault_schedule=None,
) -> Optional[str]:
    """Run key for one point, or None when uncacheable.

    A non-empty fault schedule joins the key through the generic
    ``extra`` payload; fault-free points keep the exact key they had
    before the fault subsystem existed.
    """
    if cache is None:
        return None
    extra = {"faults": fault_schedule} if fault_schedule else None
    try:
        return run_key(design, workload, config, extra=extra)
    except UncacheableError:
        cache.stats.uncacheable += 1
        return None


def cached_simulate(
    design: str,
    workload: Union[str, Workload],
    config: Optional[SystemConfig] = None,
    cache: CacheLike = "default",
    telemetry=None,
    fault_schedule=None,
    **workload_kwargs,
) -> RunResult:
    """Simulate one point through the result cache.

    Same contract as :func:`repro.simulate.simulate`; on a cache hit
    the stored result is returned without building a machine.  Pass
    ``cache=False`` (or set ``REPRO_NO_CACHE``) to force a live run.

    A live :class:`~repro.telemetry.Telemetry` forces a live run (the
    cache stores aggregates, not timelines) but still feeds the cache:
    the result entry is written as usual and the telemetry summary goes
    to a ``<key>.telemetry.json`` sidecar, leaving run keys and the
    result schema untouched.

    The access engine is non-semantic, so the run key is the same for
    all three engines and any cached entry satisfies the point — but
    only *exact*-tier engines (scalar, batched: bit-identical results)
    may write entries.  The statistical vector tier reads the cache and
    never feeds it (see docs/engines.md).
    """
    if config is None:
        config = experiment_config()
    if workload_kwargs and isinstance(workload, str):
        workload = make_workload(workload, **workload_kwargs)
    live_tel = telemetry if telemetry is not None and telemetry.enabled \
        else None
    store = resolve_cache(cache)
    key = _point_key(design, workload, config, store,
                     fault_schedule=fault_schedule)
    if key is not None and live_tel is None:
        t0 = time.perf_counter()
        hit = store.load(key)
        if hit is not None:
            _record_history(hit, workload, config, key,
                            time.perf_counter() - t0)
            return hit
    if live_tel is not None or fault_schedule:
        result = _live_simulate(design, workload, config, telemetry=live_tel,
                                fault_schedule=fault_schedule)
    else:
        # positional-only call keeps older _live_simulate stubs working
        result = _live_simulate(design, workload, config)
    if key is not None and engine_tier(config.memory.access_engine) == "exact":
        store.store(key, result, meta={
            "design": design,
            "workload": getattr(workload, "name", str(workload)),
        })
        if result.telemetry is not None:
            store.store_telemetry(key, result.telemetry.to_dict())
    return result


# ----------------------------------------------------------------------
# sweep points and outcomes
# ----------------------------------------------------------------------
@dataclass
class SweepPoint:
    """One (design, workload, config) cell of a sweep grid."""

    design: str
    workload: Union[str, Workload]
    config: Optional[SystemConfig] = None
    workload_kwargs: Dict[str, Any] = field(default_factory=dict)
    label: str = ""
    #: optional repro.faults.FaultSchedule; joins the point's run key.
    fault_schedule: Any = None

    def __post_init__(self) -> None:
        if not self.label:
            name = (
                self.workload if isinstance(self.workload, str)
                else getattr(self.workload, "name", type(self.workload).__name__)
            )
            self.label = f"{self.design}/{name}"

    def resolved_config(self) -> SystemConfig:
        return self.config if self.config is not None else experiment_config()

    def materialize(self) -> Workload:
        if isinstance(self.workload, str):
            return make_workload(self.workload, **self.workload_kwargs)
        return self.workload


@dataclass
class PointOutcome:
    """What happened to one sweep point."""

    point: SweepPoint
    result: Optional[RunResult] = None
    #: "cache" | "run" | "retry" | "failed"
    source: str = "run"
    key: Optional[str] = None
    error: Optional[str] = None
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.result is not None


@dataclass
class SweepReport:
    """Everything a sweep produced, in input-point order."""

    outcomes: List[PointOutcome]
    elapsed_s: float = 0.0
    cache: Optional[ResultCache] = None

    @property
    def failures(self) -> List[PointOutcome]:
        return [o for o in self.outcomes if not o.ok]

    def results(self) -> Dict[str, Dict[str, RunResult]]:
        """Successful results as ``{workload: {design: RunResult}}``."""
        grid: Dict[str, Dict[str, RunResult]] = {}
        for o in self.outcomes:
            if o.ok:
                grid.setdefault(o.result.workload, {})[o.result.design] = o.result
        return grid

    def summary(self) -> str:
        hit = sum(1 for o in self.outcomes if o.source == "cache")
        ran = sum(1 for o in self.outcomes if o.source in ("run", "retry"))
        line = (
            f"{len(self.outcomes)} points in {self.elapsed_s:.1f}s "
            f"({hit} cached, {ran} simulated, {len(self.failures)} failed)"
        )
        if self.cache is not None:
            line += f"; cache: {self.cache.stats.summary()}"
        return line


# ----------------------------------------------------------------------
# the parallel worker (module-level: must be picklable by Pool)
# ----------------------------------------------------------------------
def _worker(payload: Tuple) -> Tuple[int, Optional[Dict], Optional[str], float]:
    """Simulate one point in a worker process.

    Returns ``(index, result_dict, error_traceback, elapsed_s)`` —
    exactly one of result/error is set.  Never raises: a crashing
    point is reported, not fatal.
    """
    idx, design, wl_spec, config, fault_schedule = payload
    t0 = time.time()
    try:
        if wl_spec[0] == "factory":
            workload = make_workload(wl_spec[1], **wl_spec[2])
        else:
            workload = wl_spec[1]
        result = _live_simulate(design, workload, config,
                                fault_schedule=fault_schedule)
        return idx, result_to_dict(result), None, time.time() - t0
    except BaseException:
        return idx, None, traceback.format_exc(), time.time() - t0


def _worker_payload(idx: int, point: SweepPoint) -> Tuple:
    if isinstance(point.workload, str):
        spec = ("factory", point.workload, dict(point.workload_kwargs))
    else:
        spec = ("object", point.workload)
    return (idx, point.design, spec, point.resolved_config(),
            point.fault_schedule)


# ----------------------------------------------------------------------
class SweepRunner:
    """Fans a grid of sweep points out over processes, through the cache.

    ``jobs=None`` uses every core (bounded by the number of pending
    points); ``jobs=1`` (or a single pending point) runs serially in
    this process.  Cache hits are resolved up front in the parent, so
    workers only ever see genuine misses.  Each failed point is retried
    once, serially in the parent (where its traceback is easiest to
    read); a point that fails twice is recorded in the report and the
    sweep continues.

    Two progress channels, both optional and both fed from the parent
    process: ``progress`` receives the legacy per-point text lines,
    ``events`` receives typed
    :class:`~repro.observatory.progress.ProgressEvent` objects
    (begin / started / cached / done / retried / failed / end) — the
    feed behind the live TTY status line and ``--progress-jsonl``.
    A consumer that raises is disabled, never fatal.

    ``runtime`` selects the execution context (see
    :mod:`repro.sweep.runtime`): the default ``None`` builds a private
    warm :class:`~repro.sweep.runtime.WorkerRuntime` for the run
    (persistent pool, per-process memo caches, shared-memory workload
    store, history-informed LPT dispatch — all bit-identical to cold
    execution) and closes it afterwards; an injected runtime is shared
    across calls and left open, so multi-sweep drivers stop paying
    pool startup and memo warmup per sweep; ``runtime=False`` forces
    the legacy cold fork-per-point path.
    """

    def __init__(
        self,
        cache: CacheLike = "default",
        jobs: Optional[int] = None,
        retries: int = 1,
        progress: Optional[ProgressFn] = None,
        events: Optional[EventFn] = None,
        runtime: RuntimeLike = None,
    ):
        self.cache = resolve_cache(cache)
        self.jobs = jobs
        self.retries = retries
        self.progress = progress
        self.events = events
        self.runtime = runtime

    def _resolve_runtime(self) -> Tuple[Optional[WorkerRuntime], bool]:
        """(runtime, owned) for one run — see :data:`RuntimeLike`."""
        if self.runtime is None:
            return WorkerRuntime(jobs=self.jobs), True
        if self.runtime is False:
            return None, False
        return self.runtime, False

    # ------------------------------------------------------------------
    def _say(self, msg: str) -> None:
        if self.progress is not None:
            self.progress(msg)

    def _emit(self, **kwargs) -> None:
        if self.events is None:
            return
        try:
            self.events(ProgressEvent(**kwargs))
        except Exception:
            self.events = None  # a broken consumer never fails the sweep

    def _run_serial_once(self, point: SweepPoint) -> RunResult:
        # materialize_point memoizes inside a warm scope and is exactly
        # point.materialize() in a cold one.
        if point.fault_schedule:
            return _live_simulate(
                point.design, materialize_point(point),
                point.resolved_config(),
                fault_schedule=point.fault_schedule,
            )
        # positional-only call keeps older _live_simulate stubs working
        return _live_simulate(
            point.design, materialize_point(point), point.resolved_config()
        )

    def _retry(self, outcome: PointOutcome, done: int, total: int) -> None:
        """One serial retry for a point that crashed."""
        for _ in range(self.retries):
            t0 = time.time()
            try:
                outcome.result = self._run_serial_once(outcome.point)
                outcome.source = "retry"
                outcome.error = None
                outcome.elapsed_s = time.time() - t0
                self._say(
                    f"[{done}/{total}] {outcome.point.label:16} "
                    f"retried ok ({outcome.elapsed_s:.1f}s)"
                )
                self._emit(event="retried", label=outcome.point.label,
                           done=done, total=total, source="retry",
                           elapsed_s=outcome.elapsed_s)
                return
            except BaseException:
                outcome.error = traceback.format_exc()
        outcome.source = "failed"
        self._say(
            f"[{done}/{total}] {outcome.point.label:16} "
            f"FAILED after retry: {outcome.error.strip().splitlines()[-1]}"
        )
        self._emit(event="failed", label=outcome.point.label, done=done,
                   total=total, source="failed", error=outcome.error or "")

    # ------------------------------------------------------------------
    def run(self, points: Sequence[SweepPoint]) -> SweepReport:
        t_start = time.time()
        points = list(points)
        total = len(points)
        outcomes = [PointOutcome(point=p) for p in points]
        planned = self.jobs if self.jobs is not None else os.cpu_count() or 1
        self._emit(event="begin", total=total, jobs=max(1, planned))

        # 1. resolve cache hits in the parent
        pending: List[int] = []
        done = 0
        for i, (point, outcome) in enumerate(zip(points, outcomes)):
            outcome.key = _point_key(
                point.design, point.workload, point.resolved_config(),
                self.cache, fault_schedule=point.fault_schedule,
            )
            t0 = time.time()
            hit = self.cache.load(outcome.key) if outcome.key else None
            if hit is not None:
                outcome.result = hit
                outcome.source = "cache"
                done += 1
                self._say(f"[{done}/{total}] {point.label:16} cached")
                self._emit(event="cached", label=point.label, index=i,
                           done=done, total=total, source="cache")
                _record_history(hit, point.workload,
                                point.resolved_config(), outcome.key,
                                time.time() - t0)
            else:
                pending.append(i)

        # 2. simulate the misses (parallel when it pays).  A warm
        # runtime (the default) adds per-process memo caches, the
        # shared workload store, a persistent pool, and LPT dispatch
        # ordering — all result-neutral; ``runtime=False`` keeps the
        # legacy cold fork-per-point path bit for bit.
        jobs = self.jobs if self.jobs is not None else os.cpu_count() or 1
        jobs = max(1, min(jobs, len(pending)))
        runtime, owns_runtime = self._resolve_runtime()
        try:
            if jobs <= 1:
                scope = runtime.activate() if runtime is not None \
                    else contextlib.nullcontext()
                with scope:
                    for i in pending:
                        outcome = outcomes[i]
                        self._emit(event="started", label=points[i].label,
                                   index=i, done=done, total=total)
                        t0 = time.time()
                        try:
                            outcome.result = self._run_serial_once(points[i])
                            outcome.source = "run"
                            outcome.elapsed_s = time.time() - t0
                            done += 1
                            self._say(
                                f"[{done}/{total}] {points[i].label:16} "
                                f"ran {outcome.elapsed_s:.1f}s"
                            )
                            self._emit(event="done", label=points[i].label,
                                       index=i, done=done, total=total,
                                       source="run",
                                       elapsed_s=outcome.elapsed_s)
                        except BaseException:
                            outcome.error = traceback.format_exc()
                            done += 1
                            self._say(
                                f"[{done}/{total}] {points[i].label:16} "
                                f"crashed, retrying"
                            )
                            self._retry(outcome, done, total)
            elif pending:
                order = pending
                if runtime is not None:
                    # History-informed LPT: dispatch predicted-slowest
                    # points first so the pool tail shrinks.  Dispatch
                    # order only — outcomes stay input-indexed.
                    by_lpt = lpt_order([points[i] for i in pending])
                    order = [pending[j] for j in by_lpt]
                for i in pending:
                    self._emit(event="started", label=points[i].label,
                               index=i, done=done, total=total)
                failed: List[int] = []
                with contextlib.ExitStack() as stack:
                    if runtime is not None:
                        with runtime.activate():
                            payloads = [
                                runtime.worker_payload(i, points[i])
                                for i in order
                            ]
                        pool = runtime.pool(jobs)
                        work = _warm_worker
                    else:
                        payloads = [
                            _worker_payload(i, points[i]) for i in order
                        ]
                        pool = stack.enter_context(
                            multiprocessing.Pool(processes=jobs)
                        )
                        work = _worker
                    for idx, rdict, err, dt in pool.imap_unordered(
                        work, payloads
                    ):
                        outcome = outcomes[idx]
                        outcome.elapsed_s = dt
                        done += 1
                        if rdict is not None:
                            outcome.result = result_from_dict(rdict)
                            outcome.source = "run"
                            self._say(
                                f"[{done}/{total}] {points[idx].label:16} "
                                f"ran {dt:.1f}s"
                            )
                            self._emit(event="done",
                                       label=points[idx].label,
                                       index=idx, done=done, total=total,
                                       source="run", elapsed_s=dt)
                        else:
                            outcome.error = err
                            failed.append(idx)
                            self._say(
                                f"[{done}/{total}] {points[idx].label:16} "
                                f"crashed, will retry"
                            )
                for idx in failed:
                    self._retry(outcomes[idx], done, total)
        finally:
            if owns_runtime and runtime is not None:
                runtime.close()

        # 3. feed the cache (exact-tier runs only: vector results are
        # statistical and must never serve a later exact-tier hit)
        if self.cache is not None:
            for outcome in outcomes:
                if (outcome.ok and outcome.key
                        and outcome.source != "cache"
                        and engine_tier(
                            outcome.point.resolved_config()
                            .memory.access_engine) == "exact"):
                    self.cache.store(
                        outcome.key, outcome.result,
                        meta={
                            "design": outcome.point.design,
                            "workload": outcome.result.workload,
                        },
                    )

        elapsed = time.time() - t_start
        self._emit(event="end", done=done, total=total, elapsed_s=elapsed)
        return SweepReport(
            outcomes=outcomes,
            elapsed_s=elapsed,
            cache=self.cache,
        )


# ----------------------------------------------------------------------
def run_point(
    design: str,
    workload: Union[str, Workload],
    config: Optional[SystemConfig] = None,
    cache: CacheLike = "default",
    **workload_kwargs,
) -> PointOutcome:
    """One point through the cache, with failure capture."""
    point = SweepPoint(
        design=design, workload=workload, config=config,
        workload_kwargs=workload_kwargs,
    )
    runner = SweepRunner(cache=cache, jobs=1)
    return runner.run([point]).outcomes[0]


def matrix_points(
    designs: Optional[Sequence[str]] = None,
    workloads: Optional[Sequence[str]] = None,
    config: Optional[SystemConfig] = None,
) -> List[SweepPoint]:
    """The full (design x workload) grid of the paper's Figures 6-8."""
    from repro.simulate import ALL_DESIGNS, ALL_WORKLOADS

    designs = list(designs or ALL_DESIGNS)
    workloads = list(workloads or ALL_WORKLOADS)
    return [
        SweepPoint(design=d, workload=w, config=config)
        for w in workloads
        for d in designs
    ]


def run_matrix(
    designs: Optional[Sequence[str]] = None,
    workloads: Optional[Sequence[str]] = None,
    config: Optional[SystemConfig] = None,
    cache: CacheLike = "default",
    jobs: Optional[int] = None,
    progress: Optional[ProgressFn] = None,
    events: Optional[EventFn] = None,
    runtime: RuntimeLike = None,
) -> SweepReport:
    """Run the full design/workload matrix, parallel and cached.

    Pass a shared :class:`~repro.sweep.runtime.WorkerRuntime` to keep
    its worker pool and memo caches warm across several matrices.
    """
    runner = SweepRunner(cache=cache, jobs=jobs, progress=progress,
                         events=events, runtime=runtime)
    return runner.run(matrix_points(designs, workloads, config))
