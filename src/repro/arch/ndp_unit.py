"""Per-NDP-unit execution state: cores, clocks, and load counters.

An NDP unit (Section 3.2) couples one DRAM channel with a handful of
simple in-order cores, an L1, a prefetch buffer, and a task queue.  This
module holds the *dynamic* state the executor mutates while draining a
timestamp: per-core ready times, the active-cycle meter behind Figure 9,
and the workload counter ``W_u`` behind the load-imbalance score
(Equation 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.arch.l1cache import L1Cache
from repro.arch.prefetch import PrefetchBuffer
from repro.config import SystemConfig


@dataclass
class NdpUnit:
    """Dynamic state of one NDP unit during simulation."""

    unit_id: int
    num_cores: int
    l1: L1Cache
    prefetch: PrefetchBuffer
    # Absolute cycle at which each core becomes free within the current
    # timestamp phase.
    core_free_at: np.ndarray = field(default=None)  # type: ignore[assignment]
    # Cycles each core actually spent executing tasks (Figure 9 metric).
    active_cycles: float = 0.0
    core_active: np.ndarray = field(default=None)  # type: ignore[assignment]
    tasks_executed: int = 0

    def __post_init__(self) -> None:
        if self.core_free_at is None:
            self.core_free_at = np.zeros(self.num_cores, dtype=np.float64)
        if self.core_active is None:
            self.core_active = np.zeros(self.num_cores, dtype=np.float64)

    # ------------------------------------------------------------------
    def run_task(self, duration_cycles: float, start_floor: float = 0.0) -> float:
        """Execute one task on the earliest-free core.

        Returns the completion time of the task.  ``start_floor`` lower-
        bounds the start (e.g. the phase start after a barrier).
        """
        # First-minimum scan: identical pick to np.argmin, without the
        # ufunc dispatch overhead (units have a handful of cores and
        # this is the hottest per-task call in the executor).
        free = self.core_free_at
        core = 0
        best = free[0]
        for c in range(1, self.num_cores):
            if free[c] < best:
                best = free[c]
                core = c
        start = max(float(best), start_floor)
        finish = start + duration_cycles
        self.core_free_at[core] = finish
        self.active_cycles += duration_cycles
        self.core_active[core] += duration_cycles
        self.tasks_executed += 1
        return finish

    def busy_until(self) -> float:
        """Cycle at which the last core finishes its queued work."""
        return float(self.core_free_at.max())

    def earliest_free(self) -> float:
        return float(self.core_free_at.min())

    def reset_clocks(self, now: float = 0.0) -> None:
        """Re-align the cores at a barrier."""
        self.core_free_at[:] = now

    def end_timestamp(self) -> None:
        """Bulk invalidation at the timestamp barrier (Section 4.4).

        Primary data are updated in bulk at the barrier, so both the L1
        and the prefetch buffer drop their (now stale) read-only copies.
        """
        self.l1.invalidate_all()
        self.prefetch.invalidate_all()


def build_units(config: SystemConfig) -> List[NdpUnit]:
    """Construct the dynamic state for every unit in the system."""
    units = []
    for uid in range(config.num_units):
        units.append(
            NdpUnit(
                unit_id=uid,
                num_cores=config.core.cores_per_unit,
                l1=L1Cache.from_config(config.sram, config.memory),
                prefetch=PrefetchBuffer.from_config(config.sram, config.memory),
            )
        )
    return units
