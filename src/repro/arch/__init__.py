"""Hardware substrate: topology, interconnect, DRAM, SRAM, NDP units.

These modules model the baseline NDP machine of Section 3.2 — the parts
of the system that exist with or without the ABNDP optimizations.
"""

from repro.arch.topology import Topology
from repro.arch.noc import Interconnect, AccessClass
from repro.arch.dram import DramChannel
from repro.arch.sram import SramModel, sram_area_mm2
from repro.arch.memory_map import MemoryMap, Allocator, DataRegion
from repro.arch.energy import EnergyModel, EnergyBreakdown

__all__ = [
    "Topology",
    "Interconnect",
    "AccessClass",
    "DramChannel",
    "SramModel",
    "sram_area_mm2",
    "MemoryMap",
    "Allocator",
    "DataRegion",
    "EnergyModel",
    "EnergyBreakdown",
]
