"""Interconnect model: intra-stack crossbar + inter-stack 2D mesh.

Provides the three-way access classification used everywhere in the
paper (local / intra-stack / inter-stack, Equation 2), the latency and
energy of moving a cacheline between two NDP units, and the precomputed
(N, N) *distance-cost matrix* the schedulers score against.

Hop accounting: Figure 8 reports remote accesses as the total number of
inter-stack mesh hops.  :class:`TrafficMeter` counts the hops of every
path segment a request/response travels so that benchmarks can report
the same metric.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.arch.topology import Topology
from repro.config import MemoryConfig, NocConfig


class AccessClass(enum.Enum):
    """Where the target of an access lives relative to the requester."""

    LOCAL = "local"
    INTRA_STACK = "intra"
    INTER_STACK = "inter"


@dataclass
class TrafficMeter:
    """Accumulates interconnect traffic for one simulation run."""

    inter_hops: int = 0
    intra_transfers: int = 0
    local_accesses: int = 0
    inter_bits: int = 0
    intra_bits: int = 0
    messages: int = 0

    def merge(self, other: "TrafficMeter") -> None:
        self.inter_hops += other.inter_hops
        self.intra_transfers += other.intra_transfers
        self.local_accesses += other.local_accesses
        self.inter_bits += other.inter_bits
        self.intra_bits += other.intra_bits
        self.messages += other.messages

    def reset(self) -> None:
        self.inter_hops = 0
        self.intra_transfers = 0
        self.local_accesses = 0
        self.inter_bits = 0
        self.intra_bits = 0
        self.messages = 0


class Interconnect:
    """Latency/energy/cost model of the two-level memory network."""

    def __init__(self, topology: Topology, noc: NocConfig, memory: MemoryConfig):
        self.topology = topology
        self.noc = noc
        self.memory = memory
        self._cost = self._build_cost_matrix()

    def _build_cost_matrix(self) -> np.ndarray:
        """(N, N) scheduling distance costs (Equation 2 terms)."""
        hops = self.topology.inter_hops.astype(np.float64)
        cost = hops * self.noc.d_inter
        same_stack = self.topology.same_stack
        n = self.topology.num_units
        eye = np.eye(n, dtype=bool)
        cost[same_stack & ~eye] = self.noc.d_intra
        cost[eye] = self.noc.d_local
        return cost

    @property
    def cost_matrix(self) -> np.ndarray:
        """Read-only (N, N) distance-cost matrix."""
        v = self._cost.view()
        v.flags.writeable = False
        return v

    # ------------------------------------------------------------------
    # classification
    # ------------------------------------------------------------------
    def classify(self, src: int, dst: int) -> AccessClass:
        if src == dst:
            return AccessClass.LOCAL
        if self.topology.is_intra_stack(src, dst):
            return AccessClass.INTRA_STACK
        return AccessClass.INTER_STACK

    def distance_cost(self, src: int, dst: int) -> float:
        """Scheduling cost of the (src, dst) pair (Equation 2)."""
        return float(self._cost[src, dst])

    # ------------------------------------------------------------------
    # latency
    # ------------------------------------------------------------------
    def one_way_latency_ns(self, src: int, dst: int) -> float:
        """Time for one message to travel from ``src`` to ``dst``.

        An inter-stack message first crosses the source crossbar to the
        stack router, rides the mesh, then crosses the destination
        crossbar; an intra-stack message pays a single crossbar hop.
        """
        if src == dst:
            return 0.0
        if self.topology.is_intra_stack(src, dst):
            return self.noc.intra_hop_ns
        hops = self.topology.hops_between(src, dst)
        return 2 * self.noc.intra_hop_ns + hops * self.noc.inter_hop_ns

    def round_trip_latency_ns(self, src: int, dst: int) -> float:
        """Request + response latency between two units."""
        return 2.0 * self.one_way_latency_ns(src, dst)

    # ------------------------------------------------------------------
    # traffic accounting
    # ------------------------------------------------------------------
    def record_transfer(
        self, meter: TrafficMeter, src: int, dst: int, bits: int | None = None
    ) -> None:
        """Account one message of ``bits`` payload travelling src -> dst.

        ``bits`` defaults to one cacheline.  Local "transfers" are counted
        but move no interconnect bits.
        """
        if bits is None:
            bits = self.memory.line_bits
        meter.messages += 1
        if src == dst:
            meter.local_accesses += 1
            return
        if self.topology.is_intra_stack(src, dst):
            meter.intra_transfers += 1
            meter.intra_bits += bits
            return
        hops = self.topology.hops_between(src, dst)
        meter.inter_hops += hops
        meter.inter_bits += bits * hops
        # Mesh endpoints also cross the two stack crossbars.
        meter.intra_transfers += 2
        meter.intra_bits += 2 * bits

    def record_round_trip(
        self,
        meter: TrafficMeter,
        src: int,
        dst: int,
        request_bits: int = 128,
        response_bits: int | None = None,
    ) -> None:
        """Account a request message plus a cacheline-sized response."""
        self.record_transfer(meter, src, dst, request_bits)
        self.record_transfer(meter, dst, src, response_bits)

    # ------------------------------------------------------------------
    # energy
    # ------------------------------------------------------------------
    def energy_pj(self, meter: TrafficMeter) -> float:
        """Dynamic interconnect energy for the accumulated traffic."""
        return (
            meter.inter_bits * self.noc.inter_pj_per_bit
            + meter.intra_bits * self.noc.intra_pj_per_bit
        )
