"""Interconnect model: intra-stack crossbar + inter-stack 2D mesh.

Provides the three-way access classification used everywhere in the
paper (local / intra-stack / inter-stack, Equation 2), the latency and
energy of moving a cacheline between two NDP units, and the precomputed
(N, N) *distance-cost matrix* the schedulers score against.

Hop accounting: Figure 8 reports remote accesses as the total number of
inter-stack mesh hops.  :class:`TrafficMeter` counts the hops of every
path segment a request/response travels so that benchmarks can report
the same metric.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro.arch.topology import Topology
from repro.config import MemoryConfig, NocConfig


def _norm_link(link: Tuple[int, int]) -> Tuple[int, int]:
    """Canonical (a, b) form of an undirected mesh link."""
    a, b = int(link[0]), int(link[1])
    return (a, b) if a <= b else (b, a)


class AccessClass(enum.Enum):
    """Where the target of an access lives relative to the requester."""

    LOCAL = "local"
    INTRA_STACK = "intra"
    INTER_STACK = "inter"


@dataclass
class TrafficMeter:
    """Accumulates interconnect traffic for one simulation run."""

    inter_hops: int = 0
    intra_transfers: int = 0
    local_accesses: int = 0
    inter_bits: int = 0
    intra_bits: int = 0
    messages: int = 0

    def merge(self, other: "TrafficMeter") -> None:
        self.inter_hops += other.inter_hops
        self.intra_transfers += other.intra_transfers
        self.local_accesses += other.local_accesses
        self.inter_bits += other.inter_bits
        self.intra_bits += other.intra_bits
        self.messages += other.messages

    def reset(self) -> None:
        self.inter_hops = 0
        self.intra_transfers = 0
        self.local_accesses = 0
        self.inter_bits = 0
        self.intra_bits = 0
        self.messages = 0

    def add_bulk(
        self,
        messages: int = 0,
        local_accesses: int = 0,
        intra_transfers: int = 0,
        intra_bits: int = 0,
        inter_hops: int = 0,
        inter_bits: int = 0,
    ) -> None:
        """Fold a batch worth of pre-aggregated traffic into the meter.

        Integer counters are order-insensitive, so the batched access
        engine accumulates a whole hint batch in Python ints and flushes
        once — same totals as per-message :meth:`merge`/``+=`` booking.
        """
        self.messages += messages
        self.local_accesses += local_accesses
        self.intra_transfers += intra_transfers
        self.intra_bits += intra_bits
        self.inter_hops += inter_hops
        self.inter_bits += inter_bits


class LinkMeter:
    """Per-link traffic attribution for the telemetry heatmaps.

    Two granularities accumulate on every metered message:

    * ``unit_matrix`` / ``unit_bits`` — an (N, N) matrix of message
      counts / payload bits per (source unit, destination unit) pair:
      the all-to-all heatmap behind ``analysis.plotting.heatmap``;
    * ``link_flits`` — flit counts per *directed physical mesh link*,
      attributing each inter-stack message to the links its dimension-
      ordered (XY: columns first, then rows) route traverses.  This is
      the per-link congestion view the aggregate hop counter cannot
      give: two meshes with identical total hops can differ wildly in
      their hottest link.

    The meter is optional and attached by
    :meth:`Interconnect.enable_link_metering`; without it the traffic
    hot path pays a single ``is None`` test.
    """

    #: one flit carries a control message; a cacheline is several.
    FLIT_BITS = 128

    def __init__(self, topology: Topology):
        self.topology = topology
        n = topology.num_units
        self.unit_matrix = np.zeros((n, n), dtype=np.int64)
        self.unit_bits = np.zeros((n, n), dtype=np.int64)
        #: (src_stack, dst_stack) adjacent pair -> flits carried.
        self.link_flits: Dict[Tuple[int, int], int] = {}
        #: fault-aware route provider, set by the interconnect while
        #: link faults are active: ``router(s_src, s_dst)`` returns the
        #: stack sequence (endpoints included) or None when the pair is
        #: unreachable.  With no router, routes are dimension-ordered XY.
        self.router: Optional[
            Callable[[int, int], Optional[Tuple[int, ...]]]
        ] = None

    # ------------------------------------------------------------------
    def record(self, src: int, dst: int, bits: int) -> None:
        self.unit_matrix[src, dst] += 1
        self.unit_bits[src, dst] += bits
        topo = self.topology
        s_src, s_dst = topo.stack_of(src), topo.stack_of(dst)
        if s_src == s_dst:
            return
        flits = max(1, -(-bits // self.FLIT_BITS))  # ceil division
        if self.router is not None:
            # Faulted mesh: attribute along the actual (rerouted) path,
            # so dead links never accumulate flits.
            path = self.router(s_src, s_dst)
            if path is None:
                return  # unreachable: no flits travelled
            for here, nxt in zip(path, path[1:]):
                key = (here, nxt)
                self.link_flits[key] = self.link_flits.get(key, 0) + flits
            return
        r, c = topo.stack_coords(s_src)
        r_dst, c_dst = topo.stack_coords(s_dst)
        here = s_src
        while (r, c) != (r_dst, c_dst):
            if c != c_dst:
                c += 1 if c_dst > c else -1
            else:
                r += 1 if r_dst > r else -1
            nxt = topo.stack_at(r, c)
            key = (here, nxt)
            self.link_flits[key] = self.link_flits.get(key, 0) + flits
            here = nxt

    # ------------------------------------------------------------------
    def stack_matrix(self) -> np.ndarray:
        """(num_stacks, num_stacks) flit counts over the metered links.

        Only adjacent pairs are non-zero — the matrix is a rendering-
        friendly view of :attr:`link_flits`.
        """
        m = np.zeros(
            (self.topology.num_stacks, self.topology.num_stacks),
            dtype=np.int64,
        )
        for (a, b), flits in self.link_flits.items():
            m[a, b] = flits
        return m

    def hottest_links(self, top: int = 8) -> List[Tuple[int, int, int]]:
        """The ``top`` busiest directed mesh links as (src, dst, flits)."""
        ranked = sorted(
            self.link_flits.items(), key=lambda kv: kv[1], reverse=True
        )
        return [(a, b, flits) for (a, b), flits in ranked[:top]]

    def total_link_flits(self) -> int:
        return sum(self.link_flits.values())


class Interconnect:
    """Latency/energy/cost model of the two-level memory network."""

    def __init__(self, topology: Topology, noc: NocConfig, memory: MemoryConfig):
        self.topology = topology
        self.noc = noc
        self.memory = memory
        self._cost = self._build_cost_matrix()
        #: per-link meter, attached only when telemetry wants it.
        self.link_meter: Optional[LinkMeter] = None
        # Link-fault state (see set_link_faults).  While inactive the
        # hot paths pay a single ``is None`` test and behave exactly as
        # the healthy mesh.
        self._dead_links: frozenset = frozenset()
        self._link_scale: Dict[Tuple[int, int], float] = {}
        #: (S, S) effective mesh hops under faults; -1 = unreachable.
        self._fault_hops: Optional[np.ndarray] = None
        #: (S, S) mesh traversal cost/latency (ns) under faults; inf =
        #: unreachable.  Doubles as the scheduling-cost contribution.
        self._fault_mesh_ns: Optional[np.ndarray] = None
        self._fault_routes: Dict[Tuple[int, int], Optional[Tuple[int, ...]]] = {}
        # Dense lookup tables for the batched access engine (see
        # fast_tables()); rebuilt lazily after any fault transition.
        self._fast_tables: Optional[
            Tuple[List[List[float]], List[List[int]], List[List[int]]]
        ] = None
        # Same tables as (N, N) ndarrays for the vector phase engine's
        # bulk gathers; cached and invalidated alongside _fast_tables.
        self._fast_arrays: Optional[
            Tuple[np.ndarray, np.ndarray, np.ndarray]
        ] = None
        #: bumped on every link-fault set/clear so engines holding
        #: derived per-line memos know to drop them.
        self.fault_epoch: int = 0

    def _build_cost_matrix(self) -> np.ndarray:
        """(N, N) scheduling distance costs (Equation 2 terms)."""
        hops = self.topology.inter_hops.astype(np.float64)
        cost = hops * self.noc.d_inter
        same_stack = self.topology.same_stack
        n = self.topology.num_units
        eye = np.eye(n, dtype=bool)
        cost[same_stack & ~eye] = self.noc.d_intra
        cost[eye] = self.noc.d_local
        return cost

    @property
    def cost_matrix(self) -> np.ndarray:
        """Read-only (N, N) distance-cost matrix."""
        v = self._cost.view()
        v.flags.writeable = False
        return v

    def enable_link_metering(self) -> LinkMeter:
        """Attach (or return the existing) per-link traffic meter."""
        if self.link_meter is None:
            self.link_meter = LinkMeter(self.topology)
            if self._fault_hops is not None:
                self.link_meter.router = self.route_stacks
        return self.link_meter

    # ------------------------------------------------------------------
    # link faults (fault-injection subsystem)
    # ------------------------------------------------------------------
    @property
    def has_link_faults(self) -> bool:
        return self._fault_hops is not None

    def set_link_faults(
        self,
        dead_links: Iterable[Tuple[int, int]],
        degraded: Optional[Mapping[Tuple[int, int], float]] = None,
    ) -> None:
        """Route around failed mesh links and degrade slow ones.

        ``dead_links`` are undirected adjacent stack pairs removed from
        the mesh; ``degraded`` maps surviving links to a per-hop latency
        multiplier.  Routes become minimal paths over the surviving
        links (the hardware's fallback to non-XY detours); the
        scheduling cost matrix is rebuilt *in place* so every
        ``SchedulerContext`` holding a view sees the new distances.
        Unreachable pairs get infinite cost / -1 hops — callers must
        check :meth:`is_reachable` before paying latency.
        """
        dead = frozenset(_norm_link(lk) for lk in dead_links)
        scale = {
            _norm_link(lk): float(f)
            for lk, f in (degraded or {}).items()
            if float(f) != 1.0
        }
        if not dead and not scale:
            self.clear_link_faults()
            return
        self._dead_links = dead
        self._link_scale = scale
        self._fault_hops, self._fault_mesh_ns = self._solve_mesh_routes()
        self._fault_routes.clear()
        self._fast_tables = None
        self._fast_arrays = None
        self.fault_epoch += 1
        self._rebuild_cost_in_place()
        if self.link_meter is not None:
            self.link_meter.router = self.route_stacks

    def clear_link_faults(self) -> None:
        """Restore the healthy mesh (all links up, unit multipliers)."""
        self._dead_links = frozenset()
        self._link_scale = {}
        self._fault_hops = None
        self._fault_mesh_ns = None
        self._fault_routes.clear()
        self._fast_tables = None
        self._fast_arrays = None
        self.fault_epoch += 1
        self._rebuild_cost_in_place()
        if self.link_meter is not None:
            self.link_meter.router = None

    def _link_weight_ns(self, a: int, b: int) -> float:
        """Latency of one mesh hop over the (surviving) link (a, b)."""
        return self.noc.inter_hop_ns * self._link_scale.get(
            _norm_link((a, b)), 1.0
        )

    def _solve_mesh_routes(self) -> Tuple[np.ndarray, np.ndarray]:
        """All-pairs shortest paths over the surviving weighted links.

        Returns ``(hops, mesh_ns)`` stack-level matrices.  Meshes are
        tiny (S <= a few hundred), so a per-source Dijkstra is plenty.
        """
        topo = self.topology
        S = topo.num_stacks
        hops = np.full((S, S), -1, dtype=np.int64)
        mesh_ns = np.full((S, S), np.inf, dtype=np.float64)
        alive_neighbors: List[List[int]] = [
            [
                n for n in topo.adjacent_stacks(s)
                if _norm_link((s, n)) not in self._dead_links
            ]
            for s in range(S)
        ]
        for src in range(S):
            dist = np.full(S, np.inf)
            nhops = np.full(S, -1, dtype=np.int64)
            dist[src] = 0.0
            nhops[src] = 0
            heap = [(0.0, src)]
            while heap:
                d, here = heapq.heappop(heap)
                if d > dist[here]:
                    continue
                for nxt in alive_neighbors[here]:
                    nd = d + self._link_weight_ns(here, nxt)
                    if nd < dist[nxt] - 1e-12:
                        dist[nxt] = nd
                        nhops[nxt] = nhops[here] + 1
                        heapq.heappush(heap, (nd, nxt))
            hops[src] = nhops
            mesh_ns[src] = dist
        return hops, mesh_ns

    def route_stacks(self, s_src: int, s_dst: int) -> Optional[Tuple[int, ...]]:
        """The stack sequence a message follows under the current faults
        (endpoints included), or None when ``s_dst`` is unreachable.

        Only meaningful while link faults are active; the healthy mesh
        routes XY and callers (the link meter) use the XY walk directly.
        """
        if s_src == s_dst:
            return (s_src,)
        key = (s_src, s_dst)
        cached = self._fault_routes.get(key, False)
        if cached is not False:
            return cached
        mesh_ns = self._fault_mesh_ns
        route: Optional[Tuple[int, ...]] = None
        if mesh_ns is not None and np.isfinite(mesh_ns[s_src, s_dst]):
            # Walk greedily from dst back to src along optimal-distance
            # predecessors (dist[src, prev] + w(prev, here) == dist[src, here]).
            topo = self.topology
            path = [s_dst]
            here = s_dst
            while here != s_src:
                for prev in topo.adjacent_stacks(here):
                    if _norm_link((prev, here)) in self._dead_links:
                        continue
                    if abs(
                        mesh_ns[s_src, prev]
                        + self._link_weight_ns(prev, here)
                        - mesh_ns[s_src, here]
                    ) < 1e-9:
                        path.append(prev)
                        here = prev
                        break
                else:  # pragma: no cover - dijkstra guarantees a predecessor
                    path = None
                    break
            if path is not None:
                route = tuple(reversed(path))
        self._fault_routes[key] = route
        return route

    def is_reachable(self, src: int, dst: int) -> bool:
        """Whether a message can currently travel between two units."""
        if self._fault_hops is None:
            return True
        s_src, s_dst = self.topology.stack_of(src), self.topology.stack_of(dst)
        return bool(self._fault_hops[s_src, s_dst] >= 0)

    def effective_hops(self, src: int, dst: int) -> int:
        """Mesh hops between units under the current faults (-1 when
        unreachable); the healthy Manhattan distance otherwise."""
        if self._fault_hops is None:
            return self.topology.hops_between(src, dst)
        s_src, s_dst = self.topology.stack_of(src), self.topology.stack_of(dst)
        if s_src == s_dst:
            return 0
        return int(self._fault_hops[s_src, s_dst])

    def _rebuild_cost_in_place(self) -> None:
        """Recompute the scheduling cost matrix for the current mesh.

        In place: scheduler contexts hold read-only *views* of this
        array, so mutating the buffer updates every policy's scores.
        """
        topo = self.topology
        fresh = self._build_cost_matrix()
        if self._fault_mesh_ns is not None:
            mesh = self._fault_mesh_ns[
                np.ix_(topo.stack_of_unit, topo.stack_of_unit)
            ]
            inter = ~topo.same_stack
            fresh[inter] = mesh[inter]
        self._cost[...] = fresh

    # ------------------------------------------------------------------
    # classification
    # ------------------------------------------------------------------
    def classify(self, src: int, dst: int) -> AccessClass:
        if src == dst:
            return AccessClass.LOCAL
        if self.topology.is_intra_stack(src, dst):
            return AccessClass.INTRA_STACK
        return AccessClass.INTER_STACK

    def distance_cost(self, src: int, dst: int) -> float:
        """Scheduling cost of the (src, dst) pair (Equation 2)."""
        return float(self._cost[src, dst])

    # ------------------------------------------------------------------
    # latency
    # ------------------------------------------------------------------
    def one_way_latency_ns(self, src: int, dst: int) -> float:
        """Time for one message to travel from ``src`` to ``dst``.

        An inter-stack message first crosses the source crossbar to the
        stack router, rides the mesh, then crosses the destination
        crossbar; an intra-stack message pays a single crossbar hop.
        """
        if src == dst:
            return 0.0
        if self.topology.is_intra_stack(src, dst):
            return self.noc.intra_hop_ns
        if self._fault_mesh_ns is not None:
            s_src = self.topology.stack_of(src)
            s_dst = self.topology.stack_of(dst)
            # inf for unreachable pairs: callers must guard with
            # is_reachable() before paying latency.
            return (
                2 * self.noc.intra_hop_ns
                + float(self._fault_mesh_ns[s_src, s_dst])
            )
        hops = self.topology.hops_between(src, dst)
        return 2 * self.noc.intra_hop_ns + hops * self.noc.inter_hop_ns

    def round_trip_latency_ns(self, src: int, dst: int) -> float:
        """Request + response latency between two units."""
        return 2.0 * self.one_way_latency_ns(src, dst)

    def fast_tables(
        self,
    ) -> Tuple[List[List[float]], List[List[int]], List[List[int]]]:
        """Dense (N, N) lookup tables for the batched access engine.

        Returns ``(one_way_ns, access_class, hops)`` as nested Python
        lists (list indexing beats ndarray item access in tight Python
        loops).  ``access_class`` encodes 0=local / 1=intra / 2=inter;
        ``hops`` holds :meth:`effective_hops` (-1 = unreachable).  Every
        entry is computed with the exact float expressions of
        :meth:`one_way_latency_ns`, vectorized — two-operand IEEE sums
        of the same addends, so the values are bit-identical.  Cached
        until the next link-fault transition.
        """
        if self._fast_tables is not None:
            return self._fast_tables
        topo = self.topology
        n = topo.num_units
        hops = topo.inter_hops
        if self._fault_mesh_ns is not None:
            ix = np.ix_(topo.stack_of_unit, topo.stack_of_unit)
            ow = self._fault_mesh_ns[ix] + 2 * self.noc.intra_hop_ns
            eff = self._fault_hops[ix].copy()
        else:
            ow = hops.astype(np.float64) * self.noc.inter_hop_ns \
                + 2 * self.noc.intra_hop_ns
            eff = hops.copy()
        same = topo.same_stack
        eye = np.eye(n, dtype=bool)
        ow[same & ~eye] = self.noc.intra_hop_ns
        ow[eye] = 0.0
        eff[same] = 0
        cls = np.full((n, n), 2, dtype=np.int64)
        cls[same & ~eye] = 1
        cls[eye] = 0
        self._fast_tables = (ow.tolist(), cls.tolist(), eff.tolist())
        self._fast_arrays = (ow, cls, eff)
        return self._fast_tables

    def fast_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The :meth:`fast_tables` data as (N, N) ndarrays.

        ``(one_way_ns, access_class, hops)`` with the exact same values
        (the tuple is built from the same arrays in one pass), for the
        vector phase engine's bulk fancy-indexed gathers.  Cached until
        the next link-fault transition.
        """
        if self._fast_arrays is None:
            self.fast_tables()
        return self._fast_arrays

    # ------------------------------------------------------------------
    # traffic accounting
    # ------------------------------------------------------------------
    def record_transfer(
        self, meter: TrafficMeter, src: int, dst: int, bits: int | None = None
    ) -> None:
        """Account one message of ``bits`` payload travelling src -> dst.

        ``bits`` defaults to one cacheline.  Local "transfers" are counted
        but move no interconnect bits.
        """
        if bits is None:
            bits = self.memory.line_bits
        meter.messages += 1
        if self.link_meter is not None:
            self.link_meter.record(src, dst, bits)
        if src == dst:
            meter.local_accesses += 1
            return
        if self.topology.is_intra_stack(src, dst):
            meter.intra_transfers += 1
            meter.intra_bits += bits
            return
        hops = self.effective_hops(src, dst)
        if hops < 0:
            # Unreachable under the current link faults: the message is
            # never delivered, so no mesh traffic accrues.  Callers
            # short-circuit such accesses before simulating latency.
            return
        meter.inter_hops += hops
        meter.inter_bits += bits * hops
        # Mesh endpoints also cross the two stack crossbars.
        meter.intra_transfers += 2
        meter.intra_bits += 2 * bits

    def record_round_trip(
        self,
        meter: TrafficMeter,
        src: int,
        dst: int,
        request_bits: int = 128,
        response_bits: int | None = None,
    ) -> None:
        """Account a request message plus a cacheline-sized response."""
        self.record_transfer(meter, src, dst, request_bits)
        self.record_transfer(meter, dst, src, response_bits)

    # ------------------------------------------------------------------
    # energy
    # ------------------------------------------------------------------
    def energy_pj(self, meter: TrafficMeter) -> float:
        """Dynamic interconnect energy for the accumulated traffic."""
        return (
            meter.inter_bits * self.noc.inter_pj_per_bit
            + meter.intra_bits * self.noc.intra_pj_per_bit
        )
