"""Interconnect model: intra-stack crossbar + inter-stack 2D mesh.

Provides the three-way access classification used everywhere in the
paper (local / intra-stack / inter-stack, Equation 2), the latency and
energy of moving a cacheline between two NDP units, and the precomputed
(N, N) *distance-cost matrix* the schedulers score against.

Hop accounting: Figure 8 reports remote accesses as the total number of
inter-stack mesh hops.  :class:`TrafficMeter` counts the hops of every
path segment a request/response travels so that benchmarks can report
the same metric.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.arch.topology import Topology
from repro.config import MemoryConfig, NocConfig


class AccessClass(enum.Enum):
    """Where the target of an access lives relative to the requester."""

    LOCAL = "local"
    INTRA_STACK = "intra"
    INTER_STACK = "inter"


@dataclass
class TrafficMeter:
    """Accumulates interconnect traffic for one simulation run."""

    inter_hops: int = 0
    intra_transfers: int = 0
    local_accesses: int = 0
    inter_bits: int = 0
    intra_bits: int = 0
    messages: int = 0

    def merge(self, other: "TrafficMeter") -> None:
        self.inter_hops += other.inter_hops
        self.intra_transfers += other.intra_transfers
        self.local_accesses += other.local_accesses
        self.inter_bits += other.inter_bits
        self.intra_bits += other.intra_bits
        self.messages += other.messages

    def reset(self) -> None:
        self.inter_hops = 0
        self.intra_transfers = 0
        self.local_accesses = 0
        self.inter_bits = 0
        self.intra_bits = 0
        self.messages = 0


class LinkMeter:
    """Per-link traffic attribution for the telemetry heatmaps.

    Two granularities accumulate on every metered message:

    * ``unit_matrix`` / ``unit_bits`` — an (N, N) matrix of message
      counts / payload bits per (source unit, destination unit) pair:
      the all-to-all heatmap behind ``analysis.plotting.heatmap``;
    * ``link_flits`` — flit counts per *directed physical mesh link*,
      attributing each inter-stack message to the links its dimension-
      ordered (XY: columns first, then rows) route traverses.  This is
      the per-link congestion view the aggregate hop counter cannot
      give: two meshes with identical total hops can differ wildly in
      their hottest link.

    The meter is optional and attached by
    :meth:`Interconnect.enable_link_metering`; without it the traffic
    hot path pays a single ``is None`` test.
    """

    #: one flit carries a control message; a cacheline is several.
    FLIT_BITS = 128

    def __init__(self, topology: Topology):
        self.topology = topology
        n = topology.num_units
        self.unit_matrix = np.zeros((n, n), dtype=np.int64)
        self.unit_bits = np.zeros((n, n), dtype=np.int64)
        #: (src_stack, dst_stack) adjacent pair -> flits carried.
        self.link_flits: Dict[Tuple[int, int], int] = {}
        # (row, col) -> stack id, for walking XY routes.
        self._stack_at = {
            topology.stack_coords(s): s
            for s in range(topology.num_stacks)
        }

    # ------------------------------------------------------------------
    def record(self, src: int, dst: int, bits: int) -> None:
        self.unit_matrix[src, dst] += 1
        self.unit_bits[src, dst] += bits
        topo = self.topology
        s_src, s_dst = topo.stack_of(src), topo.stack_of(dst)
        if s_src == s_dst:
            return
        flits = max(1, -(-bits // self.FLIT_BITS))  # ceil division
        r, c = topo.stack_coords(s_src)
        r_dst, c_dst = topo.stack_coords(s_dst)
        here = s_src
        while (r, c) != (r_dst, c_dst):
            if c != c_dst:
                c += 1 if c_dst > c else -1
            else:
                r += 1 if r_dst > r else -1
            nxt = self._stack_at[(r, c)]
            key = (here, nxt)
            self.link_flits[key] = self.link_flits.get(key, 0) + flits
            here = nxt

    # ------------------------------------------------------------------
    def stack_matrix(self) -> np.ndarray:
        """(num_stacks, num_stacks) flit counts over the metered links.

        Only adjacent pairs are non-zero — the matrix is a rendering-
        friendly view of :attr:`link_flits`.
        """
        m = np.zeros(
            (self.topology.num_stacks, self.topology.num_stacks),
            dtype=np.int64,
        )
        for (a, b), flits in self.link_flits.items():
            m[a, b] = flits
        return m

    def hottest_links(self, top: int = 8) -> List[Tuple[int, int, int]]:
        """The ``top`` busiest directed mesh links as (src, dst, flits)."""
        ranked = sorted(
            self.link_flits.items(), key=lambda kv: kv[1], reverse=True
        )
        return [(a, b, flits) for (a, b), flits in ranked[:top]]

    def total_link_flits(self) -> int:
        return sum(self.link_flits.values())


class Interconnect:
    """Latency/energy/cost model of the two-level memory network."""

    def __init__(self, topology: Topology, noc: NocConfig, memory: MemoryConfig):
        self.topology = topology
        self.noc = noc
        self.memory = memory
        self._cost = self._build_cost_matrix()
        #: per-link meter, attached only when telemetry wants it.
        self.link_meter: Optional[LinkMeter] = None

    def _build_cost_matrix(self) -> np.ndarray:
        """(N, N) scheduling distance costs (Equation 2 terms)."""
        hops = self.topology.inter_hops.astype(np.float64)
        cost = hops * self.noc.d_inter
        same_stack = self.topology.same_stack
        n = self.topology.num_units
        eye = np.eye(n, dtype=bool)
        cost[same_stack & ~eye] = self.noc.d_intra
        cost[eye] = self.noc.d_local
        return cost

    @property
    def cost_matrix(self) -> np.ndarray:
        """Read-only (N, N) distance-cost matrix."""
        v = self._cost.view()
        v.flags.writeable = False
        return v

    def enable_link_metering(self) -> LinkMeter:
        """Attach (or return the existing) per-link traffic meter."""
        if self.link_meter is None:
            self.link_meter = LinkMeter(self.topology)
        return self.link_meter

    # ------------------------------------------------------------------
    # classification
    # ------------------------------------------------------------------
    def classify(self, src: int, dst: int) -> AccessClass:
        if src == dst:
            return AccessClass.LOCAL
        if self.topology.is_intra_stack(src, dst):
            return AccessClass.INTRA_STACK
        return AccessClass.INTER_STACK

    def distance_cost(self, src: int, dst: int) -> float:
        """Scheduling cost of the (src, dst) pair (Equation 2)."""
        return float(self._cost[src, dst])

    # ------------------------------------------------------------------
    # latency
    # ------------------------------------------------------------------
    def one_way_latency_ns(self, src: int, dst: int) -> float:
        """Time for one message to travel from ``src`` to ``dst``.

        An inter-stack message first crosses the source crossbar to the
        stack router, rides the mesh, then crosses the destination
        crossbar; an intra-stack message pays a single crossbar hop.
        """
        if src == dst:
            return 0.0
        if self.topology.is_intra_stack(src, dst):
            return self.noc.intra_hop_ns
        hops = self.topology.hops_between(src, dst)
        return 2 * self.noc.intra_hop_ns + hops * self.noc.inter_hop_ns

    def round_trip_latency_ns(self, src: int, dst: int) -> float:
        """Request + response latency between two units."""
        return 2.0 * self.one_way_latency_ns(src, dst)

    # ------------------------------------------------------------------
    # traffic accounting
    # ------------------------------------------------------------------
    def record_transfer(
        self, meter: TrafficMeter, src: int, dst: int, bits: int | None = None
    ) -> None:
        """Account one message of ``bits`` payload travelling src -> dst.

        ``bits`` defaults to one cacheline.  Local "transfers" are counted
        but move no interconnect bits.
        """
        if bits is None:
            bits = self.memory.line_bits
        meter.messages += 1
        if self.link_meter is not None:
            self.link_meter.record(src, dst, bits)
        if src == dst:
            meter.local_accesses += 1
            return
        if self.topology.is_intra_stack(src, dst):
            meter.intra_transfers += 1
            meter.intra_bits += bits
            return
        hops = self.topology.hops_between(src, dst)
        meter.inter_hops += hops
        meter.inter_bits += bits * hops
        # Mesh endpoints also cross the two stack crossbars.
        meter.intra_transfers += 2
        meter.intra_bits += 2 * bits

    def record_round_trip(
        self,
        meter: TrafficMeter,
        src: int,
        dst: int,
        request_bits: int = 128,
        response_bits: int | None = None,
    ) -> None:
        """Account a request message plus a cacheline-sized response."""
        self.record_transfer(meter, src, dst, request_bits)
        self.record_transfer(meter, dst, src, response_bits)

    # ------------------------------------------------------------------
    # energy
    # ------------------------------------------------------------------
    def energy_pj(self, meter: TrafficMeter) -> float:
        """Dynamic interconnect energy for the accumulated traffic."""
        return (
            meter.inter_bits * self.noc.inter_pj_per_bit
            + meter.intra_bits * self.noc.intra_pj_per_bit
        )
