"""Physical address space, home mapping, and primary-data allocation.

The NDP system exposes a single flat physical address space.  Each NDP
unit owns a contiguous 512 MB slice of it (its *home* memory region);
the unit id of an address is therefore ``addr // capacity_per_unit``.

Applications allocate their *primary data* (Section 3.1) through the
:class:`Allocator`, which implements the paper's baseline data
distribution: "evenly distributes all data elements among the NDP
units" — element ``i`` of a round-robin array lands in unit
``i % num_units``.  A :class:`DataRegion` remembers the address of every
element so that workloads can build exact task hints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.arch.topology import Topology
from repro.config import MemoryConfig


class MemoryMap:
    """Address arithmetic for the flat NDP physical address space."""

    def __init__(self, topology: Topology, memory: MemoryConfig):
        self.topology = topology
        self.memory = memory
        self.unit_capacity = memory.capacity_per_unit
        self.total_capacity = topology.num_units * self.unit_capacity
        self.line_bytes = memory.cacheline_bytes
        self._line_shift = self.line_bytes.bit_length() - 1

    # ------------------------------------------------------------------
    # scalar helpers
    # ------------------------------------------------------------------
    def home_unit(self, addr: int) -> int:
        """NDP unit whose local DRAM stores ``addr``."""
        if not 0 <= addr < self.total_capacity:
            raise ValueError(f"address {addr:#x} outside physical memory")
        return addr // self.unit_capacity

    def line_of(self, addr: int) -> int:
        """Cacheline index (address >> log2(line))."""
        return addr >> self._line_shift

    def line_addr(self, addr: int) -> int:
        """Address of the cacheline containing ``addr``."""
        return (addr >> self._line_shift) << self._line_shift

    # ------------------------------------------------------------------
    # vectorised helpers
    # ------------------------------------------------------------------
    def home_units(self, addrs: np.ndarray) -> np.ndarray:
        return (addrs // self.unit_capacity).astype(np.int64)

    def lines(self, addrs: np.ndarray) -> np.ndarray:
        return (addrs >> self._line_shift).astype(np.int64)

    def unique_lines(self, addrs: np.ndarray) -> np.ndarray:
        """Distinct cachelines touched by a set of addresses."""
        lines = self.lines(np.asarray(addrs, dtype=np.int64))
        if lines.size <= 256:
            # Hint-sized inputs: a Python set + sort beats np.unique's
            # sort machinery several-fold and returns the same sorted
            # distinct values.
            return np.array(sorted(set(lines.tolist())), dtype=np.int64)
        return np.unique(lines)

    def home_of_line(self, line: int) -> int:
        return (line << self._line_shift) // self.unit_capacity

    def homes_of_lines(self, lines: np.ndarray) -> np.ndarray:
        return ((lines.astype(np.int64) << self._line_shift)
                // self.unit_capacity).astype(np.int64)


@dataclass
class DataRegion:
    """One named primary-data array and where its elements live.

    ``addresses[i]`` is the physical byte address of element ``i``.
    """

    name: str
    elem_bytes: int
    addresses: np.ndarray  # (count,) int64

    @property
    def count(self) -> int:
        return len(self.addresses)

    def addr(self, index: int) -> int:
        return int(self.addresses[index])

    def addrs(self, indices) -> np.ndarray:
        return self.addresses[np.asarray(indices, dtype=np.int64)]

    @property
    def footprint_bytes(self) -> int:
        return self.count * self.elem_bytes


class Allocator:
    """Allocates primary-data arrays into the units' home regions.

    Layouts
    -------
    ``round_robin``:
        element ``i`` -> unit ``i % N`` (the paper's baseline placement).
    ``blocked``:
        contiguous chunks of ``ceil(count / N)`` elements per unit.
    ``pinned``:
        the whole array in one unit (for small shared structures).
    """

    def __init__(self, memory_map: MemoryMap, reserve_top_fraction: float = 0.0):
        """``reserve_top_fraction`` keeps the top slice of every unit's
        memory free (the Traveller Cache data region)."""
        self.memory_map = memory_map
        n = memory_map.topology.num_units
        self._cursor = np.zeros(n, dtype=np.int64)
        usable = int(memory_map.unit_capacity * (1.0 - reserve_top_fraction))
        self._usable_per_unit = usable
        self.regions: Dict[str, DataRegion] = {}

    @property
    def num_units(self) -> int:
        return len(self._cursor)

    def _take(self, unit: int, nbytes: int, align: int = 64) -> int:
        """Reserve ``nbytes`` in ``unit``; returns the physical address.

        The cursor is rounded up to ``align`` first so that elements of
        differently-sized regions never straddle cachelines.
        """
        offset = int(self._cursor[unit])
        offset = (offset + align - 1) // align * align
        if offset + nbytes > self._usable_per_unit:
            raise MemoryError(
                f"unit {unit} out of usable home memory "
                f"({offset + nbytes} > {self._usable_per_unit})"
            )
        self._cursor[unit] = offset + nbytes
        return unit * self.memory_map.unit_capacity + offset

    def alloc(
        self,
        name: str,
        count: int,
        elem_bytes: int = 64,
        layout: str = "round_robin",
        unit: int = 0,
    ) -> DataRegion:
        """Allocate ``count`` elements of ``elem_bytes`` each.

        Element addresses are aligned to ``elem_bytes`` when it is a
        power of two <= a cacheline, so elements never straddle lines.
        """
        if name in self.regions:
            raise ValueError(f"region {name!r} already allocated")
        if count <= 0:
            raise ValueError("count must be positive")
        if elem_bytes <= 0:
            raise ValueError("elem_bytes must be positive")

        n = self.num_units
        addrs = np.empty(count, dtype=np.int64)
        if layout == "round_robin":
            for u in range(n):
                idx = np.arange(u, count, n)
                if len(idx) == 0:
                    continue
                base = self._take(u, len(idx) * elem_bytes)
                addrs[idx] = base + np.arange(len(idx)) * elem_bytes
        elif layout == "blocked":
            chunk = -(-count // n)  # ceil division
            for u in range(n):
                lo = u * chunk
                hi = min(count, lo + chunk)
                if lo >= hi:
                    break
                base = self._take(u, (hi - lo) * elem_bytes)
                addrs[lo:hi] = base + np.arange(hi - lo) * elem_bytes
        elif layout == "pinned":
            base = self._take(unit, count * elem_bytes)
            addrs[:] = base + np.arange(count) * elem_bytes
        else:
            raise ValueError(f"unknown layout {layout!r}")

        region = DataRegion(name=name, elem_bytes=elem_bytes, addresses=addrs)
        self.regions[name] = region
        return region

    def used_bytes(self, unit: int) -> int:
        return int(self._cursor[unit])

    def total_used_bytes(self) -> int:
        return int(self._cursor.sum())
