"""Memory-network topology: stacks in a 2D mesh, units behind crossbars.

This module owns the *geometry* of the NDP system (Figure 1/5 in the
paper): where every NDP unit sits, how many inter-stack mesh hops separate
any two units, and how the units are numbered into ``C + 1`` localized
*camp groups* (Section 4.2).

Unit numbering follows the paper: units are numbered consecutively,
"first in each stack, then in each group, and finally across groups".
Groups are spatially localized blocks of stacks; we order stacks along a
Morton (Z-order) curve and chunk that order into equal groups, which for
the default 4x4 mesh with four groups yields exactly the 2x2-stack
quadrants shown in Figure 5.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.config import TopologyConfig


def _morton_key(row: int, col: int, bits: int = 8) -> int:
    """Interleave the bits of (row, col) into a Z-order curve index."""
    key = 0
    for i in range(bits):
        key |= ((row >> i) & 1) << (2 * i + 1)
        key |= ((col >> i) & 1) << (2 * i)
    return key


class Topology:
    """Geometry and numbering of the NDP units.

    Parameters
    ----------
    config:
        The mesh shape and per-stack unit count.
    num_groups:
        Number of camp groups (``C + 1``).  Must divide the total number
        of NDP units.  Pass ``1`` when camp grouping is irrelevant (e.g.
        cacheless designs); every unit then lands in group 0.
    """

    def __init__(self, config: TopologyConfig, num_groups: int = 4):
        config.validate()
        if num_groups < 1:
            raise ValueError("num_groups must be >= 1")
        if config.num_units % num_groups:
            raise ValueError(
                f"{config.num_units} units are not divisible into "
                f"{num_groups} equal groups"
            )
        self.config = config
        self.num_groups = num_groups
        self.num_stacks = config.num_stacks
        self.num_units = config.num_units
        self.units_per_stack = config.units_per_stack
        self.units_per_group = self.num_units // num_groups

        # Stack coordinates in row-major mesh order: stack s at (r, c).
        self._stack_coords = np.array(
            [(s // config.mesh_cols, s % config.mesh_cols)
             for s in range(self.num_stacks)],
            dtype=np.int64,
        )
        # (row, col) -> stack id, for walking routes over the mesh.
        self._stack_at: Dict[Tuple[int, int], int] = {
            (int(r), int(c)): s
            for s, (r, c) in enumerate(self._stack_coords)
        }

        # Morton-ordered stack sequence -> localized group chunks.
        order = sorted(
            range(self.num_stacks),
            key=lambda s: _morton_key(*map(int, self._stack_coords[s])),
        )
        self._stack_order: List[int] = order

        # unit id -> mesh stack id, walking stacks in Morton order.
        stack_of_unit = np.empty(self.num_units, dtype=np.int64)
        for pos, stack in enumerate(order):
            base = pos * self.units_per_stack
            stack_of_unit[base:base + self.units_per_stack] = stack
        self._stack_of_unit = stack_of_unit

        # unit id -> camp group (consecutive chunks of the numbering).
        self._group_of_unit = (
            np.arange(self.num_units) // self.units_per_group
        ).astype(np.int64)

        self._inter_hops = self._build_hop_matrix()
        self._same_stack = self._stack_of_unit[:, None] == self._stack_of_unit[None, :]
        self._same_unit = np.eye(self.num_units, dtype=bool)

    # ------------------------------------------------------------------
    # basic lookups
    # ------------------------------------------------------------------
    def stack_of(self, unit: int) -> int:
        """Mesh stack id hosting ``unit``."""
        return int(self._stack_of_unit[unit])

    def group_of(self, unit: int) -> int:
        """Camp group id of ``unit``."""
        return int(self._group_of_unit[unit])

    def units_in_group(self, group: int) -> np.ndarray:
        """Unit ids belonging to ``group`` (a contiguous id range)."""
        if not 0 <= group < self.num_groups:
            raise IndexError(f"group {group} out of range")
        base = group * self.units_per_group
        return np.arange(base, base + self.units_per_group)

    def units_in_stack(self, stack: int) -> np.ndarray:
        """Unit ids hosted by mesh stack ``stack``."""
        return np.nonzero(self._stack_of_unit == stack)[0]

    def stack_coords(self, stack: int) -> Tuple[int, int]:
        """(row, col) mesh coordinates of ``stack``."""
        r, c = self._stack_coords[stack]
        return int(r), int(c)

    def stack_at(self, row: int, col: int) -> int:
        """Stack id at mesh coordinates ``(row, col)``."""
        return self._stack_at[(row, col)]

    def adjacent_stacks(self, stack: int) -> List[int]:
        """Mesh neighbours of ``stack`` (one hop away), in N/S/W/E order."""
        r, c = self.stack_coords(stack)
        out: List[int] = []
        for dr, dc in ((-1, 0), (1, 0), (0, -1), (0, 1)):
            s = self._stack_at.get((r + dr, c + dc))
            if s is not None:
                out.append(s)
        return out

    def mesh_links(self) -> List[Tuple[int, int]]:
        """All physical mesh links as undirected ``(a, b)`` stack pairs
        with ``a < b`` — the targets a link-fault schedule may name."""
        links: List[Tuple[int, int]] = []
        for s in range(self.num_stacks):
            for n in self.adjacent_stacks(s):
                if s < n:
                    links.append((s, n))
        return links

    @property
    def stack_of_unit(self) -> np.ndarray:
        """Vector mapping unit id -> stack id (read-only view)."""
        v = self._stack_of_unit.view()
        v.flags.writeable = False
        return v

    @property
    def group_of_unit(self) -> np.ndarray:
        """Vector mapping unit id -> group id (read-only view)."""
        v = self._group_of_unit.view()
        v.flags.writeable = False
        return v

    # ------------------------------------------------------------------
    # distances
    # ------------------------------------------------------------------
    def _build_hop_matrix(self) -> np.ndarray:
        coords = self._stack_coords[self._stack_of_unit]
        rows = coords[:, 0]
        cols = coords[:, 1]
        hops = (
            np.abs(rows[:, None] - rows[None, :])
            + np.abs(cols[:, None] - cols[None, :])
        )
        return hops.astype(np.int64)

    @property
    def inter_hops(self) -> np.ndarray:
        """(N, N) matrix of inter-stack mesh hops between units.

        Zero for units in the same stack (their traffic rides the
        crossbar, not the mesh).
        """
        v = self._inter_hops.view()
        v.flags.writeable = False
        return v

    @property
    def same_stack(self) -> np.ndarray:
        """(N, N) boolean matrix: units share a stack."""
        v = self._same_stack.view()
        v.flags.writeable = False
        return v

    def hops_between(self, a: int, b: int) -> int:
        """Inter-stack mesh hops between units ``a`` and ``b``."""
        return int(self._inter_hops[a, b])

    def is_local(self, a: int, b: int) -> bool:
        return a == b

    def is_intra_stack(self, a: int, b: int) -> bool:
        return a != b and bool(self._same_stack[a, b])

    @property
    def diameter(self) -> int:
        return self.config.diameter

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Human-readable map of groups to stacks."""
        lines = [
            f"{self.config.mesh_rows}x{self.config.mesh_cols} mesh, "
            f"{self.units_per_stack} units/stack, "
            f"{self.num_groups} camp groups "
            f"({self.units_per_group} units each)"
        ]
        for g in range(self.num_groups):
            units = self.units_in_group(g)
            stacks = sorted({self.stack_of(int(u)) for u in units})
            lines.append(
                f"  group {g}: units {units[0]}-{units[-1]}, stacks {stacks}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Topology(mesh={self.config.mesh_rows}x{self.config.mesh_cols}, "
            f"units={self.num_units}, groups={self.num_groups})"
        )
