"""Analytic SRAM model (mini CACTI-7 stand-in).

The paper uses CACTI 7 to size/energize the L1 caches, the prefetch
buffer and the Traveller Cache tag array, and quotes two headline area
numbers in Section 7.2: an 8 MB SRAM data cache needs ~16.12 mm^2 per
unit, while the Traveller tag array needs ~0.32 mm^2.  We replace CACTI
with a small analytic model calibrated to exactly those two points:
area grows slightly super-linearly with capacity, access energy with
sqrt(capacity), which is the familiar first-order CACTI behaviour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.config import KB, MB, SramConfig

# Calibration anchors from Section 7.2 of the paper.
_AREA_ANCHOR_BYTES = 8 * MB
_AREA_ANCHOR_MM2 = 16.12
_AREA_EXPONENT = 1.05  # mild super-linearity from peripheral overhead

_ENERGY_ANCHOR_BYTES = 64 * KB
_ENERGY_ANCHOR_PJ = 20.0  # 64 kB L1-D access


def sram_area_mm2(capacity_bytes: int, bits_per_entry_overhead: float = 0.0) -> float:
    """Estimated die area of an SRAM array of the given data capacity.

    ``bits_per_entry_overhead`` inflates the array for per-line metadata
    (valid bits etc.) expressed as a fraction of the data bits.
    """
    if capacity_bytes <= 0:
        return 0.0
    effective = capacity_bytes * (1.0 + bits_per_entry_overhead)
    scale = (effective / _AREA_ANCHOR_BYTES) ** _AREA_EXPONENT
    return _AREA_ANCHOR_MM2 * scale


def sram_access_energy_pj(capacity_bytes: int) -> float:
    """Estimated per-access dynamic energy of an SRAM array."""
    if capacity_bytes <= 0:
        return 0.0
    return _ENERGY_ANCHOR_PJ * math.sqrt(capacity_bytes / _ENERGY_ANCHOR_BYTES)


@dataclass
class SramStats:
    """SRAM access counters for one run."""

    l1_accesses: int = 0
    prefetch_accesses: int = 0
    tag_accesses: int = 0
    # Accesses to the (large) SRAM data-cache array of the Figure 13
    # pure-SRAM foil; priced per its own capacity, not the L1's.
    data_cache_accesses: int = 0

    def add_bulk(
        self,
        l1_accesses: int = 0,
        prefetch_accesses: int = 0,
        tag_accesses: int = 0,
        data_cache_accesses: int = 0,
    ) -> None:
        """Fold a batch of pre-aggregated probe counts in at once (the
        batched access engine's single flush per hint batch)."""
        self.l1_accesses += l1_accesses
        self.prefetch_accesses += prefetch_accesses
        self.tag_accesses += tag_accesses
        self.data_cache_accesses += data_cache_accesses

    def merge(self, other: "SramStats") -> None:
        self.l1_accesses += other.l1_accesses
        self.prefetch_accesses += other.prefetch_accesses
        self.tag_accesses += other.tag_accesses
        self.data_cache_accesses += other.data_cache_accesses

    def reset(self) -> None:
        self.l1_accesses = 0
        self.prefetch_accesses = 0
        self.tag_accesses = 0
        self.data_cache_accesses = 0


class SramModel:
    """Per-unit SRAM structures: latency, energy, and area reporting."""

    def __init__(self, config: SramConfig, tag_array_bytes: int = 0,
                 data_cache_bytes: int = 0):
        config.validate()
        self.config = config
        self.tag_array_bytes = tag_array_bytes
        self.data_cache_bytes = data_cache_bytes
        self.data_cache_access_pj = sram_access_energy_pj(data_cache_bytes)

    # ------------------------------------------------------------------
    # latency
    # ------------------------------------------------------------------
    @property
    def l1_hit_ns(self) -> float:
        return self.config.l1_hit_ns

    @property
    def tag_lookup_ns(self) -> float:
        """Traveller tag check at a camp location; SRAM -> sub-ns, round
        up to the L1 hit latency for conservatism."""
        return self.config.l1_hit_ns

    # ------------------------------------------------------------------
    # energy
    # ------------------------------------------------------------------
    def energy_pj(self, stats: SramStats) -> float:
        cfg = self.config
        return (
            stats.l1_accesses * cfg.l1_access_pj
            + stats.prefetch_accesses * cfg.prefetch_access_pj
            + stats.tag_accesses * cfg.tag_access_pj
            + stats.data_cache_accesses * self.data_cache_access_pj
        )

    # ------------------------------------------------------------------
    # area
    # ------------------------------------------------------------------
    def total_area_mm2(self) -> float:
        """Logic-die SRAM area of one NDP unit (L1s + buffers + tags)."""
        cfg = self.config
        return (
            sram_area_mm2(cfg.l1d_bytes)
            + sram_area_mm2(cfg.l1i_bytes)
            + sram_area_mm2(cfg.prefetch_buffer_bytes)
            + sram_area_mm2(self.tag_array_bytes)
        )

    def tag_area_mm2(self) -> float:
        return sram_area_mm2(self.tag_array_bytes)
