"""System energy accounting (Figure 7's four-component breakdown).

Energy is integrated over event counters collected during a run:

* ``core_sram``   -- core dynamic energy (pJ/instruction) plus L1 /
                     prefetch-buffer / tag-array SRAM accesses;
* ``dram``        -- memory *and* DRAM-cache accesses (Figure 7 groups
                     them into one bar segment);
* ``interconnect``-- intra-stack crossbar + inter-stack mesh bits moved;
* ``static``      -- idle power of every core integrated over the
                     makespan (all units stay powered until the last
                     barrier of the run).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.dram import DramChannel, DramStats
from repro.arch.noc import Interconnect, TrafficMeter
from repro.arch.sram import SramModel, SramStats
from repro.config import SystemConfig


@dataclass
class EnergyBreakdown:
    """Energy of one run, in picojoules, split as in Figure 7."""

    core_sram_pj: float = 0.0
    dram_pj: float = 0.0
    interconnect_pj: float = 0.0
    static_pj: float = 0.0

    @property
    def total_pj(self) -> float:
        return (
            self.core_sram_pj + self.dram_pj
            + self.interconnect_pj + self.static_pj
        )

    @property
    def total_uj(self) -> float:
        return self.total_pj / 1e6

    def as_dict(self) -> dict:
        return {
            "core_sram_pj": self.core_sram_pj,
            "dram_pj": self.dram_pj,
            "interconnect_pj": self.interconnect_pj,
            "static_pj": self.static_pj,
            "total_pj": self.total_pj,
        }

    def normalized_to(self, baseline: "EnergyBreakdown") -> dict:
        """Component shares relative to another run's total (Figure 7)."""
        denom = baseline.total_pj or 1.0
        return {
            "core_sram": self.core_sram_pj / denom,
            "dram": self.dram_pj / denom,
            "interconnect": self.interconnect_pj / denom,
            "static": self.static_pj / denom,
            "total": self.total_pj / denom,
        }


class EnergyModel:
    """Combines the per-component analytic models into one integrator."""

    def __init__(
        self,
        config: SystemConfig,
        interconnect: Interconnect,
        dram: DramChannel,
        sram: SramModel,
    ):
        self.config = config
        self.interconnect = interconnect
        self.dram = dram
        self.sram = sram

    def integrate(
        self,
        instructions: float,
        traffic: TrafficMeter,
        dram_stats: DramStats,
        sram_stats: SramStats,
        makespan_cycles: float,
    ) -> EnergyBreakdown:
        """Produce the Figure 7 breakdown from a run's counters."""
        core = self.config.core
        core_dyn_pj = instructions * core.energy_per_instr_pj
        sram_pj = self.sram.energy_pj(sram_stats)
        dram_pj = self.dram.energy_pj(dram_stats)
        noc_pj = self.interconnect.energy_pj(traffic)

        makespan_ns = makespan_cycles * core.cycle_ns
        total_cores = self.config.num_units * core.cores_per_unit
        # idle power in uW = pJ/us = 1e-3 pJ/ns
        static_pj = core.idle_power_uw * 1e-3 * makespan_ns * total_cores

        return EnergyBreakdown(
            core_sram_pj=core_dyn_pj + sram_pj,
            dram_pj=dram_pj,
            interconnect_pj=noc_pj,
            static_pj=static_pj,
        )
