"""Per-unit DRAM channel model (HBM-like timing and energy, Table 1).

Each NDP unit owns one independent DRAM channel.  The model is analytic:
a random access costs ``tRCD + tCAS`` (row activation plus column
access), and energy is charged per bit moved plus an ACT/PRE pair for
the fraction of accesses that open a new row.  This is the same level of
abstraction the paper consumes from its DRAM model — scalar per-event
latencies and energies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import MemoryConfig


@dataclass
class DramStats:
    """Access counters for one simulation run (per system, not per unit)."""

    reads: int = 0
    writes: int = 0
    cache_fills: int = 0        # Traveller-cache insertions (extra writes)
    cache_reads: int = 0        # hits served from a DRAM cache region
    tag_accesses_in_dram: int = 0  # only for the DRAM-tag design (Fig 13)

    @property
    def total_accesses(self) -> int:
        return (
            self.reads + self.writes + self.cache_fills
            + self.cache_reads + self.tag_accesses_in_dram
        )

    def merge(self, other: "DramStats") -> None:
        self.reads += other.reads
        self.writes += other.writes
        self.cache_fills += other.cache_fills
        self.cache_reads += other.cache_reads
        self.tag_accesses_in_dram += other.tag_accesses_in_dram

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0
        self.cache_fills = 0
        self.cache_reads = 0
        self.tag_accesses_in_dram = 0


class DramChannel:
    """Analytic timing/energy model shared by all units (stateless)."""

    def __init__(self, config: MemoryConfig):
        config.validate()
        self.config = config

    # ------------------------------------------------------------------
    # timing
    # ------------------------------------------------------------------
    @property
    def access_latency_ns(self) -> float:
        """Latency of one random cacheline access."""
        return self.config.access_latency_ns

    @property
    def row_hit_latency_ns(self) -> float:
        """Latency when the row is already open (column access only)."""
        return self.config.t_cas_ns

    # ------------------------------------------------------------------
    # energy
    # ------------------------------------------------------------------
    def access_energy_pj(self) -> float:
        """Expected dynamic energy of one cacheline access."""
        return self.config.access_energy_pj()

    def energy_pj(self, stats: DramStats) -> float:
        """Total DRAM dynamic energy for the accumulated counters."""
        return stats.total_accesses * self.access_energy_pj()
