"""Per-unit DRAM channel model (HBM-like timing and energy, Table 1).

Each NDP unit owns one independent DRAM channel.  The model is analytic:
a random access costs ``tRCD + tCAS`` (row activation plus column
access), and energy is charged per bit moved plus an ACT/PRE pair for
the fraction of accesses that open a new row.  This is the same level of
abstraction the paper consumes from its DRAM model — scalar per-event
latencies and energies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.config import MemoryConfig


@dataclass
class DramStats:
    """Access counters for one simulation run (per system, not per unit)."""

    reads: int = 0
    writes: int = 0
    cache_fills: int = 0        # Traveller-cache insertions (extra writes)
    cache_reads: int = 0        # hits served from a DRAM cache region
    tag_accesses_in_dram: int = 0  # only for the DRAM-tag design (Fig 13)

    @property
    def total_accesses(self) -> int:
        return (
            self.reads + self.writes + self.cache_fills
            + self.cache_reads + self.tag_accesses_in_dram
        )

    def add_bulk(
        self,
        reads: int = 0,
        cache_fills: int = 0,
        cache_reads: int = 0,
        tag_accesses_in_dram: int = 0,
        writes: int = 0,
    ) -> None:
        """Fold a batch of pre-aggregated events in at once (the
        batched engine's single flush per hint batch; the vector phase
        engine also folds the phase's buffered output writes)."""
        self.reads += reads
        self.cache_fills += cache_fills
        self.cache_reads += cache_reads
        self.tag_accesses_in_dram += tag_accesses_in_dram
        self.writes += writes

    def merge(self, other: "DramStats") -> None:
        self.reads += other.reads
        self.writes += other.writes
        self.cache_fills += other.cache_fills
        self.cache_reads += other.cache_reads
        self.tag_accesses_in_dram += other.tag_accesses_in_dram

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0
        self.cache_fills = 0
        self.cache_reads = 0
        self.tag_accesses_in_dram = 0


class DramChannel:
    """Analytic timing/energy model shared by all units.

    Stateless on the healthy path; the fault subsystem can attach a
    per-unit latency multiplier (vault latency spikes) via
    :meth:`set_unit_latency_scale`.
    """

    def __init__(self, config: MemoryConfig):
        config.validate()
        self.config = config
        #: per-unit latency multiplier while vault faults are active.
        self._latency_scale: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # timing
    # ------------------------------------------------------------------
    @property
    def access_latency_ns(self) -> float:
        """Latency of one random cacheline access (healthy vault)."""
        return self.config.access_latency_ns

    def set_unit_latency_scale(self, scale: Optional[np.ndarray]) -> None:
        """Attach (or clear, with ``None``) per-unit latency multipliers.

        ``scale[u]`` scales every access served by unit ``u``'s channel;
        a vector of ones is treated as healthy and dropped.
        """
        if scale is not None and np.all(scale == 1.0):
            scale = None
        self._latency_scale = scale

    def access_latency_at(self, unit: int) -> float:
        """Latency of one random access served by ``unit``'s channel."""
        if self._latency_scale is None:
            return self.config.access_latency_ns
        return self.config.access_latency_ns * float(self._latency_scale[unit])

    @property
    def row_hit_latency_ns(self) -> float:
        """Latency when the row is already open (column access only)."""
        return self.config.t_cas_ns

    # ------------------------------------------------------------------
    # energy
    # ------------------------------------------------------------------
    def access_energy_pj(self) -> float:
        """Expected dynamic energy of one cacheline access."""
        return self.config.access_energy_pj()

    def energy_pj(self, stats: DramStats) -> float:
        """Total DRAM dynamic energy for the accumulated counters."""
        return stats.total_accesses * self.access_energy_pj()
