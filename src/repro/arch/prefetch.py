"""Hint-driven exact prefetching into a per-unit SRAM FIFO buffer.

Section 3.2: a prefetch unit walks the tasks inside the *prefetch
window* at the front of the task queue and issues requests for their
hint addresses; fetched lines land in a small SRAM prefetch buffer
(4 kB FIFO).  Hits in the buffer bypass the L1.

In the simulator the prefetch is issued on the same path the demand
access would take (same hops, same DRAM events) — prefetching changes
*when* the data arrives, not *whether* it moves.  The executor accounts
the latency hiding; this module models buffer residency so repeated
lines within the window are fetched once and hit cheaply.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.config import MemoryConfig, SramConfig


@dataclass
class PrefetchStats:
    issued: int = 0
    buffer_hits: int = 0
    evictions: int = 0

    def merge(self, other: "PrefetchStats") -> None:
        self.issued += other.issued
        self.buffer_hits += other.buffer_hits
        self.evictions += other.evictions


class PrefetchBuffer:
    """FIFO buffer of cachelines (one per NDP unit)."""

    def __init__(self, capacity_bytes: int, line_bytes: int = 64):
        self.capacity_lines = max(1, capacity_bytes // line_bytes)
        self._fifo: OrderedDict = OrderedDict()
        self.stats = PrefetchStats()

    def lookup(self, line: int) -> bool:
        """Demand probe; FIFO order is *not* refreshed (it is a FIFO)."""
        if line in self._fifo:
            self.stats.buffer_hits += 1
            return True
        return False

    def insert(self, line: int) -> None:
        """Install a prefetched line, evicting the oldest if full."""
        if line in self._fifo:
            return
        if len(self._fifo) >= self.capacity_lines:
            self._fifo.popitem(last=False)
            self.stats.evictions += 1
        self._fifo[line] = None
        self.stats.issued += 1

    def batch_state(self):
        """Internal state for the batched access engine's fused probe
        loop: ``(fifo dict, capacity_lines, stats)``.  Same contract as
        :meth:`repro.arch.l1cache.L1Cache.batch_state`.
        """
        return self._fifo, self.capacity_lines, self.stats

    def contains(self, line: int) -> bool:
        return line in self._fifo

    def invalidate_all(self) -> None:
        self._fifo.clear()

    def occupancy(self) -> int:
        return len(self._fifo)

    @classmethod
    def from_config(cls, sram: SramConfig, memory: MemoryConfig) -> "PrefetchBuffer":
        return cls(sram.prefetch_buffer_bytes, memory.cacheline_bytes)
