"""Set-associative L1 data cache with LRU replacement (Table 1).

Each NDP core has a private L1; we model one L1 per *unit* (the two
cores of a unit drain a shared task queue, and the paper's primary data
are read-only within a timestamp, so a shared model is equivalent for
hit-rate purposes and halves the simulation state).

The cache maps 64 B cachelines.  It is intentionally simple — dict-of-
sets with move-to-front LRU — because the simulator looks lines up at
task granularity, not per instruction.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional

from repro.config import MemoryConfig, SramConfig


@dataclass
class L1Stats:
    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def merge(self, other: "L1Stats") -> None:
        self.hits += other.hits
        self.misses += other.misses


class L1Cache:
    """One unit's L1-D cache over cacheline indices."""

    def __init__(self, capacity_bytes: int, associativity: int,
                 line_bytes: int = 64):
        if capacity_bytes % (associativity * line_bytes):
            raise ValueError("capacity must be sets * ways * line size")
        self.num_sets = capacity_bytes // (associativity * line_bytes)
        if self.num_sets < 1:
            raise ValueError("cache too small")
        self.associativity = associativity
        self.line_bytes = line_bytes
        # set index -> OrderedDict of line -> None, LRU at the front.
        self._sets: Dict[int, OrderedDict] = {}
        self.stats = L1Stats()

    def _set_of(self, line: int) -> int:
        return line % self.num_sets

    def lookup(self, line: int) -> bool:
        """Probe the cache; refreshes LRU order on a hit."""
        s = self._sets.get(self._set_of(line))
        if s is not None and line in s:
            s.move_to_end(line)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def insert(self, line: int) -> Optional[int]:
        """Install a line; returns the evicted line, if any."""
        idx = self._set_of(line)
        s = self._sets.get(idx)
        if s is None:
            s = OrderedDict()
            self._sets[idx] = s
        if line in s:
            s.move_to_end(line)
            return None
        victim = None
        if len(s) >= self.associativity:
            victim, _ = s.popitem(last=False)
        s[line] = None
        return victim

    def batch_state(self):
        """Internal state for the batched access engine's fused probe
        loop: ``(sets dict, num_sets, associativity, stats)``.

        The engine inlines :meth:`lookup`/:meth:`insert` per hint line
        (same hash, same LRU updates, same eviction choices) and flushes
        the hit/miss counts into ``stats`` once per batch.
        """
        return self._sets, self.num_sets, self.associativity, self.stats

    def contains(self, line: int) -> bool:
        """Non-mutating membership test (no stats, no LRU update)."""
        s = self._sets.get(self._set_of(line))
        return s is not None and line in s

    def invalidate_all(self) -> None:
        """Bulk invalidation at a timestamp barrier (Section 4.4)."""
        self._sets.clear()

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets.values())

    @classmethod
    def from_config(cls, sram: SramConfig, memory: MemoryConfig) -> "L1Cache":
        return cls(sram.l1d_bytes, sram.l1d_assoc, memory.cacheline_bytes)
