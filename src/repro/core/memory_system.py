"""End-to-end memory access flow (Section 4.4, "Overall access flow").

For every data access the simulator resolves:

1. the requester's L1 (hit -> done);
2. the requester's prefetch buffer (hit -> done, bypassing L1);
3. with a remote-data cache configured: the *nearest camp location* of
   the line — a tag probe there, then either a cache hit (data returned
   from the camp's cache region) or a continuation to the home memory,
   with a probabilistic insertion back into the probed camp;
4. without a cache: a direct round trip to the home memory.

The function returns the access latency in nanoseconds and books every
hop, DRAM event, and SRAM event into the run's counters — those
counters are precisely the quantities behind Figures 7 and 8.

DRAM service contention
-----------------------
Each unit's DRAM channel has a finite random-access service rate
(``MemoryConfig.service_ns`` per cacheline).  Every DRAM event at a unit
advances that unit's service clock; accesses arriving while the channel
is busy queue behind it.  This is the first-order effect that makes hot
*data* a hot *spot*: the home of a power-law hub serves reads from the
whole machine and saturates, while Traveller camps split the same
traffic across ``C + 1`` channels.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.arch.dram import DramChannel, DramStats
from repro.arch.memory_map import MemoryMap
from repro.arch.ndp_unit import NdpUnit
from repro.arch.noc import Interconnect, TrafficMeter
from repro.arch.sram import SramModel, SramStats
from repro.config import CacheStyle, SystemConfig
from repro.core.cache.camp import CampMapper
from repro.core.cache.dram_tag_cache import DramTagCache
from repro.core.cache.sram_cache import SramDataCache
from repro.core.cache.traveller import CacheStatsTotal, TravellerCache

#: control-message payload (an address + command), in bits.
_REQUEST_BITS = 128


class MemorySystem:
    """Resolves accesses against L1s, prefetch buffers, caches, and DRAM."""

    def __init__(
        self,
        config: SystemConfig,
        interconnect: Interconnect,
        dram: DramChannel,
        sram: SramModel,
        memory_map: MemoryMap,
        units: Sequence[NdpUnit],
        camp_mapper: Optional[CampMapper],
        rng: np.random.Generator,
    ):
        self.config = config
        self.interconnect = interconnect
        self.dram = dram
        self.sram = sram
        self.memory_map = memory_map
        self.units = units
        self.camp_mapper = camp_mapper
        self.style = config.cache.style
        self._cost = interconnect.cost_matrix
        self._service_ns = config.memory.service_ns

        self.traffic = TrafficMeter()
        self.dram_stats = DramStats()
        self.sram_stats = SramStats()
        # Fault state, attached by the FaultController when active.
        self._alive: Optional[np.ndarray] = None
        self._resilience = None  # faults.ResilienceStats, duck-typed
        # Per-unit DRAM channel service clock (absolute ns).
        self._dram_free_ns = np.zeros(config.num_units, dtype=np.float64)
        # Total queuing delay observed (diagnostics / tests).
        self.total_queue_delay_ns = 0.0

        self.caches: List[Optional[TravellerCache]] = []
        if self.style is CacheStyle.NONE:
            self.caches = [None] * config.num_units
        else:
            cls = {
                CacheStyle.TRAVELLER: TravellerCache,
                CacheStyle.SRAM: SramDataCache,
                CacheStyle.DRAM_TAG: DramTagCache,
            }[self.style]
            self.caches = [
                cls(config.cache, config.memory, rng)
                for _ in range(config.num_units)
            ]
        if self.style is not CacheStyle.NONE and camp_mapper is None:
            raise ValueError("a camp mapper is required when caching is on")

    # ------------------------------------------------------------------
    # DRAM channel service model
    # ------------------------------------------------------------------
    def _dram_service(self, unit: int, now_ns: float,
                      critical: bool = True) -> float:
        """Occupy ``unit``'s DRAM channel for one cacheline access.

        Returns the queuing delay experienced (0 when the channel is
        idle).  ``critical=False`` marks write-buffered events (cache
        fills, output writes): the controller schedules them into idle
        slots, so they neither wait nor delay demand reads — their
        energy is still charged by the caller.
        """
        if not critical:
            return 0.0
        free_at = self._dram_free_ns[unit]
        delay = max(0.0, free_at - now_ns)
        self._dram_free_ns[unit] = max(free_at, now_ns) + self._service_ns
        self.total_queue_delay_ns += delay
        return delay

    # ------------------------------------------------------------------
    # fault hooks
    # ------------------------------------------------------------------
    def set_fault_state(self, alive_mask: Optional[np.ndarray],
                        stats) -> None:
        """Attach the controller's alive mask and resilience counters.

        ``alive_mask=None`` restores healthy behavior; ``stats`` only
        needs an ``unreachable_accesses`` attribute (duck-typed so the
        arch layer stays ignorant of the faults package).
        """
        self._alive = alive_mask
        self._resilience = stats

    def invalidate_units(self, units: Sequence[int]) -> int:
        """Bulk-invalidate the caches of failed units.

        A dead unit's cache region is gone with it: its lines are
        unreachable until the barrier would have cleared them anyway.
        Returns the number of lines dropped (for resilience metrics).
        """
        dropped = 0
        for u in units:
            cache = self.caches[u]
            if cache is not None:
                dropped += cache.occupancy()
                cache.bulk_invalidate()
                # Not a barrier round: don't let fault invalidations
                # skew the per-timestamp invalidation statistics.
                cache.stats.invalidation_rounds -= 1
        return dropped

    def _unreachable(self, requester: int, home: int) -> bool:
        """The home memory cannot currently serve this requester."""
        if self._alive is not None and not self._alive[home]:
            return True
        return not self.interconnect.is_reachable(requester, home)

    def _unreachable_penalty_ns(self) -> float:
        """Latency charged for an access that cannot be served.

        Models a timeout/NACK detour: a worst-case round trip across
        the mesh diameter plus one wasted DRAM access window.  The line
        is *not* installed anywhere and no traffic or DRAM energy is
        booked — the data never moved.
        """
        mesh = self.interconnect.noc
        diameter_ns = 2.0 * mesh.intra_hop_ns + (
            self.interconnect.topology.diameter * mesh.inter_hop_ns
        )
        return 2.0 * diameter_ns + self.dram.access_latency_ns

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def access(self, requester: int, line: int, now_ns: float = 0.0) -> float:
        """Resolve one cacheline read at time ``now_ns``.

        Returns its latency in ns, including any queuing delay at the
        serving unit's DRAM channel.
        """
        unit = self.units[requester]

        self.sram_stats.l1_accesses += 1
        if unit.l1.lookup(line):
            return self.sram.l1_hit_ns

        self.sram_stats.prefetch_accesses += 1
        if unit.prefetch.lookup(line):
            # Prefetch-buffer hits bypass the L1 (Section 3.2).
            return self.sram.l1_hit_ns

        if self._resilience is not None:
            home = self.memory_map.home_of_line(line)
            if self._unreachable(requester, home):
                # The home vault is dead or partitioned away: the access
                # times out.  Nothing is cached and no traffic moved.
                self._resilience.unreachable_accesses += 1
                return self._unreachable_penalty_ns()

        if self.style is CacheStyle.NONE:
            latency = self._direct_home_access(requester, line, now_ns)
        else:
            latency = self._cached_access(requester, line, now_ns)

        unit.prefetch.insert(line)
        unit.l1.insert(line)
        return latency

    def _direct_home_access(self, requester: int, line: int,
                            now_ns: float) -> float:
        home = self.memory_map.home_of_line(line)
        noc = self.interconnect
        noc.record_round_trip(self.traffic, requester, home, _REQUEST_BITS)
        self.dram_stats.reads += 1
        arrival = now_ns + noc.one_way_latency_ns(requester, home)
        queue = self._dram_service(home, arrival)
        return (
            noc.round_trip_latency_ns(requester, home)
            + queue + self.dram.access_latency_at(home)
        )

    def _cached_access(self, requester: int, line: int,
                       now_ns: float) -> float:
        """The Traveller access flow: probe nearest camp, fall to home."""
        assert self.camp_mapper is not None
        noc = self.interconnect
        nearest, is_home = self.camp_mapper.nearest_location(
            line, requester, self._cost
        )
        home = self.memory_map.home_of_line(line)
        cache = self.caches[nearest]

        if is_home:
            # The nearest allowed location is the memory itself: no
            # detour, no probe — exactly the baseline access.
            if cache is not None:
                cache.stats.home_direct += 1
            return self._direct_home_access(requester, line, now_ns)

        assert cache is not None
        if noc.has_link_faults and not (
                noc.is_reachable(requester, nearest)
                and noc.is_reachable(nearest, home)):
            # Link faults cut off the camp detour: skip straight to the
            # home (which *is* reachable — access() checked).
            cache.stats.home_direct += 1
            return self._direct_home_access(requester, line, now_ns)
        # Request travels to the camp and checks the tags there.
        noc.record_transfer(self.traffic, requester, nearest, _REQUEST_BITS)
        latency = noc.one_way_latency_ns(requester, nearest)
        latency += self._tag_probe_latency(nearest, now_ns + latency)

        if cache.lookup(line):
            # Served from the camp's cache region.
            latency += self._cache_read_latency(nearest, now_ns + latency)
            noc.record_transfer(self.traffic, nearest, requester)
            latency += noc.one_way_latency_ns(nearest, requester)
            return latency

        # Miss: continue to the home, read, return directly to requester.
        noc.record_transfer(self.traffic, nearest, home, _REQUEST_BITS)
        latency += noc.one_way_latency_ns(nearest, home)
        self.dram_stats.reads += 1
        latency += self._dram_service(home, now_ns + latency)
        latency += self.dram.access_latency_at(home)
        noc.record_transfer(self.traffic, home, requester)
        latency += noc.one_way_latency_ns(home, requester)

        # Try to install at the probed camp.  The fill write is
        # buffered and scheduled into idle channel slots, so it costs
        # energy and traffic but neither waits nor delays demand reads.
        if cache.insert(line):
            noc.record_transfer(self.traffic, home, nearest)
            self._charge_cache_fill(nearest, now_ns + latency)
        return latency

    # ------------------------------------------------------------------
    # per-style cost hooks
    # ------------------------------------------------------------------
    def _tag_probe_latency(self, camp_unit: int, now_ns: float) -> float:
        if self.style is CacheStyle.DRAM_TAG:
            # Tags live in DRAM alongside the data (Unison/Footprint
            # style): the probe reads the whole tag+data row, so a hit
            # needs no further data access, while a miss has burned a
            # full DRAM access for nothing.
            cache = self.caches[camp_unit]
            assert isinstance(cache, DramTagCache)
            n = cache.tag_probe_dram_accesses()
            self.dram_stats.tag_accesses_in_dram += n
            latency = 0.0
            for _ in range(n):
                latency += self._dram_service(camp_unit, now_ns + latency)
                latency += self.dram.access_latency_at(camp_unit)
            return latency
        self.sram_stats.tag_accesses += 1
        return self.sram.tag_lookup_ns

    def _cache_read_latency(self, camp_unit: int, now_ns: float) -> float:
        if self.style is CacheStyle.SRAM:
            self.sram_stats.data_cache_accesses += 1
            return self.sram.l1_hit_ns
        if self.style is CacheStyle.DRAM_TAG:
            # The data arrived with the tag probe's row access.
            return 0.0
        self.dram_stats.cache_reads += 1
        queue = self._dram_service(camp_unit, now_ns)
        return queue + self.dram.access_latency_at(camp_unit)

    def _charge_cache_fill(self, camp_unit: int, now_ns: float) -> None:
        if self.style is CacheStyle.SRAM:
            self.sram_stats.data_cache_accesses += 1
        else:
            self.dram_stats.cache_fills += 1
            self._dram_service(camp_unit, now_ns, critical=False)

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def write(self, requester: int, line: int, now_ns: float = 0.0) -> float:
        """Write one line to its home (writes bypass the caches).

        Returns 0: stores retire through a write buffer into idle
        channel slots, so they neither stall the task nor delay demand
        reads; their traffic and DRAM energy are still charged.
        """
        home = self.memory_map.home_of_line(line)
        if self._resilience is not None and self._unreachable(requester, home):
            # Lost store: the home cannot be written right now.  The
            # write buffer absorbs it, so the task does not stall.
            self._resilience.unreachable_accesses += 1
            return 0.0
        self.interconnect.record_transfer(self.traffic, requester, home)
        self.dram_stats.writes += 1
        self._dram_service(home, now_ns, critical=False)
        return 0.0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def end_timestamp(self) -> None:
        """Barrier: bulk-invalidate every cache (Section 4.4)."""
        for cache in self.caches:
            if cache is not None:
                cache.bulk_invalidate()
        for unit in self.units:
            unit.end_timestamp()

    def cache_stats(self) -> CacheStatsTotal:
        total = CacheStatsTotal()
        for cache in self.caches:
            if cache is not None:
                total.merge(cache.stats)
        return total
