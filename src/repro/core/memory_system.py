"""End-to-end memory access flow (Section 4.4, "Overall access flow").

For every data access the simulator resolves:

1. the requester's L1 (hit -> done);
2. the requester's prefetch buffer (hit -> done, bypassing L1);
3. with a remote-data cache configured: the *nearest camp location* of
   the line — a tag probe there, then either a cache hit (data returned
   from the camp's cache region) or a continuation to the home memory,
   with a probabilistic insertion back into the probed camp;
4. without a cache: a direct round trip to the home memory.

The function returns the access latency in nanoseconds and books every
hop, DRAM event, and SRAM event into the run's counters — those
counters are precisely the quantities behind Figures 7 and 8.

DRAM service contention
-----------------------
Each unit's DRAM channel has a finite random-access service rate
(``MemoryConfig.service_ns`` per cacheline).  Every DRAM event at a unit
advances that unit's service clock; accesses arriving while the channel
is busy queue behind it.  This is the first-order effect that makes hot
*data* a hot *spot*: the home of a power-law hub serves reads from the
whole machine and saturates, while Traveller camps split the same
traffic across ``C + 1`` channels.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Sequence

import numpy as np

from repro.arch.dram import DramChannel, DramStats
from repro.arch.memory_map import MemoryMap
from repro.arch.ndp_unit import NdpUnit
from repro.arch.noc import Interconnect, TrafficMeter
from repro.arch.sram import SramModel, SramStats
from repro.config import CacheStyle, SystemConfig
from repro.core.cache.camp import CampMapper
from repro.core.cache.dram_tag_cache import DramTagCache
from repro.core.cache.policies import RandomReplacement
from repro.core.cache.sram_cache import SramDataCache
from repro.core.cache.traveller import CacheStatsTotal, TravellerCache

#: control-message payload (an address + command), in bits.
_REQUEST_BITS = 128


class MemorySystem:
    """Resolves accesses against L1s, prefetch buffers, caches, and DRAM."""

    def __init__(
        self,
        config: SystemConfig,
        interconnect: Interconnect,
        dram: DramChannel,
        sram: SramModel,
        memory_map: MemoryMap,
        units: Sequence[NdpUnit],
        camp_mapper: Optional[CampMapper],
        rng: np.random.Generator,
    ):
        self.config = config
        self.interconnect = interconnect
        self.dram = dram
        self.sram = sram
        self.memory_map = memory_map
        self.units = units
        self.camp_mapper = camp_mapper
        self.style = config.cache.style
        self._cost = interconnect.cost_matrix
        self._service_ns = config.memory.service_ns
        #: "batched" resolves whole hint batches through access_many's
        #: fused kernel; "scalar" keeps the original per-line path.
        #: Results are bit-identical (see tests/test_access_engine.py).
        self._engine = config.memory.access_engine

        self.traffic = TrafficMeter()
        self.dram_stats = DramStats()
        self.sram_stats = SramStats()
        # Fault state, attached by the FaultController when active.
        self._alive: Optional[np.ndarray] = None
        self._resilience = None  # faults.ResilienceStats, duck-typed
        # Per-unit DRAM channel service clock (absolute ns).  A plain
        # Python list: the clock is read/written once per DRAM event in
        # tight loops, where list indexing beats ndarray item access.
        self._dram_free_ns = [0.0] * config.num_units
        # Total queuing delay observed (diagnostics / tests).
        self.total_queue_delay_ns = 0.0
        # Batched-engine per-line memo: line -> (home unit,
        # per-requester nearest camp list, per-requester is-home list);
        # the camp lists are None for CacheStyle.NONE.  Valid for one
        # (camp-mapping epoch, link-fault epoch) pair.
        self._line_memo: dict = {}
        self._memo_epoch: tuple = (-1, -1)
        # Per-requester (L1, prefetch) batch-state tuples, filled on
        # first use: the containers are cleared in place at barriers
        # (never recreated), so the references stay valid for the run.
        self._unit_state: List[Optional[tuple]] = [None] * config.num_units

        self.caches: List[Optional[TravellerCache]] = []
        if self.style is CacheStyle.NONE:
            self.caches = [None] * config.num_units
        else:
            cls = {
                CacheStyle.TRAVELLER: TravellerCache,
                CacheStyle.SRAM: SramDataCache,
                CacheStyle.DRAM_TAG: DramTagCache,
            }[self.style]
            self.caches = [
                # The scalar engine keeps the original dense-ndarray
                # layout so it stays the unmodified reference path.
                cls(config.cache, config.memory, rng,
                    dense_layout=self._engine == "scalar")
                for _ in range(config.num_units)
            ]
        if self.style is not CacheStyle.NONE and camp_mapper is None:
            raise ValueError("a camp mapper is required when caching is on")
        # The fused kernel may inline the sparse-layout cache probe and
        # install when replacement is RANDOM: on_touch is then a no-op
        # and the use-stamps are never read, so the inlined flow keeps
        # the exact hit/miss outcomes and RNG draw order (one
        # rng.random() per install attempt, one rng.integers(assoc) per
        # eviction) of TravellerCache.lookup/insert.
        self._inline_cache = (
            self._engine in ("batched", "vector")
            and self.style is not CacheStyle.NONE
            and not self.caches[0]._dense
            and isinstance(self.caches[0]._victims, RandomReplacement)
        )
        # Whole-phase columnar kernel (engine "vector"): driven by the
        # executor when a phase qualifies; access_many stays available
        # as the per-task fallback (it then runs the batched kernel).
        self.vector_engine = None
        if self._engine == "vector":
            from repro.core.vector_engine import VectorPhaseEngine

            if VectorPhaseEngine.supported(self):
                self.vector_engine = VectorPhaseEngine(self)

    # ------------------------------------------------------------------
    # DRAM channel service model
    # ------------------------------------------------------------------
    def _dram_service(self, unit: int, now_ns: float,
                      critical: bool = True) -> float:
        """Occupy ``unit``'s DRAM channel for one cacheline access.

        Returns the queuing delay experienced (0 when the channel is
        idle).  ``critical=False`` marks write-buffered events (cache
        fills, output writes): the controller schedules them into idle
        slots, so they neither wait nor delay demand reads — their
        energy is still charged by the caller.
        """
        if not critical:
            return 0.0
        free_at = self._dram_free_ns[unit]
        delay = max(0.0, free_at - now_ns)
        self._dram_free_ns[unit] = max(free_at, now_ns) + self._service_ns
        self.total_queue_delay_ns += delay
        return delay

    # ------------------------------------------------------------------
    # fault hooks
    # ------------------------------------------------------------------
    def set_fault_state(self, alive_mask: Optional[np.ndarray],
                        stats) -> None:
        """Attach the controller's alive mask and resilience counters.

        ``alive_mask=None`` restores healthy behavior; ``stats`` only
        needs an ``unreachable_accesses`` attribute (duck-typed so the
        arch layer stays ignorant of the faults package).
        """
        self._alive = alive_mask
        self._resilience = stats

    def invalidate_units(self, units: Sequence[int]) -> int:
        """Bulk-invalidate the caches of failed units.

        A dead unit's cache region is gone with it: its lines are
        unreachable until the barrier would have cleared them anyway.
        Returns the number of lines dropped (for resilience metrics).
        """
        dropped = 0
        for u in units:
            cache = self.caches[u]
            if cache is not None:
                dropped += cache.occupancy()
                cache.bulk_invalidate()
                # Not a barrier round: don't let fault invalidations
                # skew the per-timestamp invalidation statistics.
                cache.stats.invalidation_rounds -= 1
        return dropped

    def _unreachable(self, requester: int, home: int) -> bool:
        """The home memory cannot currently serve this requester."""
        if self._alive is not None and not self._alive[home]:
            return True
        return not self.interconnect.is_reachable(requester, home)

    def _unreachable_penalty_ns(self) -> float:
        """Latency charged for an access that cannot be served.

        Models a timeout/NACK detour: a worst-case round trip across
        the mesh diameter plus one wasted DRAM access window.  The line
        is *not* installed anywhere and no traffic or DRAM energy is
        booked — the data never moved.
        """
        mesh = self.interconnect.noc
        diameter_ns = 2.0 * mesh.intra_hop_ns + (
            self.interconnect.topology.diameter * mesh.inter_hop_ns
        )
        return 2.0 * diameter_ns + self.dram.access_latency_ns

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def access(self, requester: int, line: int, now_ns: float = 0.0) -> float:
        """Resolve one cacheline read at time ``now_ns``.

        Returns its latency in ns, including any queuing delay at the
        serving unit's DRAM channel.
        """
        unit = self.units[requester]

        self.sram_stats.l1_accesses += 1
        if unit.l1.lookup(line):
            return self.sram.l1_hit_ns

        self.sram_stats.prefetch_accesses += 1
        if unit.prefetch.lookup(line):
            # Prefetch-buffer hits bypass the L1 (Section 3.2).
            return self.sram.l1_hit_ns

        if self._resilience is not None:
            home = self.memory_map.home_of_line(line)
            if self._unreachable(requester, home):
                # The home vault is dead or partitioned away: the access
                # times out.  Nothing is cached and no traffic moved.
                self._resilience.unreachable_accesses += 1
                return self._unreachable_penalty_ns()

        if self.style is CacheStyle.NONE:
            latency = self._direct_home_access(requester, line, now_ns)
        else:
            latency = self._cached_access(requester, line, now_ns)

        unit.prefetch.insert(line)
        unit.l1.insert(line)
        return latency

    # ------------------------------------------------------------------
    # batched read path
    # ------------------------------------------------------------------
    def access_many(
        self,
        requester: int,
        lines,
        now_ns: float,
        spacing_ns: float = 0.0,
        cap_ns: float = 0.0,
    ) -> float:
        """Resolve a whole hint batch of reads; return the summed latency.

        Line ``i`` is issued at ``now_ns + min(i * spacing_ns, cap_ns)``
        — the executor's issue-spread model.  With the batched engine
        this fuses the per-line flow of :meth:`access` into one pass:
        camp resolution and NoC latencies come from vectorized,
        epoch-invalidated tables, stat counters accumulate in locals and
        flush once, while every *stateful* step (L1/prefetch/camp-cache
        probes and inserts with their RNG draws, the per-unit DRAM
        service clocks, and all float additions) runs in the exact
        per-line order of the scalar path, so results are bit-identical.

        Situations the fused kernel does not model (an attached
        resilience/fault state, link faults, a per-link telemetry meter,
        vault latency scaling) fall back to the scalar loop — which is
        also the whole story when ``MemoryConfig.access_engine`` is
        ``"scalar"``.
        """
        noc = self.interconnect
        if (
            self._engine not in ("batched", "vector")
            or self._resilience is not None
            or noc.link_meter is not None
            or noc.has_link_faults
            or self.dram._latency_scale is not None
            or (self.camp_mapper is not None
                and self.camp_mapper._alive is not None)
        ):
            total = 0.0
            for i, line in enumerate(lines):
                spread = min(i * spacing_ns, cap_ns)
                total += self.access(requester, int(line), now_ns + spread)
            return total
        return self._access_many_batched(
            requester, lines, now_ns, spacing_ns, cap_ns
        )

    def _prime_line_memo(self, line_list: List[int]) -> None:
        """Ensure every line's (home, nearest, is-home) memo entry exists.

        Memo validity is tied to the camp-mapping epoch and the link-
        fault epoch; both are checked by the caller.  Camp tables are
        filled array-at-a-time via :meth:`CampMapper.prime_lines` and
        then flattened to Python lists for the sequential kernel.
        """
        memo = self._line_memo
        missing = [ln for ln in line_list if ln not in memo]
        if not missing:
            return
        homes = self.memory_map.homes_of_lines(
            np.asarray(missing, dtype=np.int64)
        ).tolist()
        if self.style is CacheStyle.NONE:
            for ln, home in zip(missing, homes):
                memo[ln] = (home, None, None)
            return
        cm = self.camp_mapper
        cm.prime_lines(missing, self._cost)
        tables = cm._nearest_tables
        cost = self._cost
        for ln, home in zip(missing, homes):
            nearest, is_home, _ = tables(ln, cost)
            memo[ln] = (home, nearest.tolist(), is_home.tolist())

    def _access_many_batched(
        self,
        requester: int,
        lines,
        now_ns: float,
        spacing_ns: float,
        cap_ns: float,
    ) -> float:
        if isinstance(lines, np.ndarray):
            line_list = lines.tolist()
        elif isinstance(lines, list):
            line_list = lines  # already plain ints; read-only below
        else:
            line_list = [int(x) for x in lines]
        if not line_list:
            return 0.0
        noc = self.interconnect
        cm = self.camp_mapper
        epoch = (cm.epoch if cm is not None else -1, noc.fault_epoch)
        if epoch != self._memo_epoch:
            self._line_memo.clear()
            self._memo_epoch = epoch
        self._prime_line_memo(line_list)

        ustate = self._unit_state[requester]
        if ustate is None:
            unit = self.units[requester]
            ustate = self._unit_state[requester] = (
                unit.l1.batch_state() + unit.prefetch.batch_state()
            )
        l1_sets, l1_nsets, l1_assoc, l1_stats, pf_fifo, pf_cap, pf_stats = (
            ustate
        )
        hit_ns = self.sram.l1_hit_ns
        tag_ns = self.sram.tag_lookup_ns
        access_lat = self.dram.access_latency_ns  # vault scaling gated off
        service = self._service_ns
        free = self._dram_free_ns
        ow, cls, hops = noc.fast_tables()
        ow_req = ow[requester]
        cls_req = cls[requester]
        hops_req = hops[requester]
        caches = self.caches
        memo = self._line_memo
        line_bits = self.config.memory.line_bits
        rt_bits = _REQUEST_BITS + line_bits
        no_cache = self.style is CacheStyle.NONE
        sram_style = self.style is CacheStyle.SRAM
        dram_tag = self.style is CacheStyle.DRAM_TAG
        inline_cache = self._inline_cache
        if inline_cache:
            c_nsets = caches[0].num_sets
            c_assoc = caches[0].associativity
            bp = caches[0]._insertion.bypass_probability

        # Batch-local accumulators, flushed once below.  Counters are
        # order-insensitive ints; the queue-delay float keeps the exact
        # sequential += order of the scalar path.
        l1_acc = l1_hits = pf_acc = pf_hits = pf_evicts = 0
        tag_acc = data_acc = 0
        reads = fills = cache_reads = tag_dram = 0
        msgs = local = intra = intra_bits = inter_hops = inter_bits = 0
        tqd = self.total_queue_delay_ns

        stall = 0.0
        # Issue-spread: with zero spacing (the default service model)
        # every line issues at now_ns and the per-line min() collapses.
        spread = spacing_ns != 0.0 or cap_ns < 0.0
        now = now_ns
        i = 0
        for line in line_list:
            if spread:
                now = now_ns + min(i * spacing_ns, cap_ns)
                i += 1
            # Fused L1 + prefetch front-end (inlined lookup/insert with
            # identical hashing, LRU refresh, and FIFO eviction order).
            l1_acc += 1
            s_idx = line % l1_nsets
            l1_set = l1_sets.get(s_idx)
            if l1_set is not None and line in l1_set:
                l1_set.move_to_end(line)
                l1_hits += 1
                stall += hit_ns
                continue
            pf_acc += 1
            if line in pf_fifo:
                pf_hits += 1
                stall += hit_ns
                continue
            home, near_row, ishome_row = memo[line]
            if no_cache or ishome_row[requester]:
                if not no_cache:
                    caches[near_row[requester]].stats.home_direct += 1
                # _direct_home_access: request + response transfers, one
                # DRAM read at the home, round trip + queue + access.
                msgs += 2
                c = cls_req[home]
                if c == 2:
                    h = hops_req[home]
                    inter_hops += 2 * h
                    inter_bits += rt_bits * h
                    intra += 4
                    intra_bits += 2 * rt_bits
                elif c == 1:
                    intra += 2
                    intra_bits += rt_bits
                else:
                    local += 2
                reads += 1
                owv = ow_req[home]
                arrival = now + owv
                free_at = free[home]
                delay = free_at - arrival
                if delay < 0.0:
                    delay = 0.0
                free[home] = (
                    free_at if free_at > arrival else arrival
                ) + service
                tqd += delay
                lat = 2.0 * owv + delay + access_lat
            else:
                nearest = near_row[requester]
                cache = caches[nearest]
                ow_rn = ow_req[nearest]
                c_rn = cls_req[nearest]   # symmetric: == cls[nearest][req]
                h_rn = hops_req[nearest]
                # request travels requester -> nearest (tag probe)
                msgs += 1
                if c_rn == 2:
                    inter_hops += h_rn
                    inter_bits += _REQUEST_BITS * h_rn
                    intra += 2
                    intra_bits += 2 * _REQUEST_BITS
                elif c_rn == 1:
                    intra += 1
                    intra_bits += _REQUEST_BITS
                else:
                    local += 1
                lat = ow_rn
                if dram_tag:
                    n = cache.tag_probe_dram_accesses()
                    tag_dram += n
                    base = now + lat
                    probe = 0.0
                    for _ in range(n):
                        arrival = base + probe
                        free_at = free[nearest]
                        delay = free_at - arrival
                        if delay < 0.0:
                            delay = 0.0
                        free[nearest] = (
                            free_at if free_at > arrival else arrival
                        ) + service
                        tqd += delay
                        probe += delay
                        probe += access_lat
                    lat += probe
                else:
                    tag_acc += 1
                    lat += tag_ns
                # Inlined sparse probe (random replacement: no touch
                # stamps to refresh, membership == first-match index).
                if inline_cache:
                    cstats = cache.stats
                    c_set = line % c_nsets
                    c_ways = cache._tags.get(c_set)
                    if c_ways is not None and line in c_ways:
                        cstats.hits += 1
                        cache_hit = True
                    else:
                        cstats.misses += 1
                        cache_hit = False
                else:
                    cache_hit = cache.lookup(line)
                if cache_hit:
                    if sram_style:
                        data_acc += 1
                        lat += hit_ns
                    elif not dram_tag:  # Traveller: data read in DRAM
                        cache_reads += 1
                        arrival = now + lat
                        free_at = free[nearest]
                        delay = free_at - arrival
                        if delay < 0.0:
                            delay = 0.0
                        free[nearest] = (
                            free_at if free_at > arrival else arrival
                        ) + service
                        tqd += delay
                        lat += delay + access_lat
                    # response nearest -> requester (one cacheline)
                    msgs += 1
                    if c_rn == 2:
                        inter_hops += h_rn
                        inter_bits += line_bits * h_rn
                        intra += 2
                        intra_bits += 2 * line_bits
                    elif c_rn == 1:
                        intra += 1
                        intra_bits += line_bits
                    else:
                        local += 1
                    lat += ow_rn
                else:
                    # miss: continue nearest -> home, read, return home
                    # -> requester; maybe install at the probed camp.
                    cls_n = cls[nearest]
                    hops_n = hops[nearest]
                    c_nh = cls_n[home]
                    h_nh = hops_n[home]
                    msgs += 1
                    if c_nh == 2:
                        inter_hops += h_nh
                        inter_bits += _REQUEST_BITS * h_nh
                        intra += 2
                        intra_bits += 2 * _REQUEST_BITS
                    elif c_nh == 1:
                        intra += 1
                        intra_bits += _REQUEST_BITS
                    else:
                        local += 1
                    lat += ow[nearest][home]
                    reads += 1
                    arrival = now + lat
                    free_at = free[home]
                    delay = free_at - arrival
                    if delay < 0.0:
                        delay = 0.0
                    free[home] = (
                        free_at if free_at > arrival else arrival
                    ) + service
                    tqd += delay
                    lat += delay
                    lat += access_lat
                    msgs += 1
                    c = cls_req[home]  # home -> requester, symmetric
                    if c == 2:
                        h = hops_req[home]
                        inter_hops += h
                        inter_bits += line_bits * h
                        intra += 2
                        intra_bits += 2 * line_bits
                    elif c == 1:
                        intra += 1
                        intra_bits += line_bits
                    else:
                        local += 1
                    lat += ow_req[home]
                    # Inlined sparse install: the bypass draw comes
                    # first (as in insert()), then empty-way / random
                    # victim selection with the same RNG calls.
                    if inline_cache:
                        if bp >= 1.0 or (
                            bp > 0.0 and cache._rng.random() < bp
                        ):
                            cstats.bypasses += 1
                            installed = False
                        else:
                            if c_ways is None:
                                c_ways = cache._tags[c_set] = (
                                    [-1] * c_assoc
                                )
                                cache._use_order[c_set] = [0] * c_assoc
                            if line in c_ways:
                                installed = False
                            else:
                                try:
                                    way = c_ways.index(-1)
                                except ValueError:
                                    way = int(
                                        cache._rng.integers(c_assoc)
                                    )
                                    cstats.evictions += 1
                                c_ways[way] = line
                                cstats.insertions += 1
                                installed = True
                    else:
                        installed = cache.insert(line)
                    if installed:
                        # home -> nearest fill; the write itself is
                        # buffered (non-critical), so no clock advance.
                        msgs += 1
                        if c_nh == 2:
                            inter_hops += h_nh
                            inter_bits += line_bits * h_nh
                            intra += 2
                            intra_bits += 2 * line_bits
                        elif c_nh == 1:
                            intra += 1
                            intra_bits += line_bits
                        else:
                            local += 1
                        if sram_style:
                            data_acc += 1
                        else:
                            fills += 1
            # prefetch.insert: the line just missed the FIFO and nothing
            # above touched it, so the membership re-check is settled.
            if len(pf_fifo) >= pf_cap:
                pf_fifo.popitem(last=False)
                pf_evicts += 1
            pf_fifo[line] = None
            # l1.insert: ditto for the set (evicted victim is unused).
            if l1_set is None:
                l1_set = l1_sets[s_idx] = OrderedDict()
            if len(l1_set) >= l1_assoc:
                l1_set.popitem(last=False)
            l1_set[line] = None
            stall += lat

        self.total_queue_delay_ns = tqd
        l1_stats.hits += l1_hits
        l1_stats.misses += l1_acc - l1_hits
        pf_stats.buffer_hits += pf_hits
        pf_stats.evictions += pf_evicts
        pf_stats.issued += pf_acc - pf_hits
        self.sram_stats.add_bulk(
            l1_accesses=l1_acc,
            prefetch_accesses=pf_acc,
            tag_accesses=tag_acc,
            data_cache_accesses=data_acc,
        )
        self.dram_stats.add_bulk(
            reads=reads,
            cache_fills=fills,
            cache_reads=cache_reads,
            tag_accesses_in_dram=tag_dram,
        )
        self.traffic.add_bulk(
            messages=msgs,
            local_accesses=local,
            intra_transfers=intra,
            intra_bits=intra_bits,
            inter_hops=inter_hops,
            inter_bits=inter_bits,
        )
        return stall

    def _direct_home_access(self, requester: int, line: int,
                            now_ns: float) -> float:
        home = self.memory_map.home_of_line(line)
        noc = self.interconnect
        noc.record_round_trip(self.traffic, requester, home, _REQUEST_BITS)
        self.dram_stats.reads += 1
        arrival = now_ns + noc.one_way_latency_ns(requester, home)
        queue = self._dram_service(home, arrival)
        return (
            noc.round_trip_latency_ns(requester, home)
            + queue + self.dram.access_latency_at(home)
        )

    def _cached_access(self, requester: int, line: int,
                       now_ns: float) -> float:
        """The Traveller access flow: probe nearest camp, fall to home."""
        assert self.camp_mapper is not None
        noc = self.interconnect
        nearest, is_home = self.camp_mapper.nearest_location(
            line, requester, self._cost
        )
        home = self.memory_map.home_of_line(line)
        cache = self.caches[nearest]

        if is_home:
            # The nearest allowed location is the memory itself: no
            # detour, no probe — exactly the baseline access.
            if cache is not None:
                cache.stats.home_direct += 1
            return self._direct_home_access(requester, line, now_ns)

        assert cache is not None
        if noc.has_link_faults and not (
                noc.is_reachable(requester, nearest)
                and noc.is_reachable(nearest, home)):
            # Link faults cut off the camp detour: skip straight to the
            # home (which *is* reachable — access() checked).
            cache.stats.home_direct += 1
            return self._direct_home_access(requester, line, now_ns)
        # Request travels to the camp and checks the tags there.
        noc.record_transfer(self.traffic, requester, nearest, _REQUEST_BITS)
        latency = noc.one_way_latency_ns(requester, nearest)
        latency += self._tag_probe_latency(nearest, now_ns + latency)

        if cache.lookup(line):
            # Served from the camp's cache region.
            latency += self._cache_read_latency(nearest, now_ns + latency)
            noc.record_transfer(self.traffic, nearest, requester)
            latency += noc.one_way_latency_ns(nearest, requester)
            return latency

        # Miss: continue to the home, read, return directly to requester.
        noc.record_transfer(self.traffic, nearest, home, _REQUEST_BITS)
        latency += noc.one_way_latency_ns(nearest, home)
        self.dram_stats.reads += 1
        latency += self._dram_service(home, now_ns + latency)
        latency += self.dram.access_latency_at(home)
        noc.record_transfer(self.traffic, home, requester)
        latency += noc.one_way_latency_ns(home, requester)

        # Try to install at the probed camp.  The fill write is
        # buffered and scheduled into idle channel slots, so it costs
        # energy and traffic but neither waits nor delays demand reads.
        if cache.insert(line):
            noc.record_transfer(self.traffic, home, nearest)
            self._charge_cache_fill(nearest, now_ns + latency)
        return latency

    # ------------------------------------------------------------------
    # per-style cost hooks
    # ------------------------------------------------------------------
    def _tag_probe_latency(self, camp_unit: int, now_ns: float) -> float:
        if self.style is CacheStyle.DRAM_TAG:
            # Tags live in DRAM alongside the data (Unison/Footprint
            # style): the probe reads the whole tag+data row, so a hit
            # needs no further data access, while a miss has burned a
            # full DRAM access for nothing.
            cache = self.caches[camp_unit]
            assert isinstance(cache, DramTagCache)
            n = cache.tag_probe_dram_accesses()
            self.dram_stats.tag_accesses_in_dram += n
            latency = 0.0
            for _ in range(n):
                latency += self._dram_service(camp_unit, now_ns + latency)
                latency += self.dram.access_latency_at(camp_unit)
            return latency
        self.sram_stats.tag_accesses += 1
        return self.sram.tag_lookup_ns

    def _cache_read_latency(self, camp_unit: int, now_ns: float) -> float:
        if self.style is CacheStyle.SRAM:
            self.sram_stats.data_cache_accesses += 1
            return self.sram.l1_hit_ns
        if self.style is CacheStyle.DRAM_TAG:
            # The data arrived with the tag probe's row access.
            return 0.0
        self.dram_stats.cache_reads += 1
        queue = self._dram_service(camp_unit, now_ns)
        return queue + self.dram.access_latency_at(camp_unit)

    def _charge_cache_fill(self, camp_unit: int, now_ns: float) -> None:
        if self.style is CacheStyle.SRAM:
            self.sram_stats.data_cache_accesses += 1
        else:
            self.dram_stats.cache_fills += 1
            self._dram_service(camp_unit, now_ns, critical=False)

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def write(self, requester: int, line: int, now_ns: float = 0.0) -> float:
        """Write one line to its home (writes bypass the caches).

        Returns 0: stores retire through a write buffer into idle
        channel slots, so they neither stall the task nor delay demand
        reads; their traffic and DRAM energy are still charged.
        """
        home = self.memory_map.home_of_line(line)
        noc = self.interconnect
        if (
            self._engine in ("batched", "vector")
            and self._resilience is None
            and noc.link_meter is None
            and not noc.has_link_faults
        ):
            # Fast path: record_transfer unrolled against the cached
            # class/hops tables (same counters, same values), and the
            # buffered write's _dram_service(critical=False) — a no-op
            # returning 0.0 — elided.
            _, cls, hops = noc.fast_tables()
            t = self.traffic
            t.messages += 1
            c = cls[requester][home]
            if c == 2:
                bits = self.config.memory.line_bits
                h = hops[requester][home]
                t.inter_hops += h
                t.inter_bits += bits * h
                t.intra_transfers += 2
                t.intra_bits += 2 * bits
            elif c == 1:
                t.intra_transfers += 1
                t.intra_bits += self.config.memory.line_bits
            else:
                t.local_accesses += 1
            self.dram_stats.writes += 1
            return 0.0
        if self._resilience is not None and self._unreachable(requester, home):
            # Lost store: the home cannot be written right now.  The
            # write buffer absorbs it, so the task does not stall.
            self._resilience.unreachable_accesses += 1
            return 0.0
        noc.record_transfer(self.traffic, requester, home)
        self.dram_stats.writes += 1
        self._dram_service(home, now_ns, critical=False)
        return 0.0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def end_timestamp(self) -> None:
        """Barrier: bulk-invalidate every cache (Section 4.4)."""
        for cache in self.caches:
            if cache is not None:
                cache.bulk_invalidate()
        for unit in self.units:
            unit.end_timestamp()

    def cache_stats(self) -> CacheStatsTotal:
        total = CacheStatsTotal()
        for cache in self.caches:
            if cache is not None:
                total.merge(cache.stats)
        return total
