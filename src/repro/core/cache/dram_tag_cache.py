"""DRAM cache with in-DRAM tags — the second foil of Figure 13.

Same data placement as the Traveller Cache (data in the reserved DRAM
region), but the tags are stored alongside the data in DRAM, in the
same row (Unison/Footprint style — [47, 48] in the paper).  A probe
reads the tag+data row: on a hit the data came along for free, but the
hit/miss outcome is only known after a full DRAM access, and a miss
has burned that access for nothing — the paper measures a 21% slowdown
and 54% more DRAM energy than Traveller on average.

Die area is negligible (no SRAM tag array at all), which is the one
axis where this design beats Traveller.
"""

from __future__ import annotations

from repro.core.cache.traveller import TravellerCache


class DramTagCache(TravellerCache):
    """Traveller-organised cache whose tags live in DRAM."""

    def tag_probe_dram_accesses(self) -> int:
        """DRAM accesses needed to resolve one probe's tags."""
        return self.config.dram_tag_penalty_accesses

    def tag_area_mm2(self) -> float:
        """No on-die tag SRAM."""
        return 0.0
