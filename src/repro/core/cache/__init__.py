"""Traveller Cache: camp locations, cache arrays, and foil designs."""

from repro.core.cache.camp import CampMapper
from repro.core.cache.policies import (
    LruReplacement,
    ProbabilisticInsertion,
    RandomReplacement,
    make_replacement_policy,
)
from repro.core.cache.traveller import CacheStatsTotal, TravellerCache
from repro.core.cache.sram_cache import SramDataCache
from repro.core.cache.dram_tag_cache import DramTagCache

__all__ = [
    "CampMapper",
    "TravellerCache",
    "SramDataCache",
    "DramTagCache",
    "CacheStatsTotal",
    "ProbabilisticInsertion",
    "RandomReplacement",
    "LruReplacement",
    "make_replacement_policy",
]
