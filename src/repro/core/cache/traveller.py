"""The Traveller Cache proper: one set-associative array per NDP unit.

Each unit reserves ``1/R`` of its local DRAM as a data region for
remote lines; the tags live in on-die SRAM (Section 4.3).  A line may
only be installed at the unit(s) the :class:`~repro.core.cache.camp.
CampMapper` designates, which is enforced by the memory system — this
class is the per-unit array: tags, insertion/replacement policies, and
the bulk invalidation at timestamp barriers.

All primary data cached here are read-only within a timestamp (bulk-
synchronous execution), so there are no dirty lines and invalidation is
a single tag-clear — exactly the coherence argument of Section 4.4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.config import CacheConfig, MemoryConfig
from repro.core.cache.policies import (
    ProbabilisticInsertion,
    VictimPolicy,
    make_replacement_policy,
)


@dataclass
class CacheStatsTotal:
    """System-wide Traveller Cache counters for one run."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    bypasses: int = 0
    evictions: int = 0
    home_direct: int = 0      # accesses whose nearest location was the home
    invalidation_rounds: int = 0

    @property
    def probes(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.probes if self.probes else 0.0

    def merge(self, other: "CacheStatsTotal") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.insertions += other.insertions
        self.bypasses += other.bypasses
        self.evictions += other.evictions
        self.home_direct += other.home_direct
        self.invalidation_rounds += other.invalidation_rounds


class TravellerCache:
    """One NDP unit's Traveller Cache array (DRAM data, SRAM tags)."""

    #: line id stored as its own tag; -1 marks an invalid way.
    INVALID = -1

    def __init__(
        self,
        config: CacheConfig,
        memory: MemoryConfig,
        rng: np.random.Generator,
        dense_layout: bool = False,
    ):
        self.config = config
        self.num_sets = config.num_sets(memory)
        self.associativity = config.associativity
        # Two storage layouts with identical behavior (same hit/miss,
        # eviction, and RNG-draw sequences):
        #
        # * sparse (default): only sets touched since the last bulk
        #   invalidation hold a row of Python lists; a missing row means
        #   all ways invalid (use stamps zero).  Barrier invalidation is
        #   an O(touched) dict clear instead of an O(capacity) array
        #   wipe per unit, and probes are plain list operations —
        #   first-match ``list.index`` has exactly the semantics of
        #   ``np.nonzero(...)[0][0]``.
        # * dense: the original preallocated (num_sets, associativity)
        #   ndarrays.  Kept selectable so the scalar access engine
        #   remains the unmodified reference implementation end to end
        #   (MemorySystem picks the layout from the engine choice).
        self._dense = dense_layout
        if dense_layout:
            self._tags = np.full(
                (self.num_sets, self.associativity), self.INVALID,
                dtype=np.int64,
            )
            self._use_order = np.zeros(
                (self.num_sets, self.associativity), dtype=np.int64
            )
        else:
            self._tags: Dict[int, List[int]] = {}
            self._use_order: Dict[int, List[int]] = {}
        self._stamp = 0
        self._rng = rng
        self._insertion = ProbabilisticInsertion(config.bypass_probability)
        self._victims: VictimPolicy = make_replacement_policy(config.replacement)
        self.stats = CacheStatsTotal()

    # ------------------------------------------------------------------
    def _set_of(self, line: int) -> int:
        return line % self.num_sets

    def lookup(self, line: int) -> bool:
        """Probe the SRAM tags for ``line``."""
        s = line % self.num_sets
        if self._dense:
            ways = self._tags[s]
            hit = np.nonzero(ways == line)[0]
            if hit.size:
                self._stamp += 1
                self._victims.on_touch(
                    self._use_order[s], int(hit[0]), self._stamp
                )
                self.stats.hits += 1
                return True
            self.stats.misses += 1
            return False
        ways = self._tags.get(s)
        if ways is not None:
            try:
                way = ways.index(line)
            except ValueError:
                pass
            else:
                self._stamp += 1
                self._victims.on_touch(self._use_order[s], way, self._stamp)
                self.stats.hits += 1
                return True
        self.stats.misses += 1
        return False

    def insert(self, line: int) -> bool:
        """Try to install ``line`` after a miss.

        Subject to the probabilistic bypass filter; returns True when
        the line was actually installed (the caller then charges the
        DRAM cache-fill write and the home->camp transfer).
        """
        if not self._insertion.should_insert(self._rng):
            self.stats.bypasses += 1
            return False
        s = self._set_of(line)
        if self._dense:
            ways = self._tags[s]
            if line in ways:
                return False  # racing insert from a concurrent miss
            empty = np.nonzero(ways == self.INVALID)[0]
            if empty.size:
                way = int(empty[0])
            else:
                way = self._victims.choose_way(self._use_order[s], self._rng)
                self.stats.evictions += 1
            ways[way] = line
            self._stamp += 1
            self._victims.on_touch(self._use_order[s], way, self._stamp)
            self.stats.insertions += 1
            return True
        ways = self._tags.get(s)
        if ways is None:
            ways = self._tags[s] = [self.INVALID] * self.associativity
            self._use_order[s] = [0] * self.associativity
        if line in ways:
            return False  # racing insert from a concurrent miss
        try:
            way = ways.index(self.INVALID)
        except ValueError:
            way = self._victims.choose_way(self._use_order[s], self._rng)
            self.stats.evictions += 1
        ways[way] = line
        self._stamp += 1
        self._victims.on_touch(self._use_order[s], way, self._stamp)
        self.stats.insertions += 1
        return True

    def contains(self, line: int) -> bool:
        """Stat-free membership test."""
        if self._dense:
            return bool((self._tags[self._set_of(line)] == line).any())
        ways = self._tags.get(self._set_of(line))
        return ways is not None and line in ways

    def bulk_invalidate(self) -> None:
        """Clear all tags at the timestamp barrier (Section 4.4)."""
        if self._dense:
            self._tags.fill(self.INVALID)
            self._use_order.fill(0)
        else:
            self._tags.clear()
            self._use_order.clear()
        self.stats.invalidation_rounds += 1

    def occupancy(self) -> int:
        if self._dense:
            return int((self._tags != self.INVALID).sum())
        return sum(
            self.associativity - row.count(self.INVALID)
            for row in self._tags.values()
        )

    @property
    def capacity_lines(self) -> int:
        return self.num_sets * self.associativity
