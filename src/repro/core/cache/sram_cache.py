"""Pure on-die SRAM data cache — the first foil of Figure 13.

Same camp-location organisation and capacity as the Traveller Cache,
but both data *and* tags live in logic-die SRAM.  Hits avoid the DRAM
access entirely (faster, less dynamic energy), at the cost of an
unrealistic die area: the paper quotes ~16.12 mm^2 per unit for the
8 MB array, versus 0.32 mm^2 for Traveller's tag-only SRAM.

Behaviourally (hit/miss/insertion decisions) it is identical to
:class:`~repro.core.cache.traveller.TravellerCache`; the memory system
charges different latency/energy events per style, and the area model
in :mod:`repro.arch.sram` exposes the die-area difference.
"""

from __future__ import annotations

from repro.arch.sram import sram_area_mm2
from repro.core.cache.traveller import TravellerCache


class SramDataCache(TravellerCache):
    """Traveller-organised cache whose data array is SRAM."""

    def data_area_mm2(self, line_bytes: int = 64) -> float:
        """Logic-die area of the SRAM data array (the 16.12 mm^2 story)."""
        return sram_area_mm2(self.capacity_lines * line_bytes)
