"""Insertion and replacement policies for the Traveller Cache family.

Section 4.4: ABNDP inserts probabilistically (a block bypasses the cache
with probability 0.4 by default) to filter low-reuse data under the
power-law access distributions of NDP workloads, and replaces randomly —
the paper found LRU buys nothing once insertion is probabilistic, and
random replacement needs no extra metadata.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.config import ReplacementPolicy


class ProbabilisticInsertion:
    """Bernoulli bypass filter in front of the cache (Section 4.4)."""

    def __init__(self, bypass_probability: float):
        if not 0.0 <= bypass_probability <= 1.0:
            raise ValueError("bypass probability must be in [0, 1]")
        self.bypass_probability = bypass_probability

    def should_insert(self, rng: np.random.Generator) -> bool:
        if self.bypass_probability <= 0.0:
            return True
        if self.bypass_probability >= 1.0:
            return False
        return rng.random() >= self.bypass_probability


class VictimPolicy(Protocol):
    """Chooses which way of a full set to evict."""

    def choose_way(self, use_order: np.ndarray, rng: np.random.Generator) -> int:
        """``use_order[w]`` is the last-use stamp of way ``w``."""
        ...

    def on_touch(self, use_order: np.ndarray, way: int, stamp: int) -> None:
        ...


class RandomReplacement:
    """Uniform random victim; keeps no per-way state."""

    def choose_way(self, use_order: np.ndarray, rng: np.random.Generator) -> int:
        return int(rng.integers(len(use_order)))

    def on_touch(self, use_order: np.ndarray, way: int, stamp: int) -> None:
        # Random replacement ignores recency; nothing to record.
        return None


class LruReplacement:
    """Evict the way with the oldest use stamp."""

    def choose_way(self, use_order: np.ndarray, rng: np.random.Generator) -> int:
        return int(np.argmin(use_order))

    def on_touch(self, use_order: np.ndarray, way: int, stamp: int) -> None:
        use_order[way] = stamp


def make_replacement_policy(policy: ReplacementPolicy) -> VictimPolicy:
    if policy is ReplacementPolicy.RANDOM:
        return RandomReplacement()
    if policy is ReplacementPolicy.LRU:
        return LruReplacement()
    raise ValueError(f"unknown replacement policy {policy!r}")
