"""Camp-location mapping (Section 4.2).

Every cacheline has one *home* (the NDP unit whose local DRAM stores
it) and ``C`` *camp locations* — the only other units allowed to cache
it.  The units are partitioned into ``C + 1`` spatially localized
groups; the group containing the home contributes the home itself, and
every other group contributes exactly one camp, chosen deterministically
from the line's address.

Skewed mapping
--------------
The paper derives each group's camp unit from a *different bit slice*
of the address (like a skewed-associative cache), so two lines that
conflict in one group usually diverge in another, and the camps of the
multiple lines used by one task are likely to be close together in at
least one group.  A literal bit-slice needs more address entropy than a small
synthetic footprint provides (the paper's slices reach bit 41), so we
realise the same property with per-group multiplicative hashes: group
``g`` maps line ``L`` to unit ``base(g) + (L * A_g mod 2^64) >> 48 mod
U``, with distinct odd multipliers ``A_g``.  The *identical* foil of
Figure 11 uses the same multiplier for every group, which reproduces the
failure mode the paper describes: conflicts and distances correlate
across all groups.
"""

from __future__ import annotations

import itertools
from functools import lru_cache
from typing import List, Tuple

import numpy as np

from repro.arch.memory_map import MemoryMap
from repro.arch.topology import Topology
from repro.config import CacheConfig, CampMapping

_MASK64 = (1 << 64) - 1

# Distinct odd 64-bit multipliers (splitmix64-derived constants).
_SKEWED_MULTIPLIERS = (
    0x9E3779B97F4A7C15,
    0xBF58476D1CE4E5B9,
    0x94D049BB133111EB,
    0xD6E8FEB86659FD93,
    0xA5A3B1C9057F8E2B,
    0xC2B2AE3D27D4EB4F,
    0x165667B19E3779F9,
    0x27D4EB2F165667C5,
    0x9E3779B185EBCA87,
    0xC6A4A7935BD1E995,
    0xFF51AFD7ED558CCD,
    0xC4CEB9FE1A85EC53,
    0x2545F4914F6CDD1D,
    0x5851F42D4C957F2D,
    0x14057B7EF767814F,
    0xB5026F5AA96619E9,
)


#: process-unique tokens for CampMapper instances.  Consumers memoize
#: derived per-line data keyed on ``(mapper.token, mapper.epoch)``; a
#: counter (unlike ``id()``) is never reused after garbage collection,
#: so a memo attached to a shared object (e.g. a task hint reused
#: across designs) can never alias a new mapper.
_mapper_tokens = itertools.count()


class CampMapper:
    """Deterministic line -> {camp unit} mapping for every group."""

    def __init__(
        self,
        topology: Topology,
        memory_map: MemoryMap,
        cache: CacheConfig,
    ):
        groups = cache.num_groups()
        if topology.num_groups != groups:
            raise ValueError(
                f"topology was built with {topology.num_groups} groups, "
                f"cache config wants {groups}"
            )
        self.topology = topology
        self.memory_map = memory_map
        self.cache = cache
        self.num_groups = groups
        self.units_per_group = topology.units_per_group
        self.num_sets = cache.num_sets(memory_map.memory)

        if cache.camp_mapping is CampMapping.SKEWED:
            self._multipliers = [
                _SKEWED_MULTIPLIERS[g % len(_SKEWED_MULTIPLIERS)]
                for g in range(groups)
            ]
        else:
            self._multipliers = [_SKEWED_MULTIPLIERS[0]] * groups

        # Per-line location cache: line -> int64 array of C+1 unit ids.
        self._loc_cache: dict = {}
        # Per-line nearest-location memo (hot path: one lookup per
        # memory access and per scheduler scoring):
        #   line -> (nearest unit per requester, is-home flag per
        #            requester, distance-to-nearest per unit)
        self._nearest_cache: dict = {}
        # Unit liveness under faults; None while every unit is healthy.
        self._alive: "np.ndarray | None" = None
        #: identity/version pair for externally memoized derived data
        #: (see _mapper_tokens).  ``epoch`` bumps whenever the mapping
        #: changes (clear_cache / set_alive_mask).
        self.token: int = next(_mapper_tokens)
        self.epoch: int = 0

    # ------------------------------------------------------------------
    # scalar interface
    # ------------------------------------------------------------------
    @property
    def memo_entries(self) -> int:
        """Lines with memoized location tables (a telemetry gauge: the
        working-set footprint the camp mapper has resolved so far)."""
        return len(self._loc_cache)

    def home_unit(self, line: int) -> int:
        return self.memory_map.home_of_line(line)

    def set_alive_mask(self, alive: "np.ndarray | None") -> int:
        """Remap camps around dead units (fault-injection subsystem).

        A group whose designated camp unit died re-elects the next unit
        of the same group by linear probing from the hash slot, keeping
        the choice deterministic; a fully dead group contributes no camp
        (sentinel ``-1`` in :meth:`locations`).  Drops every memoized
        table — the mapping changed.  Returns the number of memo entries
        dropped.  ``None`` (or an all-True mask) restores healthy
        mapping.
        """
        if alive is not None and bool(np.all(alive)):
            alive = None
        dropped = len(self._loc_cache)
        self._alive = alive
        self.clear_cache()
        return dropped

    def camp_in_group(self, line: int, group: int) -> int:
        """The single unit in ``group`` allowed to cache ``line``.

        If ``group`` is the home's group this *is* the home unit — the
        group contributes the memory location itself, not a cache copy.
        Under faults a dead camp is re-elected by probing within the
        group; ``-1`` means the whole group is dead.
        """
        home = self.home_unit(line)
        if self.topology.group_of(home) == group:
            return home
        h = ((line * self._multipliers[group]) & _MASK64) >> 48
        base = group * self.units_per_group
        slot = int(h % self.units_per_group)
        if self._alive is None:
            return base + slot
        for off in range(self.units_per_group):
            unit = base + (slot + off) % self.units_per_group
            if self._alive[unit]:
                return unit
        return -1

    def locations(self, line: int) -> np.ndarray:
        """All allowed locations of ``line``: one unit per group.

        Index ``g`` of the result is group ``g``'s location (camp, or
        the home for the home group).  Cached per line — workloads touch
        the same lines many times.
        """
        cached = self._loc_cache.get(line)
        if cached is not None:
            return cached
        locs = np.empty(self.num_groups, dtype=np.int64)
        for g in range(self.num_groups):
            locs[g] = self.camp_in_group(line, g)
        locs.flags.writeable = False
        self._loc_cache[line] = locs
        return locs

    def camp_locations(self, line: int) -> List[int]:
        """Only the C cache-capable camps (home excluded; dead groups'
        ``-1`` sentinels dropped)."""
        home = self.home_unit(line)
        home_group = self.topology.group_of(home)
        return [
            int(u) for g, u in enumerate(self.locations(line))
            if g != home_group and u >= 0
        ]

    def set_index(self, line: int) -> int:
        """Cache-set index: the low address bits, as in a normal cache."""
        return line % self.num_sets

    def _nearest_tables(self, line: int, cost_matrix: np.ndarray):
        """Memoized per-line tables: for every requester, the nearest
        allowed location, whether it is the home, and its distance.

        All inputs are run-static (the cost matrix is built once, the
        camp mapping is deterministic), so the tables are computed once
        per line and reused by every access and scheduling decision.
        """
        cached = self._nearest_cache.get(line)
        if cached is not None:
            return cached
        locs = self.locations(line)
        if self._alive is not None:
            valid = locs[locs >= 0]
            if valid.size < locs.size:
                locs = valid  # dead groups contribute no location
        costs = cost_matrix[:, locs]                 # (N, G)
        idx = np.argmin(costs, axis=1)               # (N,)
        nearest = locs[idx]
        home = self.home_unit(line)
        tables = (
            nearest,
            nearest == home,
            costs[np.arange(len(idx)), idx],
        )
        self._nearest_cache[line] = tables
        return tables

    def nearest_location(self, line: int, requester: int,
                         cost_matrix: np.ndarray) -> Tuple[int, bool]:
        """Closest allowed location to ``requester``.

        Returns ``(unit, is_home)``.  Traveller probes only this single
        nearest location (Section 4.3).
        """
        nearest, is_home, _ = self._nearest_tables(line, cost_matrix)
        return int(nearest[requester]), bool(is_home[requester])

    def nearest_cost_vector(self, line: int,
                            cost_matrix: np.ndarray) -> np.ndarray:
        """Distance from every unit to ``line``'s nearest allowed
        location (the per-line column of Equation 2's camp-aware cost)."""
        return self._nearest_tables(line, cost_matrix)[2]

    # ------------------------------------------------------------------
    # vectorised interface (scheduler scoring)
    # ------------------------------------------------------------------
    def locations_for_lines(self, lines: np.ndarray) -> np.ndarray:
        """(len(lines), num_groups) matrix of allowed location units."""
        lines = np.asarray(lines, dtype=np.int64)
        out = np.empty((len(lines), self.num_groups), dtype=np.int64)
        for i, line in enumerate(lines):
            out[i] = self.locations(int(line))
        return out

    def prime_lines(self, lines, cost_matrix: np.ndarray) -> None:
        """Fill the per-line memo tables for a whole batch at once.

        Array-at-a-time version of :meth:`locations` +
        :meth:`_nearest_tables` for every not-yet-memoized line in
        ``lines`` (an iterable of Python ints).  The hash, the argmin
        tie-break (first minimum), and the stored values are exactly
        those of the scalar path — the tables land in the same memo
        dicts, so scalar and batched consumers see identical data.
        Under an alive-mask the per-group probing makes vectorization
        awkward; that rare case falls back to the scalar fill.
        """
        cache = self._nearest_cache
        missing = [ln for ln in lines if ln not in cache]
        if not missing:
            return
        if self._alive is not None:
            for ln in missing:
                self._nearest_tables(ln, cost_matrix)
            return
        arr = np.asarray(missing, dtype=np.int64)
        batch = arr.size
        homes = self.memory_map.homes_of_lines(arr)
        home_groups = self.topology.group_of_unit[homes]
        upg = self.units_per_group
        u64 = arr.astype(np.uint64)
        locs = np.empty((batch, self.num_groups), dtype=np.int64)
        for g in range(self.num_groups):
            h = (u64 * np.uint64(self._multipliers[g])) >> np.uint64(48)
            locs[:, g] = g * upg + (h % np.uint64(upg)).astype(np.int64)
        # The home's group contributes the home itself, not a camp.
        rows = np.arange(batch)
        locs[rows, home_groups] = homes
        costs = cost_matrix[:, locs]                     # (N, B, G)
        idx = np.argmin(costs, axis=2)                   # (N, B)
        nearest = locs[rows[None, :], idx]               # (N, B)
        dist = np.take_along_axis(
            costs, idx[:, :, None], axis=2
        )[:, :, 0]                                       # (N, B)
        loc_cache = self._loc_cache
        for b, ln in enumerate(missing):
            if ln not in loc_cache:
                row = locs[b].copy()
                row.flags.writeable = False
                loc_cache[ln] = row
            near = np.ascontiguousarray(nearest[:, b])
            cache[ln] = (
                near,
                near == int(homes[b]),
                np.ascontiguousarray(dist[:, b]),
            )

    # ------------------------------------------------------------------
    # metadata sizing (Section 4.3)
    # ------------------------------------------------------------------
    def tag_bits_per_block(self) -> int:
        """Tag width after removing offset, set, and unit-id bits.

        Reproduces the Section 4.3 arithmetic: for the default system,
        log2(64 GB) - 6 (offset) - 15 (set) - 5 (unit-in-group) = 10.

        Note: dropping the unit-in-group bits is valid for the paper's
        bit-slice camp mapping, where the camp's unit id *is* a slice
        of the address and can be reconstructed at probe time.  This
        reproduction's hash-based stand-in for the slices (see the
        module docstring) is not invertible, so a literal hardware
        implementation of it would need the full 15-bit tag; the
        metadata sizing deliberately follows the paper's scheme, since
        that is the design being reproduced.
        """
        total_bits = max(1, (self.memory_map.total_capacity - 1).bit_length())
        offset_bits = (self.memory_map.line_bytes - 1).bit_length()
        set_bits = max(0, (self.num_sets - 1).bit_length())
        unit_bits = max(0, (self.units_per_group - 1).bit_length())
        return max(1, total_bits - offset_bits - set_bits - unit_bits)

    def tag_storage_bytes(self) -> int:
        """SRAM tag-array size of one unit's Traveller Cache."""
        blocks = self.num_sets * self.cache.associativity
        return blocks * self.tag_bits_per_block() // 8

    def clear_cache(self) -> None:
        """Drop the memoized per-line location and nearest tables."""
        self._loc_cache.clear()
        self._nearest_cache.clear()
        self.epoch += 1
