"""The paper's primary contribution: Traveller Cache + hybrid scheduling.

``repro.core.cache``     -- camp-location mapping and the distributed
                            DRAM cache (Section 4), plus the SRAM-cache
                            and DRAM-tag-cache foils of Figure 13.
``repro.core.scheduler`` -- the Table 2 scheduling policies, including
                            the hybrid score-based policy (Section 5).
``repro.core.system``    -- wires a design point (Table 2 row) into a
                            runnable simulated machine.

Submodules are loaded lazily so that low-level pieces (cache stats,
scheduler classes) can be imported without dragging in the full system
assembly, which would otherwise create import cycles.
"""

_LAZY = {
    "NdpSystem": "repro.core.system",
    "DesignPoint": "repro.core.system",
    "DESIGN_POINTS": "repro.core.system",
    "build_system": "repro.core.system",
    "HostModel": "repro.core.host",
    "MemorySystem": "repro.core.memory_system",
}

__all__ = list(_LAZY)


def __getattr__(name):
    if name in _LAZY:
        import importlib

        module = importlib.import_module(_LAZY[name])
        return getattr(module, name)
    raise AttributeError(f"module 'repro.core' has no attribute {name!r}")
