"""Design points (Table 2) and the simulated-machine driver.

:class:`DesignPoint` names one row of Table 2 — a scheduling policy
paired with a cache style.  :func:`build_system` assembles the full
machine for a design point, and :class:`NdpSystem.run` executes a
workload on it, returning a :class:`~repro.analysis.metrics.RunResult`
with every metric the paper's figures consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.analysis.metrics import RunResult
from repro.arch.dram import DramChannel
from repro.arch.energy import EnergyModel
from repro.arch.memory_map import Allocator, MemoryMap
from repro.arch.ndp_unit import build_units
from repro.arch.noc import Interconnect
from repro.arch.sram import SramModel
from repro.arch.topology import Topology
from repro.config import (
    CacheStyle,
    SchedulingPolicy,
    SystemConfig,
    default_config,
)
from repro.core.cache.camp import CampMapper
from repro.core.memory_system import MemorySystem
from repro.core.scheduler.base import Scheduler, SchedulerContext
from repro.core.scheduler.colocate import ColocateScheduler
from repro.core.scheduler.hybrid import HybridScheduler
from repro.core.scheduler.lowest_distance import LowestDistanceScheduler
from repro.core.scheduler.work_stealing import WorkStealingScheduler
from repro.runtime.executor import BulkSyncExecutor, ExecutionTrace
from repro.telemetry import Telemetry, resolve_telemetry


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated system design (a row of Table 2)."""

    name: str
    policy: SchedulingPolicy
    cache: CacheStyle
    description: str = ""


#: The paper's design matrix (Table 2).  ``H`` (host CPU) is analytic
#: and lives in :mod:`repro.core.host`.
DESIGN_POINTS: Dict[str, DesignPoint] = {
    "B": DesignPoint(
        "B", SchedulingPolicy.COLOCATE, CacheStyle.NONE,
        "Co-locating with one data element; no DRAM cache",
    ),
    "Sm": DesignPoint(
        "Sm", SchedulingPolicy.LOWEST_DISTANCE, CacheStyle.NONE,
        "Lowest-distance mapping; no DRAM cache",
    ),
    "Sl": DesignPoint(
        "Sl", SchedulingPolicy.WORK_STEALING, CacheStyle.NONE,
        "Lowest-distance + work stealing; no DRAM cache",
    ),
    "Sh": DesignPoint(
        "Sh", SchedulingPolicy.HYBRID, CacheStyle.NONE,
        "Hybrid scheduling (ours); no DRAM cache",
    ),
    "C": DesignPoint(
        "C", SchedulingPolicy.LOWEST_DISTANCE, CacheStyle.TRAVELLER,
        "Lowest-distance mapping; Traveller Cache (ours)",
    ),
    "O": DesignPoint(
        "O", SchedulingPolicy.HYBRID, CacheStyle.TRAVELLER,
        "Hybrid scheduling + Traveller Cache (full ABNDP)",
    ),
}


def _apply_design(config: SystemConfig, design: DesignPoint) -> SystemConfig:
    """Overlay a design point onto a base configuration.

    The design point decides the scheduling policy and *whether* the
    machine carries a remote-data cache.  Which cache implementation
    (Traveller / pure SRAM / DRAM-tag — the Figure 13 styles) remains
    the base configuration's choice, so cache-style studies can reuse
    the cached design points.
    """
    import dataclasses

    cfg = config
    if cfg.scheduler.policy is not design.policy:
        cfg = cfg.with_(
            scheduler=dataclasses.replace(cfg.scheduler, policy=design.policy)
        )
    if design.cache is CacheStyle.NONE:
        wanted = CacheStyle.NONE
    elif cfg.cache.style is CacheStyle.NONE:
        wanted = design.cache
    else:
        wanted = cfg.cache.style  # keep the configured cached style
    if cfg.cache.style is not wanted:
        cfg = cfg.with_(
            cache=dataclasses.replace(cfg.cache, style=wanted)
        )
    return cfg.validate()


def _sweep_memos():
    """The warm-runtime memo caches, or None for a cold build.

    Inert by default: only processes inside an enabled warm scope (a
    :class:`~repro.sweep.runtime.WorkerRuntime` pool worker, or a
    parent ``with runtime.activate():`` block) ever get a non-None
    answer, so direct builds stay byte-for-byte the cold code path.
    """
    from repro.sweep.runtime import active_memos

    return active_memos()


class NdpSystem:
    """A fully assembled simulated NDP machine."""

    def __init__(
        self,
        config: SystemConfig,
        design_name: str = "O",
        telemetry: Optional[Telemetry] = None,
        fault_schedule=None,
    ):
        config.validate()
        self.config = config
        self.design_name = design_name
        self.telemetry = resolve_telemetry(telemetry)
        self.rng = np.random.default_rng(config.seed)

        has_cache = config.cache.style is not CacheStyle.NONE
        num_groups = config.cache.num_groups() if has_cache else 1
        memos = _sweep_memos()
        if memos is not None:
            # Topology is immutable after construction, so warm scopes
            # share one instance per (topology config, groups).
            self.topology = memos.topology_for(config.topology, num_groups)
        else:
            self.topology = Topology(config.topology, num_groups=num_groups)
        self.interconnect = Interconnect(self.topology, config.noc, config.memory)
        self.dram = DramChannel(config.memory)
        self.memory_map = MemoryMap(self.topology, config.memory)

        self.camp_mapper: Optional[CampMapper] = None
        tag_bytes = 0
        data_cache_bytes = 0
        if has_cache:
            self.camp_mapper = CampMapper(
                self.topology, self.memory_map, config.cache
            )
            tag_bytes = self.camp_mapper.tag_storage_bytes()
            if config.cache.style is CacheStyle.SRAM:
                data_cache_bytes = config.cache.cache_bytes(config.memory)
        self.sram = SramModel(config.sram, tag_array_bytes=tag_bytes,
                              data_cache_bytes=data_cache_bytes)

        self.units = build_units(config)
        self.memory_system = MemorySystem(
            config=config,
            interconnect=self.interconnect,
            dram=self.dram,
            sram=self.sram,
            memory_map=self.memory_map,
            units=self.units,
            camp_mapper=self.camp_mapper,
            rng=self.rng,
        )

        from repro.runtime.workload_exchange import WorkloadExchange

        self.exchange = WorkloadExchange(
            self.topology, config.scheduler.exchange_interval_cycles
        )

        context = SchedulerContext(
            memory_map=self.memory_map,
            cost_matrix=self.interconnect.cost_matrix,
            exchange=self.exchange,
            camp_mapper=self.camp_mapper,
            hybrid_weight=config.scheduler.hybrid_weight(
                config.topology, config.noc
            ),
            frequency_ghz=config.core.frequency_ghz,
            dram_latency_ns=config.memory.access_latency_ns,
            prefetch_hide_fraction=config.scheduler.prefetch_hide_fraction,
            tie_tolerance_ns=config.scheduler.tie_tolerance_ns,
            load_deadband=config.scheduler.load_deadband,
            load_floor_cycles=config.scheduler.load_floor_cycles,
            fast_scoring=config.memory.access_engine in ("batched",
                                                         "vector"),
        )
        self.scheduler = self._build_scheduler(context, has_cache)
        self.executor = BulkSyncExecutor(
            config, self.units, self.scheduler, self.memory_system, self.exchange
        )
        self.energy_model = EnergyModel(
            config, self.interconnect, self.dram, self.sram
        )
        if memos is not None:
            # Seed NoC fast tables and camp home/nearest tables from
            # earlier runs on the same machine shape (pure derived
            # data — identical to what this run would compute itself).
            memos.attach(self)

        # Fault-injection subsystem: only a non-empty schedule pays any
        # cost — without one the machine is byte-identical to a build
        # that never heard of faults.
        self.fault_controller = None
        if fault_schedule:
            from repro.faults.controller import FaultController

            self.fault_controller = FaultController(
                schedule=fault_schedule,
                seed=config.seed,
                num_units=config.num_units,
                interconnect=self.interconnect,
                dram=self.dram,
                memory_system=self.memory_system,
                context=context,
                camp_mapper=self.camp_mapper,
                telemetry=self.telemetry,
            )
            self.executor.faults = self.fault_controller

        if self.telemetry.enabled:
            self._register_telemetry()

    # ------------------------------------------------------------------
    def _register_telemetry(self) -> None:
        """Bind every probe of the machine to the telemetry object.

        All counter-style metrics are *pull* bindings onto the stat
        structs the simulator maintains anyway (the traffic meter,
        DRAM/SRAM/cache stats), evaluated only at sample points — so
        the telemetry totals are the RunResult aggregates by
        construction and the hot paths stay untouched.
        """
        import dataclasses as _dc

        tel = self.telemetry
        tel.bind(
            self.config.core.frequency_ghz,
            design=self.design_name,
            num_units=self.config.num_units,
            policy=self.config.scheduler.policy.value,
            cache_style=self.config.cache.style.value,
        )
        tel.link_meter = self.interconnect.enable_link_metering()
        self.executor.telemetry = tel
        self.scheduler.telemetry = tel
        reg = tel.registry

        def bind_fields(scope_name, obj):
            scope = reg.scope(scope_name)
            for f in _dc.fields(obj):
                scope.register_pull(
                    f.name, lambda o=obj, n=f.name: getattr(o, n)
                )

        ms = self.memory_system
        bind_fields("noc", ms.traffic)
        bind_fields("dram", ms.dram_stats)
        bind_fields("sram", ms.sram_stats)

        # System-wide Traveller totals (zero-valued for cacheless
        # designs, so the counter names exist on every machine).
        trav = reg.scope("traveller")
        for name in ("hits", "misses", "insertions", "bypasses",
                     "evictions", "home_direct"):
            trav.register_pull(
                name, lambda n=name: getattr(ms.cache_stats(), n)
            )
        trav.register_pull("hit_rate", lambda: ms.cache_stats().hit_rate)

        # Per-unit scopes: traveller arrays, task/activity counters.
        for uid, unit in enumerate(self.units):
            scope = reg.scope(f"unit.{uid}")
            scope.register_pull(
                "tasks_executed", lambda u=unit: u.tasks_executed
            )
            scope.register_pull(
                "active_cycles", lambda u=unit: u.active_cycles
            )
            cache = ms.caches[uid]
            if cache is not None:
                tscope = scope.scope("traveller")
                tscope.register_pull(
                    "hits", lambda c=cache: c.stats.hits
                )
                tscope.register_pull(
                    "misses", lambda c=cache: c.stats.misses
                )
                tscope.register_pull(
                    "occupancy", lambda c=cache: c.occupancy()
                )
            tel.timeline.name_thread(0, uid, f"unit {uid}")

        ex = reg.scope("exchange")
        for name in ("rounds", "intra_messages", "inter_messages"):
            ex.register_pull(
                name, lambda n=name: getattr(self.exchange.stats, n)
            )
        if self.camp_mapper is not None:
            camp = reg.scope("camp")
            camp.register_pull(
                "memo_lines", lambda: self.camp_mapper.memo_entries
            )
        if self.fault_controller is not None:
            import dataclasses as _dc2

            fc = self.fault_controller
            faults = reg.scope("faults")
            for f in _dc2.fields(fc.stats):
                faults.register_pull(
                    f.name, lambda n=f.name: getattr(fc.stats, n)
                )
            faults.register_pull(
                "alive_units", lambda: int(fc.alive.sum())
            )

        # Time-series probes, sampled at timestamp barriers.
        s = tel.sampler
        s.add_probe("traveller.hits", lambda: ms.cache_stats().hits)
        s.add_probe("traveller.misses", lambda: ms.cache_stats().misses)
        s.add_probe("traveller.hit_rate", lambda: ms.cache_stats().hit_rate)
        s.add_probe("noc.inter_hops", lambda: ms.traffic.inter_hops)
        s.add_probe("noc.messages", lambda: ms.traffic.messages)
        s.add_probe("dram.reads", lambda: ms.dram_stats.reads)
        s.add_probe("exchange.skew", self.exchange.skew)
        s.add_probe(
            "exchange.w_mean",
            lambda: float(self.exchange.true_workloads.mean()),
        )

    # ------------------------------------------------------------------
    def _build_scheduler(self, context: SchedulerContext, has_cache: bool) -> Scheduler:
        policy = self.config.scheduler.policy
        if policy is SchedulingPolicy.COLOCATE:
            return ColocateScheduler(context)
        if policy is SchedulingPolicy.LOWEST_DISTANCE:
            return LowestDistanceScheduler(context)
        if policy is SchedulingPolicy.WORK_STEALING:
            return WorkStealingScheduler(context)
        if policy is SchedulingPolicy.HYBRID:
            return HybridScheduler(context, use_camps=has_cache)
        raise ValueError(f"unknown policy {policy!r}")

    def allocator(self) -> Allocator:
        """A fresh primary-data allocator for this machine.

        The Traveller Cache region is carved out of the top of each
        unit's local DRAM, so it is excluded from allocation.
        """
        reserve = 0.0
        if self.config.cache.style is not CacheStyle.NONE:
            reserve = 1.0 / self.config.cache.capacity_ratio
        return Allocator(self.memory_map, reserve_top_fraction=reserve)

    # ------------------------------------------------------------------
    def run(self, workload, max_timestamps: Optional[int] = None,
            verify: bool = False) -> RunResult:
        """Execute ``workload`` on this machine and collect every metric.

        ``workload`` follows the protocol of
        :class:`repro.workloads.base.Workload`.  With ``verify=True``
        the workload's final answer is checked against its independent
        reference implementation (raises AssertionError on mismatch).
        """
        if self.telemetry.enabled:
            self.telemetry.timeline.metadata["workload"] = workload.name
        state = workload.setup(self)
        roots = workload.root_tasks(state)
        trace: ExecutionTrace = self.executor.run(
            roots,
            state=state,
            max_timestamps=max_timestamps,
            on_barrier=workload.on_barrier,
        )
        result = self._collect(workload.name, trace)
        if verify:
            workload.verify(state)
        return result

    def _collect(self, workload_name: str, trace: ExecutionTrace) -> RunResult:
        per_core = np.concatenate([u.core_active for u in self.units])
        energy = self.energy_model.integrate(
            instructions=trace.instructions,
            traffic=self.memory_system.traffic,
            dram_stats=self.memory_system.dram_stats,
            sram_stats=self.memory_system.sram_stats,
            makespan_cycles=trace.makespan_cycles,
        )
        telemetry = None
        if self.telemetry.enabled:
            telemetry = self.telemetry.summary()
        return RunResult(
            design=self.design_name,
            workload=workload_name,
            makespan_cycles=trace.makespan_cycles,
            active_cycles_per_core=per_core,
            traffic=self.memory_system.traffic,
            dram=self.memory_system.dram_stats,
            sram=self.memory_system.sram_stats,
            cache=self.memory_system.cache_stats(),
            energy=energy,
            tasks_executed=trace.tasks_executed,
            timestamps_executed=trace.timestamps_executed,
            steals=trace.steals,
            instructions=trace.instructions,
            telemetry=telemetry,
            resilience=(
                self.fault_controller.stats
                if self.fault_controller is not None else None
            ),
        )


def build_system(
    design: str = "O",
    config: Optional[SystemConfig] = None,
    telemetry: Optional[Telemetry] = None,
    fault_schedule=None,
) -> NdpSystem:
    """Assemble the machine for one Table 2 design point.

    ``config`` defaults to the paper's Table 1 system; the design's
    policy and cache style override the corresponding config fields.
    Pass a :class:`~repro.telemetry.Telemetry` to instrument the run
    (omitted = the zero-overhead null sink), and/or a
    :class:`~repro.faults.FaultSchedule` to exercise the machine under
    failures.
    """
    if design not in DESIGN_POINTS:
        raise KeyError(
            f"unknown design {design!r}; expected one of {sorted(DESIGN_POINTS)}"
        )
    base = config if config is not None else default_config()
    cfg = _apply_design(base, DESIGN_POINTS[design])
    return NdpSystem(cfg, design_name=design, telemetry=telemetry,
                     fault_schedule=fault_schedule)
