"""Design **Sl**: lowest-distance placement plus dynamic work stealing.

Placement is identical to Sm; at run time, units that would otherwise
idle steal queued tasks from the most loaded unit (Section 2.3, [13]).
Stolen tasks execute away from their data's preferred location, so each
steal trades remote-access cost for balance — the exact tradeoff the
paper's Figure 2 illustrates.

The simulator applies stealing as an explicit rebalancing pass over the
per-unit queues before execution: thieves (least-loaded units) take
tasks from the *back* of the victim's queue (the classic steal end)
whenever doing so reduces the makespan estimate.

Crucially, the steal decision is **distance-blind**: a thief balances
on the tasks' workload estimates (the same hint-derived value the
queues track) and has no idea how much extra remote-access cost the
move incurs — that cost materialises at execution time, which is
exactly the Figure 2 tradeoff the paper describes ("scheduling tasks
away from their preferred locations ... would inevitably introduce
more remote accesses").  Every steal also charges a fixed overhead to
the thief.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.core.scheduler.base import Scheduler
from repro.core.scheduler.lowest_distance import LowestDistanceScheduler
from repro.runtime.task import Task


class WorkStealingScheduler(LowestDistanceScheduler):
    """Sm placement; the executor additionally runs the stealing pass."""

    policy_name = "work_stealing"

    uses_work_stealing = True


def rebalance_by_stealing(
    tasks_by_unit: List[List[Task]],
    estimate: Callable[[Task, int], float],
    cores_per_unit: int,
    steal_overhead: float = 200.0,
    max_steals: Optional[int] = None,
    on_move: Optional[Callable[[Task, int, int, float, float], None]] = None,
    eligible: Optional[np.ndarray] = None,
) -> int:
    """Greedy steal pass: move queue tails from busiest to idlest units.

    ``estimate(task, unit)`` returns the task's expected duration in
    cycles when executed at ``unit``.  Returns the number of steals
    performed; ``tasks_by_unit`` is mutated in place and every moved
    task's ``assigned_unit`` is updated.  ``on_move(task, victim,
    thief, old_estimate, new_estimate)`` lets the caller keep external
    bookkeeping (the W counters) consistent with each move.
    ``eligible`` (boolean per unit) restricts both victims and thieves
    — dead units neither give up nor receive tasks.
    """
    n = len(tasks_by_unit)
    if n < 2:
        return 0
    if eligible is not None and eligible.sum() < 2:
        return 0  # nobody to trade with
    blocked = (
        np.zeros(n, dtype=bool) if eligible is None else ~eligible
    )

    # Cache each task's duration estimate at its current unit.
    est_cache = {}
    loads = np.zeros(n, dtype=np.float64)
    for u, tasks in enumerate(tasks_by_unit):
        for t in tasks:
            d = estimate(t, u)
            est_cache[t.task_id] = d
            loads[u] += d
    loads /= max(1, cores_per_unit)

    total_tasks = sum(len(ts) for ts in tasks_by_unit)
    if max_steals is None:
        max_steals = total_tasks  # every task may move at most ~once

    steals = 0
    # Selection state, maintained incrementally: ``masked`` mirrors
    # ``loads`` with exhausted/blocked victims at -inf (exhausted =
    # queue tails that proved unprofitable; they become eligible again
    # after any successful move changes loads), ``thief_scores``
    # mirrors ``loads`` with blocked thieves at +inf.  Entries are
    # re-assigned straight from ``loads`` whenever they change, so
    # every argmax/argmin sees exactly the values the per-iteration
    # rebuilds used to produce.
    exhausted = np.zeros(n, dtype=bool)
    any_blocked = bool(blocked.any())
    masked = np.where(blocked, -np.inf, loads)
    thief_scores = np.where(blocked, np.inf, loads)
    thief = int(np.argmin(thief_scores))
    while steals < max_steals:
        victim = int(np.argmax(masked))
        if masked[victim] == -np.inf:
            break  # every victim exhausted
        if victim == thief or len(tasks_by_unit[victim]) <= cores_per_unit:
            # A unit whose queued tasks all run concurrently on its own
            # cores cannot finish earlier by giving one up; stealing
            # from it only adds migration and remote-access cost.
            exhausted[victim] = True
            masked[victim] = -np.inf
            continue
        task = tasks_by_unit[victim][-1]  # steal the youngest task
        old_d = est_cache[task.task_id]
        new_d = estimate(task, thief) + steal_overhead
        # Profitable only if the thief finishes it before the victim
        # would have started it — i.e. the gap exceeds the new cost.
        gap = (loads[victim] - loads[thief]) * cores_per_unit
        if new_d >= gap - 1e-9:
            # This victim's tail is too expensive to move right now;
            # try the next-most-loaded victim instead of giving up.
            exhausted[victim] = True
            masked[victim] = -np.inf
            continue
        tasks_by_unit[victim].pop()
        tasks_by_unit[thief].append(task)
        task.assigned_unit = thief
        task.stolen = True
        est_cache[task.task_id] = new_d
        if on_move is not None:
            on_move(task, victim, thief, old_d, new_d)
        loads[victim] -= old_d / cores_per_unit
        loads[thief] += new_d / cores_per_unit
        steals += 1
        # Loads changed: un-exhaust everyone and refresh the selectors.
        if exhausted.any():
            exhausted[:] = False
            masked[:] = loads
            if any_blocked:
                masked[blocked] = -np.inf
        else:
            masked[victim] = loads[victim]
            masked[thief] = loads[thief]
        thief_scores[victim] = loads[victim]
        thief_scores[thief] = loads[thief]
        thief = int(np.argmin(thief_scores))
    return steals
