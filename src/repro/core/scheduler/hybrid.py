"""Designs **Sh**/**O**: the hybrid score-based policy (Section 5.2).

For a task ``t`` every unit ``u`` is scored

    score(t, u) = cost_mem(t, u) + B * cost_load(t, u)        (Eq. 1)

* ``cost_mem`` — mean distance from ``u`` to the nearest allowed
  location (camp or home) of each hint element (Eq. 2).  Without a
  Traveller Cache (design Sh) the only allowed location is the home;
  with it (design O) the camps participate, which both spreads hot-data
  tasks across the camps *and* exploits the skewed mapping to find a
  group where a task's multiple elements sit close together.
* ``cost_load`` — ``W_u / W_mean - 1`` (Eq. 3) from the periodically
  exchanged workload counters (the last exchanged snapshot, with a
  deadband and an idle-system floor against counter-quantization
  noise).
* ``B = alpha * D_inter`` with ``alpha = d/2`` by default — an idle
  unit may be up to half the mesh diameter further from the data and
  still win.
"""

from __future__ import annotations

import numpy as np

from repro.core.scheduler.base import Scheduler
from repro.runtime.task import Task


class HybridScheduler(Scheduler):
    """argmin of Equation 1 over all units.

    Near-ties break toward the unit *closest to the spawner*: when
    several units score within ``tie_tolerance_ns`` of the minimum, the
    task stays near where it was created.  All 128 distributed
    schedulers share the same stale snapshot between exchanges, so a
    strict global argmin would send every concurrently scheduled task
    with a flat score surface to the same momentarily-idle unit (a
    thundering-herd limit cycle); breaking ties toward the spawner
    disperses the herd — spawners are spread across the machine — while
    also preserving locality (a task's spawner usually sits next to its
    data) and keeping the forwarding message short.
    """

    policy_name = "hybrid"

    @property
    def uses_window_rescheduling(self):
        """The scheduling-window re-forwarding is part of the load-
        balancing machinery: with B = 0 the policy degenerates to pure
        distance scheduling (the alpha = 0 point of Figure 17), so the
        re-forwarding is disabled along with the load term."""
        return self.context.hybrid_weight > 0.0


    def __init__(self, context, use_camps: bool = False):
        super().__init__(context)
        self.use_camps = use_camps and context.camp_mapper is not None
        # Stability knobs, taken from the configuration (see
        # SchedulerConfig): the near-tie dispersion window; the
        # |cost_load| deadband below which counter-quantization noise
        # is treated as balance; and the mean-W floor under which the
        # machine is draining as fast as it fills (queue occupancies
        # are then 0-or-1 noise, not a load signal — e.g. K-means —
        # and the policy falls back to pure distance scheduling).
        self.tie_tolerance_ns = context.tie_tolerance_ns
        self.load_deadband = context.load_deadband
        self.load_floor_cycles = context.load_floor_cycles
        # (exchange generation, vector) memo: the visible snapshot only
        # changes at exchange boundaries, and it is the same for every
        # observer, so between exchanges every task sees one load
        # vector.  Only consulted under fast scoring.
        self._load_cache = None
        # (exchange generation, hybrid_weight * load vector) memo.
        self._wload_cache = None

    def _pick(self, scores: np.ndarray, task: Task) -> int:
        alive = self.context.alive_mask
        if alive is not None:
            scores = np.where(alive, scores, np.inf)
            best = scores.min()
            if not np.isfinite(best):
                # All units dead (raises below) or the hint data sits
                # across a mesh partition from every live unit: stay by
                # the spawner.
                return self.context.nearest_alive(task.spawner_unit)
        else:
            # Healthy machine: every score is finite by construction
            # (finite cost matrix, finite loads).
            best = scores.min()
        near = np.nonzero(scores <= best + self.tie_tolerance_ns)[0]
        if len(near) == 1:
            return int(near[0])
        from_spawner = self.context.cost_matrix[task.spawner_unit, near]
        return int(near[int(np.argmin(from_spawner))])

    def load_cost_vector(self, spawner_unit: int) -> np.ndarray:
        """cost_load(u) for every unit (Equation 3).

        All counters come from the last exchanged snapshot — every
        entry at the same staleness, so the comparison is unbiased
        (see WorkloadExchange.visible_workloads).
        """
        ctx = self.context
        fast = ctx.fast_scoring
        if fast:
            cached = self._load_cache
            if cached is not None and cached[0] == ctx.exchange.generation:
                return cached[1]
        w = ctx.exchange.visible_workloads(spawner_unit)
        mean = w.mean()
        if mean <= self.load_floor_cycles:
            load = np.zeros_like(w)
        else:
            load = w / mean - 1.0
            load[np.abs(load) < self.load_deadband] = 0.0
        if fast:
            self._load_cache = (ctx.exchange.generation, load)
        return load

    def score_vector(self, task: Task) -> np.ndarray:
        ctx = self.context
        mem = ctx.mem_cost_vector(task, use_camps=self.use_camps)
        if ctx.fast_scoring:
            # B * cost_load is the same product for every task between
            # exchanges; cache it beside the load vector.
            cached = self._wload_cache
            if cached is None or cached[0] != ctx.exchange.generation:
                wload = ctx.hybrid_weight * self.load_cost_vector(
                    task.spawner_unit
                )
                self._wload_cache = cached = (
                    ctx.exchange.generation, wload
                )
            return mem + cached[1]
        load = self.load_cost_vector(task.spawner_unit)
        return mem + ctx.hybrid_weight * load

    def choose_units_batch(self, tasks) -> "np.ndarray | None":
        """Place a batch of tasks at once (vector engine's bulk path).

        Scores every task against the *same* exchange snapshot — the
        per-task scoring between two exchange boundaries does exactly
        that too, so batching only coarsens when a boundary falls
        inside a batch (the caller chunks to keep that rare).  The
        tie-break reproduces :meth:`_pick`: among scores within the
        tolerance of the minimum, the unit closest to the spawner wins,
        earlier unit id on equal distance.  Returns None when batching
        is unavailable (telemetry decision records, fault state, or the
        scalar engine's reference scoring).
        """
        ctx = self.context
        if (
            not ctx.fast_scoring
            or ctx.alive_mask is not None
            or self.telemetry.enabled
        ):
            return None
        n = len(tasks)
        scores = np.empty((n, ctx.num_units), dtype=np.float64)
        # Under fast scoring the load snapshot (and hence B*cost_load)
        # is the same vector for every task between exchanges, so the
        # batch gathers only the per-task cost_mem rows and adds the
        # load term once.  Row j of `scores` ends up elementwise
        # mem[j] + wload[j] — the exact expression score_vector
        # evaluates per task.
        load = self.load_cost_vector(tasks[0].spawner_unit)
        cached = self._wload_cache
        if cached is None or cached[0] != ctx.exchange.generation:
            self._wload_cache = cached = (
                ctx.exchange.generation, ctx.hybrid_weight * load
            )
        wload = cached[1]
        mem_cost_vector = ctx.mem_cost_vector
        use_camps = self.use_camps
        cm = ctx.camp_mapper
        if use_camps and cm is not None:
            memo_attr, memo_key = "_cmean", (cm.token, cm.epoch)
        else:
            memo_attr, memo_key = "_hmean", ctx.cost_epoch
        for i, task in enumerate(tasks):
            hint = task.hint
            if hint.num_addresses == 0:
                # No data preference: cost_mem is identically zero.
                scores[i] = 0.0
                continue
            row = getattr(hint, memo_attr, None)
            if row is not None and row[0] == memo_key:
                scores[i] = row[1]
            else:
                scores[i] = mem_cost_vector(task, use_camps=use_camps)
        scores += wload
        best = scores.min(axis=1)
        near = scores <= (best + self.tie_tolerance_ns)[:, None]
        spawners = np.fromiter(
            (t.spawner_unit for t in tasks), dtype=np.int64, count=n
        )
        from_spawner = np.where(
            near, ctx.cost_matrix[spawners], np.inf
        )
        return np.argmin(from_spawner, axis=1)

    def choose_unit(self, task: Task) -> int:
        ctx = self.context
        if task.hint.num_addresses == 0:
            # No data preference: pure load balancing.
            load = self.load_cost_vector(task.spawner_unit)
            scores = load * ctx.hybrid_weight
            unit = self._pick(scores, task)
            if self.telemetry.enabled:
                self._record_decision(
                    task, unit, cost_load=float(load[unit]),
                    score=float(scores[unit]),
                )
            return unit
        if not self.telemetry.enabled:
            return self._pick(self.score_vector(task), task)
        # Telemetry path: keep the Equation 1 components apart so the
        # decision record carries cost_mem and cost_load separately.
        mem = ctx.mem_cost_vector(task, use_camps=self.use_camps)
        load = self.load_cost_vector(task.spawner_unit)
        scores = mem + ctx.hybrid_weight * load
        unit = self._pick(scores, task)
        self._record_decision(
            task, unit, cost_mem=float(mem[unit]),
            cost_load=float(load[unit]), score=float(scores[unit]),
        )
        return unit
