"""Design **Sm** (and the mapping half of **C**): lowest-distance mapping.

Considers *all* data elements a task accesses and picks, among the
units that actually host one of them, the unit with the minimum average
distance to all of them (Section 2.3: "maximally co-locate the tasks
with their data").  Restricting the candidates to the data homes is
what makes this a *mapping* policy: the task lands next to some of its
data, rather than drifting to whichever unit happens to minimise mean
distance (which, for scattered access sets, is always the centre of the
mesh and would turn the central stacks into a global hotspot far beyond
what the paper's Figure 2 reports for LDM).

When a Traveller Cache is present (design C) the mapping still scores
against home locations only — C is "basic lowest-distance task mapping"
per Table 2; the cache shortens accesses at run time but does not
inform placement.

Near-ties (within a small distance tolerance) break toward the task's
main element's home: when several data homes offer essentially the same
total distance, the mapping keeps the task where the baseline would
have put it rather than drifting toward whichever candidate happens to
sit nearest the mesh centre — a drift that would otherwise concentrate
most of the machine's tasks on the central stacks.
"""

from __future__ import annotations

import numpy as np

from repro.core.scheduler.base import Scheduler
from repro.runtime.task import Task


class LowestDistanceScheduler(Scheduler):
    """argmin over data-hosting units of the mean home distance."""

    policy_name = "lowest_distance"

    #: candidates within this distance of the best are considered tied.
    tie_tolerance_ns: float = 5.0

    def choose_unit(self, task: Task) -> int:
        ctx = self.context
        if task.hint.num_addresses == 0:
            unit = self._fallback_unit(task)
            if self.telemetry.enabled:
                self._record_decision(task, unit)
            return unit
        lines = ctx.hint_lines(task)
        if ctx.fast_scoring and ctx.alive_mask is None:
            # Same decision arithmetic with fewer numpy dispatches: the
            # candidate set is built in Python (sorted unique ints ==
            # np.unique), the gather uses broadcast indexing (the same
            # array np.ix_ produces), and the min / tie / first-argmin
            # logic runs on the float list (list.index(min(..)) is the
            # first minimum, exactly np.argmin's tie-break).  The whole
            # decision is a pure function of the cost matrix and the
            # hint, so it is memoized on the hint per cost epoch
            # (workloads reusing hint objects then place each hint
            # once per epoch).
            cached = getattr(task.hint, "_ldpick", None)
            if cached is not None and cached[0] == ctx.cost_epoch:
                unit = cached[1]
                if self.telemetry.enabled:
                    self._record_decision(
                        task, unit, cost_mem=cached[2], score=cached[2]
                    )
                return unit
            homes = ctx.hint_homes(task)
            candidates = np.array(
                sorted(set(homes.tolist())), dtype=np.int64
            )
            # add.reduce(..)/L is _mean's own computation without the
            # wrapper (same reduction, same true-divide).
            dists = np.add.reduce(
                ctx.cost_matrix[candidates[:, None], homes], axis=1
            ) / homes.shape[0]
            dl = dists.tolist()
            best_cost = min(dl)
            threshold = best_cost + self.tie_tolerance_ns
            main_home = ctx.memory_map.home_unit(int(task.hint.addresses[0]))
            cl = candidates.tolist()
            unit = cost = None
            for c, dv in zip(cl, dl):
                if c == main_home and dv <= threshold:
                    unit = main_home
                    cost = dv
                    break
            if unit is None:
                idx = dl.index(best_cost)
                unit = cl[idx]
                cost = best_cost
            task.hint._ldpick = (ctx.cost_epoch, unit, cost)
            if self.telemetry.enabled:
                self._record_decision(task, unit, cost_mem=cost, score=cost)
            return unit
        homes = ctx.memory_map.homes_of_lines(lines)
        candidates = np.unique(homes)
        if ctx.alive_mask is not None:
            candidates = candidates[ctx.alive_mask[candidates]]
            if candidates.size == 0:
                # Every data home is dead: fall back to the live unit
                # with the lowest mean distance to the hint set.
                candidates = ctx.alive_units()
        # Mean distance from each candidate to every hint element.
        dists = ctx.cost_matrix[np.ix_(candidates, homes)].mean(axis=1)
        best_cost = dists.min()
        tied = candidates[dists <= best_cost + self.tie_tolerance_ns]
        main_home = ctx.memory_map.home_unit(int(task.hint.addresses[0]))
        if main_home in tied:
            unit = main_home
            cost = float(dists[np.nonzero(candidates == main_home)[0][0]])
        else:
            idx = int(np.argmin(dists))
            unit = int(candidates[idx])
            cost = float(dists[idx])
        if self.telemetry.enabled:
            self._record_decision(task, unit, cost_mem=cost, score=cost)
        return unit
