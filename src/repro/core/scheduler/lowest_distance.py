"""Design **Sm** (and the mapping half of **C**): lowest-distance mapping.

Considers *all* data elements a task accesses and picks, among the
units that actually host one of them, the unit with the minimum average
distance to all of them (Section 2.3: "maximally co-locate the tasks
with their data").  Restricting the candidates to the data homes is
what makes this a *mapping* policy: the task lands next to some of its
data, rather than drifting to whichever unit happens to minimise mean
distance (which, for scattered access sets, is always the centre of the
mesh and would turn the central stacks into a global hotspot far beyond
what the paper's Figure 2 reports for LDM).

When a Traveller Cache is present (design C) the mapping still scores
against home locations only — C is "basic lowest-distance task mapping"
per Table 2; the cache shortens accesses at run time but does not
inform placement.

Near-ties (within a small distance tolerance) break toward the task's
main element's home: when several data homes offer essentially the same
total distance, the mapping keeps the task where the baseline would
have put it rather than drifting toward whichever candidate happens to
sit nearest the mesh centre — a drift that would otherwise concentrate
most of the machine's tasks on the central stacks.
"""

from __future__ import annotations

import numpy as np

from repro.core.scheduler.base import Scheduler
from repro.runtime.task import Task


class LowestDistanceScheduler(Scheduler):
    """argmin over data-hosting units of the mean home distance."""

    policy_name = "lowest_distance"

    #: candidates within this distance of the best are considered tied.
    tie_tolerance_ns: float = 5.0

    def choose_unit(self, task: Task) -> int:
        ctx = self.context
        if task.hint.num_addresses == 0:
            unit = self._fallback_unit(task)
            if self.telemetry.enabled:
                self._record_decision(task, unit)
            return unit
        lines = ctx.hint_lines(task)
        homes = ctx.memory_map.homes_of_lines(lines)
        candidates = np.unique(homes)
        if ctx.alive_mask is not None:
            candidates = candidates[ctx.alive_mask[candidates]]
            if candidates.size == 0:
                # Every data home is dead: fall back to the live unit
                # with the lowest mean distance to the hint set.
                candidates = ctx.alive_units()
        # Mean distance from each candidate to every hint element.
        dists = ctx.cost_matrix[np.ix_(candidates, homes)].mean(axis=1)
        best_cost = dists.min()
        tied = candidates[dists <= best_cost + self.tie_tolerance_ns]
        main_home = ctx.memory_map.home_unit(int(task.hint.addresses[0]))
        if main_home in tied:
            unit = main_home
            cost = float(dists[np.nonzero(candidates == main_home)[0][0]])
        else:
            idx = int(np.argmin(dists))
            unit = int(candidates[idx])
            cost = float(dists[idx])
        if self.telemetry.enabled:
            self._record_decision(task, unit, cost_mem=cost, score=cost)
        return unit
