"""Design **B**: co-locate each task with its main data element.

The widely used baseline (Section 2.3): every task runs in the NDP
unit whose local memory stores the task's *first* hint element — in
Page Rank, the to-be-updated vertex.  Cheap and local, but blind to the
task's other accesses and to load imbalance.
"""

from __future__ import annotations

from repro.core.scheduler.base import Scheduler
from repro.runtime.task import Task


class ColocateScheduler(Scheduler):
    """Run the task at the home of its first hint address."""

    policy_name = "colocate"

    def choose_unit(self, task: Task) -> int:
        if task.hint.num_addresses == 0:
            unit = self._fallback_unit(task)
        else:
            main_addr = int(task.hint.addresses[0])
            # nearest_alive: the baseline has no placement freedom, so a
            # dead home simply redirects to the closest surviving unit.
            unit = self.context.nearest_alive(
                self.context.memory_map.home_unit(main_addr)
            )
        if self.telemetry.enabled:
            self._record_decision(task, unit)
        return unit
