"""Scheduler interface and the shared scoring context.

Every policy answers one question: *on which NDP unit should this task
execute?*  Policies receive a :class:`SchedulerContext` bundling the
system-level information the paper's hardware scheduler has access to:
the distance-cost matrix, the address->home mapping, the camp mapper
(when a Traveller Cache is configured), and the stale workload snapshot
from the periodic exchange.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.arch.memory_map import MemoryMap
from repro.core.cache.camp import CampMapper
from repro.runtime.task import Task
from repro.runtime.workload_exchange import WorkloadExchange


@dataclass
class SchedulerContext:
    """Everything a scheduling policy may look at."""

    memory_map: MemoryMap
    cost_matrix: np.ndarray              # (N, N) distance costs
    exchange: WorkloadExchange
    camp_mapper: Optional[CampMapper] = None
    # Weight B of Equation 1; only the hybrid policy reads it.
    hybrid_weight: float = 0.0
    # Conversion constants for the access-cost workload estimate.
    frequency_ghz: float = 2.0
    dram_latency_ns: float = 34.0
    # Fraction of access latency hidden by prefetching; the workload
    # estimate discounts it so W tracks *core-visible* cycles.
    prefetch_hide_fraction: float = 0.6
    # Hybrid-policy stability knobs, mirrored from SchedulerConfig.
    tie_tolerance_ns: float = 5.0
    load_deadband: float = 0.25
    load_floor_cycles: float = 1000.0
    # Fault state: boolean per-unit liveness, None while every unit is
    # healthy.  Policies must never place a task on a dead unit.
    alive_mask: Optional[np.ndarray] = None
    # Mirrors MemoryConfig.access_engine == "batched": scoring may then
    # memoize each hint's summed nearest-distance row on the hint
    # object (invalidated by the camp mapper's token/epoch pair).  Off
    # under the scalar engine so that engine stays the original
    # reference implementation end to end.
    fast_scoring: bool = False
    # Bumped by the fault controller whenever the shared cost matrix
    # (or the liveness state it reflects) may have changed in place;
    # keys every scoring memo that bakes in cost-matrix values.
    cost_epoch: int = 0

    @property
    def num_units(self) -> int:
        return self.cost_matrix.shape[0]

    def is_alive(self, unit: int) -> bool:
        return self.alive_mask is None or bool(self.alive_mask[unit])

    def alive_units(self) -> np.ndarray:
        """Ids of the units currently able to execute tasks."""
        if self.alive_mask is None:
            return np.arange(self.num_units)
        return np.nonzero(self.alive_mask)[0]

    def nearest_alive(self, unit: int) -> int:
        """``unit`` itself when alive, else the cheapest live stand-in
        by distance cost.  Raises when the whole machine is dead."""
        if self.alive_mask is None or self.alive_mask[unit]:
            return unit
        costs = np.where(
            self.alive_mask, self.cost_matrix[unit], np.inf
        )
        best = int(np.argmin(costs))
        if not np.isfinite(costs[best]):
            raise RuntimeError("no alive NDP unit left to run tasks")
        return best

    def task_workload(self, task: Task, unit: int) -> float:
        """The load value booked into W_u when ``task`` enqueues at
        ``unit`` (Section 3.1).

        Uses the programmer-provided ``hint.workload`` when present;
        otherwise falls back to the paper's estimate — the *total
        memory access cost* of the hint addresses, which is naturally
        distance-dependent at the executing unit — plus the compute
        estimate.  Booking distance-aware costs is what lets the
        load-balance term equalise real execution cycles rather than
        task counts.
        """
        if task.hint.workload is not None:
            return float(task.hint.workload)
        lines = self.hint_lines(task)
        if lines.size == 0:
            return float(task.compute_cycles)
        if self.fast_scoring:
            # Memoized per (hint, unit): the rebalancing passes probe
            # the same task at many candidate units, each probe below
            # re-running the same arithmetic.  The stored value is the
            # full stall term produced by the original expression
            # sequence, so nothing changes bit-wise.
            hint = task.hint
            if self.camp_mapper is not None:
                cm = self.camp_mapper
                key = (cm.token, cm.epoch)
            else:
                key = self.cost_epoch
            cached = getattr(hint, "_wsum", None)
            if cached is None or cached[0] != key:
                hint._wsum = cached = (key, {})
            stall_cycles = cached[1].get(unit)
            if stall_cycles is None:
                if self.camp_mapper is not None:
                    access_ns = float(self._camp_access_row(task)[unit])
                else:
                    homes = self.hint_homes(task)
                    access_ns = float(self.cost_matrix[unit, homes].sum())
                access_ns += self.dram_latency_ns * len(lines)
                stall_cycles = (
                    access_ns * self.frequency_ghz
                    * (1.0 - self.prefetch_hide_fraction)
                )
                cached[1][unit] = stall_cycles
            return float(task.compute_cycles) + stall_cycles
        if self.camp_mapper is not None:
            access_ns = sum(
                float(self.camp_mapper.nearest_cost_vector(
                    int(line), self.cost_matrix)[unit])
                for line in lines
            )
        else:
            homes = self.memory_map.homes_of_lines(lines)
            access_ns = float(self.cost_matrix[unit, homes].sum())
        access_ns += self.dram_latency_ns * len(lines)
        stall_cycles = (
            access_ns * self.frequency_ghz
            * (1.0 - self.prefetch_hide_fraction)
        )
        return float(task.compute_cycles) + stall_cycles

    def hint_lines(self, task: Task) -> np.ndarray:
        """Distinct cachelines named by the task's hint (memoized on
        the hint — the scheduler, rebalancer and executor all need it).
        """
        cached = getattr(task.hint, "_lines", None)
        if cached is not None:
            return cached
        if task.hint.num_addresses == 0:
            lines = np.empty(0, dtype=np.int64)
        else:
            lines = self.memory_map.unique_lines(task.hint.addresses)
        task.hint._lines = lines
        return lines

    def hint_lines_list(self, task: Task) -> list:
        """:meth:`hint_lines` as a plain Python int list (memoized on
        the hint): the access engines iterate lines item by item, where
        list iteration beats ndarray iteration."""
        cached = getattr(task.hint, "_lines_list", None)
        if cached is not None:
            return cached
        out = self.hint_lines(task).tolist()
        task.hint._lines_list = out
        return out

    def hint_homes(self, task: Task) -> np.ndarray:
        """Home units of the task's hint lines (memoized on the hint,
        like :meth:`hint_lines` — the mapping is static for a run)."""
        cached = getattr(task.hint, "_homes", None)
        if cached is not None:
            return cached
        homes = self.memory_map.homes_of_lines(self.hint_lines(task))
        task.hint._homes = homes
        return homes

    def mem_cost_vector(self, task: Task, use_camps: bool) -> np.ndarray:
        """cost_mem(t, u) for every unit u (Equation 2).

        For each hint line the distance is taken to the line's *nearest
        allowed location* from the candidate unit — the home only, or
        the home plus its camp locations when ``use_camps`` — then
        averaged over the lines.
        """
        lines = self.hint_lines(task)
        if lines.size == 0:
            return np.zeros(self.num_units, dtype=np.float64)
        if use_camps and self.camp_mapper is not None:
            if self.fast_scoring:
                cm = self.camp_mapper
                key = (cm.token, cm.epoch)
                cached = getattr(task.hint, "_cmean", None)
                if cached is not None and cached[0] == key:
                    return cached[1]
                row = self._camp_access_row(task) / len(lines)
                task.hint._cmean = (key, row)
                return row
            # Mean of the memoized per-line nearest-distance columns.
            acc = np.zeros(self.num_units, dtype=np.float64)
            for line in lines:
                acc += self.camp_mapper.nearest_cost_vector(
                    int(line), self.cost_matrix
                )
            return acc / len(lines)
        if self.fast_scoring:
            # The window-rescheduling passes re-score the same hint
            # repeatedly between exchanges; store the original
            # expression's result row on the hint.
            hint = task.hint
            key = self.cost_epoch
            cached = getattr(hint, "_hmean", None)
            if cached is not None and cached[0] == key:
                return cached[1]
            homes = self.hint_homes(task)
            # take() gathers the identical (N, L) array `[:, homes]`
            # builds, and add.reduce/L is _mean without the wrapper.
            row = np.add.reduce(
                self.cost_matrix.take(homes, axis=1), axis=1
            ) / homes.shape[0]
            hint._hmean = (key, row)
            return row
        homes = self.memory_map.homes_of_lines(lines)
        return self.cost_matrix[:, homes].mean(axis=1)

    def _camp_access_row(self, task: Task) -> np.ndarray:
        """Summed nearest-distance row of a hint over all units.

        ``row[u]`` is exactly ``sum(nearest_cost_vector(line)[u])`` in
        hint-line order — the quantity both :meth:`task_workload` (one
        element) and :meth:`mem_cost_vector` (the row / len) need, so
        the elementwise accumulation is float-identical to the scalar
        per-unit sums.  Memoized on the hint object, keyed by the camp
        mapper's (token, epoch): the token is process-unique per mapper,
        so a hint reused across designs or systems can never see a
        stale row; the epoch covers fault-driven remappings.  Callers
        must not mutate the returned array.
        """
        cm = self.camp_mapper
        key = (cm.token, cm.epoch)
        cached = getattr(task.hint, "_crow", None)
        if cached is not None and cached[0] == key:
            return cached[1]
        line_list = self.hint_lines(task).tolist()
        cost = self.cost_matrix
        cm.prime_lines(line_list, cost)
        tables = cm._nearest_cache
        # One C-level reduction over the stacked per-line distance rows.
        # np.add.reduce along the outer axis accumulates row by row in
        # order, which is bit-identical to the scalar `acc += row` loop
        # (verified; all rows are non-negative, so the 0.0 start of the
        # scalar loop cannot flip a -0.0 either).
        row = np.add.reduce(
            np.array([tables[ln][2] for ln in line_list]), axis=0
        )
        task.hint._crow = (key, row)
        return row


class Scheduler(abc.ABC):
    """A task-to-unit mapping policy."""

    #: the executor runs the stealing rebalancer after assignment
    uses_work_stealing: bool = False

    #: the executor runs the scheduling-window re-forwarding pass
    #: (Figure 4): queued tasks may be re-targeted before execution,
    #: using the policy's own distance-aware cost estimates.
    uses_window_rescheduling: bool = False

    #: short name stamped on telemetry decision records.
    policy_name: str = "scheduler"

    def __init__(self, context: SchedulerContext):
        self.context = context
        # Replaced with the machine's Telemetry by NdpSystem; the null
        # sink keeps every decision probe a single attribute check.
        from repro.telemetry import NULL_TELEMETRY

        self.telemetry = NULL_TELEMETRY

    @abc.abstractmethod
    def choose_unit(self, task: Task) -> int:
        """Return the unit id that should execute ``task``."""

    def _record_decision(self, task: Task, chosen: int,
                         cost_mem: float = 0.0, cost_load: float = 0.0,
                         score: float = 0.0) -> None:
        """Emit one placement-decision telemetry record.

        Call sites guard on ``self.telemetry.enabled`` so a disabled
        machine pays nothing beyond that check.
        """
        self.telemetry.decision(
            self.policy_name, task.task_id, task.spawner_unit, chosen,
            cost_mem=cost_mem, cost_load=cost_load, score=score,
            weight=self.context.hybrid_weight,
        )

    def _fallback_unit(self, task: Task) -> int:
        """Where a hint-less task runs: where it was spawned, or the
        nearest live unit when the spawner has failed."""
        return self.context.nearest_alive(task.spawner_unit)
