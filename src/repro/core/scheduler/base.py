"""Scheduler interface and the shared scoring context.

Every policy answers one question: *on which NDP unit should this task
execute?*  Policies receive a :class:`SchedulerContext` bundling the
system-level information the paper's hardware scheduler has access to:
the distance-cost matrix, the address->home mapping, the camp mapper
(when a Traveller Cache is configured), and the stale workload snapshot
from the periodic exchange.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.arch.memory_map import MemoryMap
from repro.core.cache.camp import CampMapper
from repro.runtime.task import Task
from repro.runtime.workload_exchange import WorkloadExchange


@dataclass
class SchedulerContext:
    """Everything a scheduling policy may look at."""

    memory_map: MemoryMap
    cost_matrix: np.ndarray              # (N, N) distance costs
    exchange: WorkloadExchange
    camp_mapper: Optional[CampMapper] = None
    # Weight B of Equation 1; only the hybrid policy reads it.
    hybrid_weight: float = 0.0
    # Conversion constants for the access-cost workload estimate.
    frequency_ghz: float = 2.0
    dram_latency_ns: float = 34.0
    # Fraction of access latency hidden by prefetching; the workload
    # estimate discounts it so W tracks *core-visible* cycles.
    prefetch_hide_fraction: float = 0.6
    # Hybrid-policy stability knobs, mirrored from SchedulerConfig.
    tie_tolerance_ns: float = 5.0
    load_deadband: float = 0.25
    load_floor_cycles: float = 1000.0
    # Fault state: boolean per-unit liveness, None while every unit is
    # healthy.  Policies must never place a task on a dead unit.
    alive_mask: Optional[np.ndarray] = None

    @property
    def num_units(self) -> int:
        return self.cost_matrix.shape[0]

    def is_alive(self, unit: int) -> bool:
        return self.alive_mask is None or bool(self.alive_mask[unit])

    def alive_units(self) -> np.ndarray:
        """Ids of the units currently able to execute tasks."""
        if self.alive_mask is None:
            return np.arange(self.num_units)
        return np.nonzero(self.alive_mask)[0]

    def nearest_alive(self, unit: int) -> int:
        """``unit`` itself when alive, else the cheapest live stand-in
        by distance cost.  Raises when the whole machine is dead."""
        if self.alive_mask is None or self.alive_mask[unit]:
            return unit
        costs = np.where(
            self.alive_mask, self.cost_matrix[unit], np.inf
        )
        best = int(np.argmin(costs))
        if not np.isfinite(costs[best]):
            raise RuntimeError("no alive NDP unit left to run tasks")
        return best

    def task_workload(self, task: Task, unit: int) -> float:
        """The load value booked into W_u when ``task`` enqueues at
        ``unit`` (Section 3.1).

        Uses the programmer-provided ``hint.workload`` when present;
        otherwise falls back to the paper's estimate — the *total
        memory access cost* of the hint addresses, which is naturally
        distance-dependent at the executing unit — plus the compute
        estimate.  Booking distance-aware costs is what lets the
        load-balance term equalise real execution cycles rather than
        task counts.
        """
        if task.hint.workload is not None:
            return float(task.hint.workload)
        lines = self.hint_lines(task)
        if lines.size == 0:
            return float(task.compute_cycles)
        if self.camp_mapper is not None:
            access_ns = sum(
                float(self.camp_mapper.nearest_cost_vector(
                    int(line), self.cost_matrix)[unit])
                for line in lines
            )
        else:
            homes = self.memory_map.homes_of_lines(lines)
            access_ns = float(self.cost_matrix[unit, homes].sum())
        access_ns += self.dram_latency_ns * len(lines)
        stall_cycles = (
            access_ns * self.frequency_ghz
            * (1.0 - self.prefetch_hide_fraction)
        )
        return float(task.compute_cycles) + stall_cycles

    def hint_lines(self, task: Task) -> np.ndarray:
        """Distinct cachelines named by the task's hint (memoized on
        the hint — the scheduler, rebalancer and executor all need it).
        """
        cached = getattr(task.hint, "_lines", None)
        if cached is not None:
            return cached
        if task.hint.num_addresses == 0:
            lines = np.empty(0, dtype=np.int64)
        else:
            lines = self.memory_map.unique_lines(task.hint.addresses)
        task.hint._lines = lines
        return lines

    def mem_cost_vector(self, task: Task, use_camps: bool) -> np.ndarray:
        """cost_mem(t, u) for every unit u (Equation 2).

        For each hint line the distance is taken to the line's *nearest
        allowed location* from the candidate unit — the home only, or
        the home plus its camp locations when ``use_camps`` — then
        averaged over the lines.
        """
        lines = self.hint_lines(task)
        if lines.size == 0:
            return np.zeros(self.num_units, dtype=np.float64)
        if use_camps and self.camp_mapper is not None:
            # Mean of the memoized per-line nearest-distance columns.
            acc = np.zeros(self.num_units, dtype=np.float64)
            for line in lines:
                acc += self.camp_mapper.nearest_cost_vector(
                    int(line), self.cost_matrix
                )
            return acc / len(lines)
        homes = self.memory_map.homes_of_lines(lines)
        return self.cost_matrix[:, homes].mean(axis=1)


class Scheduler(abc.ABC):
    """A task-to-unit mapping policy."""

    #: the executor runs the stealing rebalancer after assignment
    uses_work_stealing: bool = False

    #: the executor runs the scheduling-window re-forwarding pass
    #: (Figure 4): queued tasks may be re-targeted before execution,
    #: using the policy's own distance-aware cost estimates.
    uses_window_rescheduling: bool = False

    #: short name stamped on telemetry decision records.
    policy_name: str = "scheduler"

    def __init__(self, context: SchedulerContext):
        self.context = context
        # Replaced with the machine's Telemetry by NdpSystem; the null
        # sink keeps every decision probe a single attribute check.
        from repro.telemetry import NULL_TELEMETRY

        self.telemetry = NULL_TELEMETRY

    @abc.abstractmethod
    def choose_unit(self, task: Task) -> int:
        """Return the unit id that should execute ``task``."""

    def _record_decision(self, task: Task, chosen: int,
                         cost_mem: float = 0.0, cost_load: float = 0.0,
                         score: float = 0.0) -> None:
        """Emit one placement-decision telemetry record.

        Call sites guard on ``self.telemetry.enabled`` so a disabled
        machine pays nothing beyond that check.
        """
        self.telemetry.decision(
            self.policy_name, task.task_id, task.spawner_unit, chosen,
            cost_mem=cost_mem, cost_load=cost_load, score=score,
            weight=self.context.hybrid_weight,
        )

    def _fallback_unit(self, task: Task) -> int:
        """Where a hint-less task runs: where it was spawned, or the
        nearest live unit when the spawner has failed."""
        return self.context.nearest_alive(task.spawner_unit)
