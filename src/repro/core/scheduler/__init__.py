"""Task scheduling policies (Table 2 / Section 5)."""

from repro.core.scheduler.base import Scheduler, SchedulerContext
from repro.core.scheduler.colocate import ColocateScheduler
from repro.core.scheduler.lowest_distance import LowestDistanceScheduler
from repro.core.scheduler.work_stealing import WorkStealingScheduler, rebalance_by_stealing
from repro.core.scheduler.hybrid import HybridScheduler

__all__ = [
    "Scheduler",
    "SchedulerContext",
    "ColocateScheduler",
    "LowestDistanceScheduler",
    "WorkStealingScheduler",
    "HybridScheduler",
    "rebalance_by_stealing",
]
