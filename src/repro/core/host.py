"""Analytic host-CPU model — design **H** of Table 2.

The paper compares its NDP designs against a conventional server: 16
out-of-order cores at 2.6 GHz, a 20 MB LLC, and 4 channels of
DDR4-2400.  H appears only as a reference point (the text reports B as
3.70x faster than H and ABNDP as 6.29x), so a roofline-style analytic
model is sufficient: the host's runtime is the larger of its compute
time and its memory time for the same task graph, derated by a
parallel-efficiency factor for the irregular workloads.

The model consumes the instruction and access counts measured by a
baseline NDP run, so a single simulation yields both numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import RunResult


@dataclass(frozen=True)
class HostConfig:
    """Server-class host parameters (Section 6)."""

    cores: int = 16
    frequency_ghz: float = 2.6
    ipc: float = 2.0
    llc_bytes: int = 20 * 1024 * 1024
    ddr_channels: int = 4
    ddr_gbps_per_channel: float = 19.2  # DDR4-2400
    # Fraction of primary-data line accesses that miss the LLC for the
    # irregular, low-locality NDP workloads.
    llc_miss_rate: float = 0.55
    # Derating for synchronisation/imbalance of the irregular
    # task-model workloads on 16 cores.
    parallel_efficiency: float = 0.40
    line_bytes: int = 64
    # The host runs the task runtime in software: queue management,
    # scheduling and dispatch cost instructions per task that the NDP
    # units implement in hardware.
    task_overhead_instructions: float = 300.0
    # Auxiliary traffic (runtime structures, stacks, double buffers)
    # on top of the primary-data lines the hints enumerate.
    access_amplification: float = 2.0

    @property
    def memory_bw_gbps(self) -> float:
        return self.ddr_channels * self.ddr_gbps_per_channel


class HostModel:
    """Roofline estimate of the host's makespan for a measured run."""

    def __init__(self, config: HostConfig | None = None):
        self.config = config or HostConfig()

    def makespan_ns(self, instructions: float, line_accesses: float,
                    tasks: float = 0.0) -> float:
        """Host runtime for a task graph of the given size."""
        cfg = self.config
        instr = instructions + tasks * cfg.task_overhead_instructions
        compute_ns = instr / (cfg.cores * cfg.frequency_ghz * cfg.ipc)
        dram_bytes = (line_accesses * cfg.access_amplification
                      * cfg.llc_miss_rate * cfg.line_bytes)
        memory_ns = dram_bytes / cfg.memory_bw_gbps
        return max(compute_ns, memory_ns) / cfg.parallel_efficiency

    def makespan_cycles(self, result: RunResult,
                        ndp_frequency_ghz: float = 2.0) -> float:
        """Host makespan expressed in NDP-core cycles (for Figure 6).

        ``result`` should be the baseline **B** run: it carries the
        workload's instruction count and the number of primary-data
        line accesses (every L1 probe corresponds to one line touch).
        """
        ns = self.makespan_ns(
            instructions=result.instructions,
            line_accesses=float(result.sram.l1_accesses),
            tasks=float(result.tasks_executed),
        )
        return ns * ndp_frequency_ghz

    def speedup_of(self, result: RunResult,
                   ndp_frequency_ghz: float = 2.0) -> float:
        """How much faster ``result``'s NDP run is than the host."""
        host_cycles = self.makespan_cycles(result, ndp_frequency_ghz)
        return host_cycles / result.makespan_cycles
