"""Whole-phase vectorized access resolution (``access_engine="vector"``).

The bulk-synchronous execution model fixes a phase's task set at the
barrier and bulk-invalidates every cache (L1s, prefetch buffers, camps)
when the phase ends, which makes the phase the natural vectorization
boundary: every access of a phase is known up front and no cache state
survives into the next one.  :class:`VectorPhaseEngine` exploits that —
the executor hands it the whole phase's hint accesses as columnar
arrays (requester unit, cacheline, owning task) and receives per-task
stall latencies back, with every counter the analytic models consume
(NoC traffic, DRAM/SRAM events, camp hit/miss statistics) flushed in
bulk through the same ``add_bulk`` interfaces the batched engine uses.

Statistical tier
----------------
Unlike the batched engine, which replays the scalar reference's
per-line order exactly and is bit-identical to it, the vector kernel
replaces two inherently sequential mechanisms with closed-form
equivalents.  The tier is therefore gated by *statistical* equivalence
bands (see ``docs/engines.md`` and ``tests/test_vector_engine.py``)
rather than bit-identity:

* **L1/prefetch front end** — the per-line LRU/FIFO walk becomes a
  reuse-window test: an access hits iff the same unit touched the same
  line within the last ``W`` accesses of its phase stream, where ``W``
  is the L1's capacity in lines (a stack-distance approximation of
  set-associative LRU; prefetch-buffer hits fold into the L1 count).
* **Camp probe/install** — per (line, camp) group the install point is
  drawn directly from the geometric distribution the scalar engine's
  per-miss bypass draws induce: with install probability
  ``p = 1 - bypass_probability`` the k-th miss installs with
  probability ``p * (1 - p)**(k - 1)``, and every later access of the
  group hits.  The RNG stream and draw order differ from scalar —
  exactly what the statistical tier permits.
* **Camp evictions** use a set-overflow survival model: installs are
  counted per (camp, set) — units allocate at set-span strides, so the
  same vertex index aliases into the same set from every unit — and
  when a set receives ``EI`` more installs than it has ways, each
  would-be hit in that set survives random replacement with probability
  ``(1 - 1/assoc) ** (EI / 2)`` (on average an install sees half the
  phase's overflow).  Non-survivors are charged the full camp-miss
  path and the overflow is booked into the eviction counter.
* **DRAM service queueing** (``MemoryConfig.service_ns > 0``) uses a
  per-channel ramp: the phase's events at one channel are served
  back-to-back from the channel's free time, instead of interleaving
  with per-access arrival offsets.  The experiment configuration runs
  with ``service_ns = 0`` where both models are exactly zero.

The engine never mutates the real cache structures — the barrier's
``bulk_invalidate`` on the empty containers only bumps the round
counters, same as under the batched engine.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from repro.config import CacheStyle
from repro.core.cache.policies import RandomReplacement

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.memory_system import MemorySystem

#: control-message payload (an address + command), in bits.  Mirrors
#: ``memory_system._REQUEST_BITS`` (imported there; duplicated here to
#: keep the import graph acyclic).
_REQUEST_BITS = 128

#: Statistical-equivalence bands of the vector tier, as fractional
#: deviation from the batched engine on the same seeded point (the
#: contract documented in docs/engines.md and enforced by
#: tests/test_vector_engine.py and the CI bench smoke):
#: per-point makespan within +/-12 %, the geomean across the six
#: designs within +/-5 %, and energy within +/-3 % per point.
MAKESPAN_BAND = 0.12
MAKESPAN_GEOMEAN_BAND = 0.05
ENERGY_BAND = 0.03

#: chunk width for the unique-line camp tables: bounds the (N, B, G)
#: cost tensor built per chunk to a few MB even on large meshes.
_TABLE_CHUNK = 2048


class _TrafficAcc:
    """Batch accumulator mirroring ``Interconnect.record_transfer``.

    One :meth:`book` call accounts a homogeneous batch of transfers
    (same payload size) given their class row (0 = local, 1 =
    intra-stack, 2 = inter-stack) and effective hop counts, with the
    exact per-transfer increments of the scalar path.
    """

    __slots__ = ("messages", "local", "intra", "intra_bits",
                 "inter_hops", "inter_bits")

    def __init__(self) -> None:
        self.messages = 0
        self.local = 0
        self.intra = 0
        self.intra_bits = 0
        self.inter_hops = 0
        self.inter_bits = 0

    def book(self, classes: np.ndarray, hops: np.ndarray,
             bits: int) -> None:
        n = int(classes.size)
        if n == 0:
            return
        m2 = classes == 2
        n2 = int(np.count_nonzero(m2))
        n1 = int(np.count_nonzero(classes == 1))
        hsum = int(hops[m2].sum()) if n2 else 0
        self.messages += n
        self.local += n - n2 - n1
        # inter-stack: 2 intra legs of `bits` each + `hops` mesh links;
        # intra-stack: 1 leg of `bits`.
        self.intra += 2 * n2 + n1
        self.intra_bits += bits * (2 * n2 + n1)
        self.inter_hops += hsum
        self.inter_bits += bits * hsum

    def flush(self, meter) -> None:
        if self.messages == 0:
            return
        meter.add_bulk(
            messages=self.messages,
            local_accesses=self.local,
            intra_transfers=self.intra,
            intra_bits=self.intra_bits,
            inter_hops=self.inter_hops,
            inter_bits=self.inter_bits,
        )


def _segment_ranks(sorted_keys: np.ndarray) -> Tuple[np.ndarray,
                                                     np.ndarray,
                                                     np.ndarray]:
    """Per-element rank within its run of equal (sorted) keys.

    Returns ``(ranks, starts, sizes)`` where ``starts``/``sizes``
    describe each run.
    """
    n = sorted_keys.size
    new = np.empty(n, dtype=bool)
    new[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=new[1:])
    starts = np.nonzero(new)[0]
    sizes = np.diff(np.append(starts, n))
    ranks = np.arange(n, dtype=np.int64) - np.repeat(starts, sizes)
    return ranks, starts, sizes


class VectorPhaseEngine:
    """Resolves one phase's accesses with array operations."""

    def __init__(self, memsys: "MemorySystem"):
        self.ms = memsys
        cfg = memsys.config
        self.num_units = cfg.num_units
        unit = memsys.units[0]
        _sets, l1_nsets, l1_assoc, _stats = unit.l1.batch_state()
        #: reuse window of the L1 front-end model, in lines.
        self.window = l1_nsets * l1_assoc
        _fifo, pf_cap, _pstats = unit.prefetch.batch_state()
        self.pf_cap = pf_cap
        self.traveller = memsys.style is CacheStyle.TRAVELLER
        self.line_bits = cfg.memory.line_bits
        # unique-line table memo (pr-style workloads reuse the same
        # line set every phase): valid for one (camp epoch, link-fault
        # epoch) pair and one unique-line array.
        self._tbl_key: Optional[tuple] = None
        self._tbl_lines: Optional[np.ndarray] = None
        self._tbl: Optional[tuple] = None

    # ------------------------------------------------------------------
    # gating
    # ------------------------------------------------------------------
    @staticmethod
    def supported(memsys: "MemorySystem") -> bool:
        """Construction-time check: can this machine use the engine?

        Covers the cacheless and Traveller styles (every Table 2
        design); the Figure 13 SRAM/DRAM-tag cache styles and non-random
        replacement keep the batched kernel.
        """
        if memsys.style is CacheStyle.NONE:
            return True
        if memsys.style is not CacheStyle.TRAVELLER:
            return False
        cache = memsys.caches[0]
        return (not cache._dense
                and isinstance(cache._victims, RandomReplacement))

    def available(self) -> bool:
        """Per-phase check: no fault or instrumentation state attached
        that the columnar kernel does not model (same conditions that
        drop ``access_many`` to its scalar fallback)."""
        ms = self.ms
        noc = ms.interconnect
        return (
            ms._resilience is None
            and noc.link_meter is None
            and not noc.has_link_faults
            and ms.dram._latency_scale is None
            and (ms.camp_mapper is None or ms.camp_mapper._alive is None)
        )

    # ------------------------------------------------------------------
    # unique-line tables
    # ------------------------------------------------------------------
    def _tables(self, ulines: np.ndarray):
        """Per-unique-line columns: home unit, and for Traveller the
        (num_units, L) nearest-camp and is-home tables.

        The camp hashing replicates ``CampMapper.prime_lines`` (same
        multiplicative hashes, same first-minimum argmin tie-break) but
        keeps dense matrices instead of per-line dict entries.
        """
        ms = self.ms
        cm = ms.camp_mapper
        key = (
            cm.token if cm is not None else -1,
            cm.epoch if cm is not None else -1,
            ms.interconnect.fault_epoch,
        )
        if (
            self._tbl is not None
            and self._tbl_key == key
            and self._tbl_lines.size == ulines.size
            and np.array_equal(self._tbl_lines, ulines)
        ):
            return self._tbl
        # Cross-run warm store (docs/architecture.md §15): inside a
        # warm scope, healthy-epoch Traveller tables are shared across
        # runs keyed by (machine sections, unique-lines digest) — the
        # tables are pure functions of both, so a hit is bit-identical
        # to recomputing.  Fault-touched epochs never consult/donate.
        memos = wkey = None
        if (self.traveller and cm.epoch == 0
                and ms.interconnect.fault_epoch == 0):
            from repro.core.system import _sweep_memos

            memos = _sweep_memos()
            if memos is not None:
                import hashlib

                digest = hashlib.blake2b(
                    np.ascontiguousarray(ulines).tobytes(),
                    digest_size=16,
                ).hexdigest()
                wkey = (memos.machine_key(ms.config), digest)
                warm = memos.vector_tables_get(wkey)
                if warm is not None:
                    self._tbl_key = key
                    self._tbl_lines = ulines.copy()
                    self._tbl = warm
                    return warm
        homes = ms.memory_map.homes_of_lines(ulines)
        if not self.traveller:
            tbl = (homes, None, None)
        else:
            n_units = self.num_units
            n_lines = ulines.size
            cost = ms.interconnect.cost_matrix
            group_of = cm.topology.group_of_unit
            upg = np.uint64(cm.units_per_group)
            groups = cm.num_groups
            mults = [np.uint64(m) for m in cm._multipliers]
            nearest = np.empty((n_units, n_lines), dtype=np.int64)
            for s in range(0, n_lines, _TABLE_CHUNK):
                chunk = ulines[s:s + _TABLE_CHUNK]
                b = chunk.size
                u64 = chunk.astype(np.uint64)
                locs = np.empty((b, groups), dtype=np.int64)
                for g in range(groups):
                    h = (u64 * mults[g]) >> np.uint64(48)
                    locs[:, g] = (
                        g * int(upg) + (h % upg).astype(np.int64)
                    )
                rows = np.arange(b)
                chunk_homes = homes[s:s + b]
                locs[rows, group_of[chunk_homes]] = chunk_homes
                costs = cost[:, locs]                  # (N, b, G)
                idx = np.argmin(costs, axis=2)         # (N, b)
                nearest[:, s:s + b] = locs[rows[None, :], idx]
            tbl = (homes, nearest, nearest == homes[None, :])
        self._tbl_key = key
        self._tbl_lines = ulines.copy()
        self._tbl = tbl
        if memos is not None and wkey is not None:
            memos.vector_tables_put(wkey, tbl)
        return tbl

    # ------------------------------------------------------------------
    # phase resolution
    # ------------------------------------------------------------------
    def resolve_phase(
        self,
        requesters: np.ndarray,
        lines: np.ndarray,
        task_ids: np.ndarray,
        num_tasks: int,
        now_ns: float,
    ) -> np.ndarray:
        """Resolve one phase's hint reads; return per-task stall ns.

        The inputs are parallel columns, one row per access, in the
        phase's canonical issue order (units interleaved round-robin,
        each task's lines consecutive).  All traffic/DRAM/SRAM/cache
        counters for the phase's reads are booked before returning.
        """
        ms = self.ms
        n_acc = lines.size
        if n_acc == 0:
            return np.zeros(num_tasks, dtype=np.float64)
        hit_ns = ms.sram.l1_hit_ns
        lat = np.full(n_acc, hit_ns, dtype=np.float64)

        # ---- L1 reuse-window front end -------------------------------
        # Per-unit stream position of every access (original order is
        # time order, so a stable sort by unit keeps each unit's stream
        # in issue order).
        order_u = np.argsort(requesters, kind="stable")
        _ranks, _starts, _sizes = _segment_ranks(requesters[order_u])
        punit = np.empty(n_acc, dtype=np.int64)
        punit[order_u] = _ranks
        # Group equal (unit, line) pairs, ordered by stream position:
        # an access hits iff its predecessor in the group is within the
        # reuse window.
        order = np.lexsort((punit, lines, requesters))
        r_s = requesters[order]
        l_s = lines[order]
        p_s = punit[order]
        hit_sorted = np.zeros(n_acc, dtype=bool)
        if n_acc > 1:
            hit_sorted[1:] = (
                (r_s[1:] == r_s[:-1])
                & (l_s[1:] == l_s[:-1])
                & (p_s[1:] - p_s[:-1] <= self.window)
            )
        l1_hit = np.empty(n_acc, dtype=bool)
        l1_hit[order] = hit_sorted

        n_units = self.num_units
        acc_u = np.bincount(requesters, minlength=n_units)
        hits_u = np.bincount(requesters[l1_hit], minlength=n_units)
        miss_u = acc_u - hits_u
        pf_cap = self.pf_cap
        for u, unit in enumerate(ms.units):
            nh = int(hits_u[u])
            nm = int(miss_u[u])
            if nh:
                unit.l1.stats.hits += nh
            if nm:
                unit.l1.stats.misses += nm
                pstats = unit.prefetch.stats
                pstats.issued += nm
                if nm > pf_cap:
                    pstats.evictions += nm - pf_cap

        miss_idx = np.nonzero(~l1_hit)[0]
        n_miss = miss_idx.size
        if n_miss == 0:
            ms.sram_stats.add_bulk(l1_accesses=int(n_acc))
            return np.bincount(task_ids, weights=lat,
                               minlength=num_tasks)

        # ---- camp / home resolution of the miss set ------------------
        req_m = requesters[miss_idx]
        lines_m = lines[miss_idx]
        ulines, inv = np.unique(lines_m, return_inverse=True)
        homes_tbl, nearest_tbl, ishome_tbl = self._tables(ulines)
        homes_m = homes_tbl[inv]
        if self.traveller:
            near_m = nearest_tbl[req_m, inv]
            ishome_m = ishome_tbl[req_m, inv]
        else:
            near_m = homes_m
            ishome_m = np.ones(n_miss, dtype=bool)

        ow, cls, hops = ms.interconnect.fast_arrays()
        access_lat = ms.dram.access_latency_ns
        tag_ns = ms.sram.tag_lookup_ns
        line_bits = self.line_bits
        traffic = _TrafficAcc()
        lat_m = np.empty(n_miss, dtype=np.float64)

        # Home-direct subset: the nearest allowed location is the home
        # itself (always, for the cacheless style) — one round trip and
        # one DRAM read, no probe.
        hd_idx = np.nonzero(ishome_m)[0]
        req_h = req_m[hd_idx]
        home_h = homes_m[hd_idx]
        lat_m[hd_idx] = 2.0 * ow[req_h, home_h] + access_lat
        c_h = cls[req_h, home_h]
        h_h = hops[req_h, home_h]
        traffic.book(c_h, h_h, _REQUEST_BITS)   # request leg
        traffic.book(c_h, h_h, line_bits)       # response leg
        reads = int(hd_idx.size)
        tag_accesses = 0
        fills = 0
        cache_reads = 0
        serve_units = [home_h]
        serve_pos = [hd_idx]

        if self.traveller:
            hd_per_camp = np.bincount(near_m[hd_idx], minlength=n_units)

            # Camp subset: probe the nearest camp, geometric install.
            cp_idx = np.nonzero(~ishome_m)[0]
            n_camp = cp_idx.size
            if n_camp:
                req_c = req_m[cp_idx]
                near_c = near_m[cp_idx]
                home_c = homes_m[cp_idx]
                tag_accesses = n_camp
                gid = inv[cp_idx] * np.int64(n_units) + near_c
                gorder = np.argsort(gid, kind="stable")
                g_s = gid[gorder]
                ranks_s, gstarts, gsizes = _segment_ranks(g_s)
                n_groups = gstarts.size
                cache0 = ms.caches[0]
                bp = cache0._insertion.bypass_probability
                if bp <= 0.0:
                    draws = np.ones(n_groups, dtype=np.int64)
                elif bp >= 1.0:
                    draws = np.full(n_groups, np.iinfo(np.int64).max,
                                    dtype=np.int64)
                else:
                    draws = cache0._rng.geometric(
                        1.0 - bp, size=n_groups
                    ).astype(np.int64)
                draws_s = np.repeat(draws, gsizes)
                miss_sorted = ranks_s < draws_s
                inst_sorted = ranks_s == draws_s - 1

                # Set-overflow eviction correction: installs per
                # (camp, set) key; overflowing sets convert a share of
                # later hits back into misses (see module docstring).
                camps_g = g_s[gstarts] % np.int64(n_units)
                installed_g = (draws <= gsizes).astype(np.int64)
                num_sets = cache0.num_sets
                assoc = cache0.associativity
                g_lines = ulines[g_s[gstarts] // np.int64(n_units)]
                key_g = camps_g * np.int64(num_sets) + g_lines % num_sets
                ukeys, key_inv = np.unique(key_g, return_inverse=True)
                installs_k = np.bincount(
                    key_inv, weights=installed_g, minlength=ukeys.size
                ).astype(np.int64)
                ei_k = np.maximum(0, installs_k - assoc)
                evic_cu = np.bincount(
                    ukeys // np.int64(num_sets), weights=ei_k,
                    minlength=n_units,
                )
                ei_acc = np.repeat(ei_k[key_inv], gsizes)
                risky = np.nonzero(~miss_sorted & (ei_acc > 0))[0]
                if risky.size:
                    survive = (1.0 - 1.0 / assoc) ** (
                        0.5 * ei_acc[risky]
                    )
                    evicted = cache0._rng.random(risky.size) >= survive
                    miss_sorted[risky[evicted]] = True

                camp_miss = np.empty(n_camp, dtype=bool)
                camp_miss[gorder] = miss_sorted
                inst_mask = np.empty(n_camp, dtype=bool)
                inst_mask[gorder] = inst_sorted

                # Per-camp statistics (hits/misses/insertions/bypasses).
                misses_g = np.add.reduceat(
                    miss_sorted.astype(np.int64), gstarts
                )
                hits_g = gsizes - misses_g
                bypass_g = np.where(installed_g == 1, draws - 1, gsizes)
                hits_cu = np.bincount(camps_g, weights=hits_g,
                                      minlength=n_units)
                miss_cu = np.bincount(camps_g, weights=misses_g,
                                      minlength=n_units)
                inst_cu = np.bincount(camps_g, weights=installed_g,
                                      minlength=n_units)
                byp_cu = np.bincount(camps_g, weights=bypass_g,
                                     minlength=n_units)
                for u, cache in enumerate(ms.caches):
                    cstats = cache.stats
                    cstats.hits += int(hits_cu[u])
                    cstats.misses += int(miss_cu[u])
                    cstats.insertions += int(inst_cu[u])
                    cstats.bypasses += int(byp_cu[u])
                    cstats.evictions += int(evic_cu[u])
                    cstats.home_direct += int(hd_per_camp[u])

                # Latency + traffic per camp access.
                ow_rn = ow[req_c, near_c]
                lat_hit = 2.0 * ow_rn + tag_ns + access_lat
                lat_miss = (
                    ow_rn + tag_ns + ow[near_c, home_c]
                    + access_lat + ow[req_c, home_c]
                )
                lat_m[cp_idx] = np.where(camp_miss, lat_miss, lat_hit)
                c_rn = cls[req_c, near_c]
                h_rn = hops[req_c, near_c]
                traffic.book(c_rn, h_rn, _REQUEST_BITS)  # probe request
                hit_c = ~camp_miss
                traffic.book(c_rn[hit_c], h_rn[hit_c],
                             line_bits)                  # camp response
                c_nh = cls[near_c, home_c]
                h_nh = hops[near_c, home_c]
                traffic.book(c_nh[camp_miss], h_nh[camp_miss],
                             _REQUEST_BITS)              # camp -> home
                traffic.book(cls[req_c, home_c][camp_miss],
                             hops[req_c, home_c][camp_miss],
                             line_bits)                  # home -> req
                traffic.book(c_nh[inst_mask], h_nh[inst_mask],
                             line_bits)                  # fill write
                reads += int(np.count_nonzero(camp_miss))
                cache_reads = int(np.count_nonzero(hit_c))
                fills = int(np.count_nonzero(inst_mask))
                serve_units.append(home_c[camp_miss])
                serve_pos.append(cp_idx[camp_miss])
                serve_units.append(near_c[hit_c])
                serve_pos.append(cp_idx[hit_c])
            else:
                for u, cache in enumerate(ms.caches):
                    cache.stats.home_direct += int(hd_per_camp[u])

        # ---- DRAM service queueing (non-default service_ns > 0) ------
        service = ms._service_ns
        if service > 0.0:
            ev_units = np.concatenate(serve_units)
            ev_pos = np.concatenate(serve_pos)
            if ev_units.size:
                so = np.argsort(ev_units, kind="stable")
                su = ev_units[so]
                ranks, starts, sizes = _segment_ranks(su)
                free = ms._dram_free_ns
                chans = su[starts]
                base_per_chan = np.fromiter(
                    (max(0.0, free[int(u)] - now_ns) for u in chans),
                    dtype=np.float64, count=chans.size,
                )
                delays = (
                    np.repeat(base_per_chan, sizes) + ranks * service
                )
                np.add.at(lat_m, ev_pos[so], delays)
                ms.total_queue_delay_ns += float(delays.sum())
                for u, n_ev in zip(chans, sizes):
                    u = int(u)
                    free[u] = max(free[u], now_ns) + float(n_ev) * service

        ms.sram_stats.add_bulk(
            l1_accesses=int(n_acc),
            prefetch_accesses=int(n_miss),
            tag_accesses=int(tag_accesses),
        )
        ms.dram_stats.add_bulk(
            reads=reads, cache_fills=fills, cache_reads=cache_reads,
        )
        traffic.flush(ms.traffic)

        lat[miss_idx] = lat_m
        return np.bincount(task_ids, weights=lat, minlength=num_tasks)

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def book_writes(self, requesters: np.ndarray,
                    lines: np.ndarray) -> None:
        """Book the phase's buffered output writes (one line per task).

        Writes bypass the caches and retire through the write buffer
        into idle channel slots — zero stall, but their traffic and
        DRAM energy are charged, matching ``MemorySystem.write``.
        """
        if requesters.size == 0:
            return
        ms = self.ms
        homes = ms.memory_map.homes_of_lines(lines)
        _ow, cls, hops = ms.interconnect.fast_arrays()
        traffic = _TrafficAcc()
        traffic.book(cls[requesters, homes], hops[requesters, homes],
                     self.line_bits)
        traffic.flush(ms.traffic)
        ms.dram_stats.add_bulk(writes=int(requesters.size))
