"""``repro report``: workload x design bottleneck classification.

Builds an :class:`InsightReport` — one :class:`~repro.insight.
attribution.BottleneckProfile` per run plus the aggregated workload x
design matrix — from any of the three artifact shapes the repo already
produces:

* a **campaign report** (``report.json`` written by
  :class:`~repro.campaign.runner.CampaignReport`): the richest input —
  every point carries its spec (exact config resolution), its run key
  (cache cross-link for the per-unit cycle vector and the telemetry
  sidecar) and its metric row;
* a **sweep export** (the JSON array ``repro sweep --out`` /
  ``analysis.export.to_json`` writes): metric rows only;
* a **history-ledger slice** (``history.jsonl``): headline metrics per
  record, refined through the cache when the record's key still
  resolves.

The report is deterministic by construction: no wall-clock, no
environment — same input artifacts, byte-identical ``insight.json``.
Classification is read-only over those artifacts (nothing simulates,
nothing touches run keys).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

from repro.analysis.export import result_row
from repro.config import SystemConfig, experiment_config
from repro.insight.attribution import (
    BOTTLENECK_CLASSES,
    BottleneckProfile,
    attribute_point,
)

REPORT_SCHEMA = 1

#: markdown / heatmap cell order for designs, the paper's convention.
_DESIGN_ORDER = ("C", "B", "Sm", "Sl", "Sh", "O")


@dataclass
class PointInsight:
    """One classified run inside a report."""

    label: str
    design: str
    workload: str
    profile: BottleneckProfile
    key: Optional[str] = None
    source: str = ""
    elapsed_s: float = 0.0
    assignments: Any = None
    trace_id: str = ""

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "label": self.label,
            "design": self.design,
            "workload": self.workload,
            "key": self.key,
            "profile": self.profile.to_dict(),
        }
        if self.source:
            out["source"] = self.source
        if self.trace_id:
            out["trace_id"] = self.trace_id
        return out


@dataclass
class InsightReport:
    """The classification report ``repro report`` renders."""

    source_kind: str
    source_path: str = ""
    name: str = ""
    trace_id: str = ""
    points: List[PointInsight] = field(default_factory=list)

    # ------------------------------------------------------------------
    def matrix(self) -> Dict[str, Dict[str, Dict[str, Any]]]:
        """``{workload: {design: {primary, confidence, quadrant}}}``.

        Colliding cells (several points with the same workload/design,
        e.g. a mesh sweep) agree or disagree explicitly: an agreeing
        cell keeps the minimum confidence, a disagreeing one joins the
        distinct primaries with ``/`` and zeroes the confidence.
        """
        cells: Dict[str, Dict[str, Dict[str, Any]]] = {}
        for point in self.points:
            row = cells.setdefault(point.workload, {})
            cell = row.get(point.design)
            prof = point.profile
            if cell is None:
                row[point.design] = {
                    "primary": prof.primary,
                    "confidence": prof.confidence,
                    "quadrant": prof.quadrant,
                    "memory_intensity": prof.memory_intensity,
                    "points": 1,
                }
                continue
            cell["points"] += 1
            if prof.primary != cell["primary"]:
                names = sorted(set(cell["primary"].split("/"))
                               | {prof.primary})
                cell["primary"] = "/".join(names)
                cell["confidence"] = 0.0
            else:
                cell["confidence"] = min(cell["confidence"],
                                         prof.confidence)
            cell["memory_intensity"] = round(
                (cell["memory_intensity"] * (cell["points"] - 1)
                 + prof.memory_intensity) / cell["points"], 6)
        return cells

    def class_counts(self) -> Dict[str, int]:
        counts = {name: 0 for name in BOTTLENECK_CLASSES}
        for point in self.points:
            counts[point.profile.primary] = \
                counts.get(point.profile.primary, 0) + 1
        return counts

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": REPORT_SCHEMA,
            "source": {"kind": self.source_kind,
                       "path": self.source_path,
                       "name": self.name},
            "trace_id": self.trace_id,
            "classes": self.class_counts(),
            "matrix": self.matrix(),
            "points": [p.to_dict() for p in self.points],
        }

    def to_json(self) -> str:
        """Byte-stable JSON: sorted keys, no timestamps."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    # ------------------------------------------------------------------
    def _design_columns(self) -> List[str]:
        designs = {p.design for p in self.points}
        ordered = [d for d in _DESIGN_ORDER if d in designs]
        ordered += sorted(designs - set(ordered))
        return ordered

    def to_markdown(self) -> str:
        """The human rendering: classification matrix + per-point rows."""
        designs = self._design_columns()
        matrix = self.matrix()
        lines = [f"# Bottleneck report — {self.name or self.source_kind}",
                 ""]
        if self.trace_id:
            lines += [f"Trace: `{self.trace_id}`", ""]
        lines.append("| workload | " + " | ".join(designs) + " |")
        lines.append("|---" * (len(designs) + 1) + "|")
        for workload in sorted(matrix):
            row = [workload]
            for design in designs:
                cell = matrix[workload].get(design)
                if cell is None:
                    row.append("—")
                else:
                    row.append(f"{cell['primary']} "
                               f"({cell['confidence']:.0%})")
            lines.append("| " + " | ".join(row) + " |")
        lines += ["", "## Points", ""]
        for point in self.points:
            prof = point.profile
            occ = ", ".join(f"{k}={prof.occupancy.get(k, 0.0):.3f}"
                            for k in BOTTLENECK_CLASSES)
            key = f" `{point.key[:12]}`" if point.key else ""
            lines.append(f"- **{point.label}**{key}: {prof.describe()}"
                         f" — {occ}")
        counts = {k: v for k, v in self.class_counts().items() if v}
        lines += ["", "## Class counts", ""]
        for name in BOTTLENECK_CLASSES:
            if counts.get(name):
                lines.append(f"- {name}: {counts[name]}")
        return "\n".join(lines) + "\n"

    def heatmap(self) -> str:
        """ASCII memory-intensity heatmap (workloads x designs)."""
        from repro.analysis.plotting import heatmap

        designs = self._design_columns()
        matrix = self.matrix()
        workloads = sorted(matrix)
        grid = [
            [float(matrix[w].get(d, {}).get("memory_intensity", 0.0))
             for d in designs]
            for w in workloads
        ]
        return heatmap("memory intensity (0 = compute, 1 = memory)",
                       grid, workloads, designs, fmt="{:.2f}")

    # ------------------------------------------------------------------
    def write(self, out_dir: Any, formats: str = "both",
              with_heatmap: bool = False) -> List[Path]:
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        written: List[Path] = []
        if formats in ("json", "both"):
            path = out / "insight.json"
            path.write_text(self.to_json(), encoding="utf-8")
            written.append(path)
        if formats in ("md", "both"):
            path = out / "insight.md"
            path.write_text(self.to_markdown(), encoding="utf-8")
            written.append(path)
        if with_heatmap:
            path = out / "insight_heatmap.txt"
            path.write_text(self.heatmap() + "\n", encoding="utf-8")
            written.append(path)
        return written


# ----------------------------------------------------------------------
# input resolution
# ----------------------------------------------------------------------
def _config_for_spec(spec: Optional[Mapping[str, Any]],
                     mesh: str = "") -> SystemConfig:
    """Resolve a point's config best-effort (never raises)."""
    if spec:
        try:
            from repro.service.spec import ExperimentSpec

            return ExperimentSpec.from_dict(dict(spec)).resolved_config()
        except Exception:
            pass
    if mesh:
        try:
            from repro.campaign.resolver import parse_mesh

            return experiment_config().scaled(*parse_mesh(mesh))
        except Exception:
            pass
    return experiment_config()


def _cache_refinements(key: Optional[str], cache: Any):
    """(metrics_row, active_cycles, telemetry) from the result cache."""
    if not key or cache is None:
        return None, None, None
    telemetry = cache.load_telemetry(key)
    result = cache.load(key)
    if result is None:
        return None, None, telemetry
    return (result_row(result),
            [float(v) for v in result.active_cycles_per_core],
            telemetry)


def _classify(label: str, metrics: Mapping[str, Any],
              key: Optional[str], cache: Any,
              spec: Optional[Mapping[str, Any]] = None,
              mesh: str = "", source: str = "",
              trace_id: str = "") -> PointInsight:
    cfg = _config_for_spec(spec, mesh=mesh)
    row, cycles, telemetry = _cache_refinements(key, cache)
    merged = dict(metrics)
    if row:
        merged.update(row)
    profile = attribute_point(merged, telemetry=telemetry, config=cfg,
                              active_cycles=cycles)
    return PointInsight(
        label=label,
        design=str(merged.get("design", "")),
        workload=str(merged.get("workload", "")),
        profile=profile, key=key, source=source, trace_id=trace_id,
    )


def _from_campaign(payload: Mapping[str, Any], path: str,
                   cache: Any) -> InsightReport:
    report = InsightReport(
        source_kind="campaign", source_path=path,
        name=str(payload.get("name", "")),
        trace_id=str(payload.get("trace_id", "") or ""),
    )
    for point in payload.get("points", []):
        metrics = point.get("metrics")
        if not metrics:
            continue  # failed points carry no row to classify
        spec = point.get("spec") or {}
        insight = _classify(
            label=str(point.get("label") or ""), metrics=metrics,
            key=point.get("key"), cache=cache, spec=spec,
            source=str(point.get("source") or ""),
            trace_id=str(spec.get("trace_id") or ""),
        )
        insight.elapsed_s = float(point.get("elapsed_s") or 0.0)
        insight.assignments = point.get("assignments")
        report.points.append(insight)
    return report


def _from_rows(rows: List[Mapping[str, Any]], path: str,
               cache: Any) -> InsightReport:
    report = InsightReport(source_kind="sweep", source_path=path,
                           name=Path(path).stem if path else "")
    for row in rows:
        label = f"{row.get('design', '?')}/{row.get('workload', '?')}"
        report.points.append(_classify(label, row, row.get("key"), cache))
    return report


def _from_ledger(records: List[Mapping[str, Any]], path: str,
                 cache: Any) -> InsightReport:
    report = InsightReport(source_kind="ledger", source_path=path,
                           name=Path(path).stem if path else "history")
    for record in records:
        label = (f"{record.get('design', '?')}/"
                 f"{record.get('workload', '?')}")
        report.points.append(_classify(
            label, record, record.get("key"), cache,
            mesh=str(record.get("mesh") or ""),
            source=str(record.get("source") or ""),
        ))
    return report


def build_report(source: Any, cache: Any = None,
                 last: Optional[int] = None) -> InsightReport:
    """Build an :class:`InsightReport` from an artifact path.

    ``source`` may be a campaign ``report.json``, a sweep-export JSON
    array, or a ``history.jsonl`` ledger file; the shape is sniffed
    from the content.  ``cache`` (a :class:`~repro.sweep.cache.
    ResultCache`) refines every point whose run key still resolves;
    ``last`` keeps only the newest N ledger records.

    Raises :class:`ValueError` on unreadable or unrecognizable input.
    """
    path = Path(source)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ValueError(f"cannot read report input {path}: {exc}")

    if path.suffix == ".jsonl" or "\n{" in text.strip():
        records = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn ledger line: skip, like the ledger does
            if isinstance(record, dict):
                records.append(record)
        if last:
            records = records[-last:]
        return _from_ledger(records, str(path), cache)

    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise ValueError(f"{path} is not JSON: {exc}")
    if isinstance(payload, dict) and "points" in payload:
        points = [p for p in payload["points"] if isinstance(p, dict)]
        if points and not any("metrics" in p or "spec" in p
                              for p in points):
            # `repro sweep` matrix output: flat result rows, not the
            # campaign report's {label, spec, metrics} envelopes.
            if last:
                points = points[-last:]
            return _from_rows(points, str(path), cache)
        return _from_campaign(payload, str(path), cache)
    if isinstance(payload, list):
        rows = [r for r in payload if isinstance(r, dict)]
        if last:
            rows = rows[-last:]
        return _from_rows(rows, str(path), cache)
    raise ValueError(
        f"{path}: expected a campaign report, a sweep export array, or "
        f"a history .jsonl ledger")
