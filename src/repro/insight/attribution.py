"""Per-run bottleneck attribution (DAMOV-style classification).

Given the flat metric row every run already exports
(:func:`repro.analysis.export.result_row`), optionally refined by a
telemetry-summary sidecar and the per-unit active-cycle vector from the
cached result, this module attributes the run's makespan to the five
resources the paper argues about and emits a deterministic
:class:`BottleneckProfile`:

``compute``
    task-body cycles: the mean per-core utilization net of the *charged*
    memory-stall time.  The executor charges ``stall_ns * freq *
    (1 - prefetch_hide_fraction)`` of every access's latency into task
    durations (the prefetch path hides the rest), so the netting
    mirrors that exact model — raw serial latency times the configured
    hide-keep factor, spread over ``num_units x cores_per_unit`` lanes;
``dram``
    vault channel service: every DRAM access (reads + writes +
    traveller fills) occupies its home vault's channel for
    ``service_ns`` (or the data-burst ``line_transfer_ns`` when the
    experiment config disables the service-contention model), averaged
    over the per-unit vaults;
``noc``
    inter-stack link serialization.  With a telemetry sidecar the
    unit-pair message matrix is routed over the mesh (XY, columns
    first — the same dimension order :class:`~repro.arch.noc.LinkMeter`
    uses) and the *hottest* directed link's occupancy is charged;
    without one, the aggregate hop count is spread over all mesh links
    (mean-link utilization, a lower bound).  The simulated NoC is
    latency-only (links never backpressure), so values above 1.0 are
    meaningful: they are the oversubscription ratio a
    bandwidth-accurate mesh would have to serialize;
``camp``
    intra-stack crossbar occupancy: crossbar transfers (which already
    include traveller-camp round trips) at one ``intra_hop_ns`` each,
    plus L1 hit time when the sidecar carries ``sram.l1_accesses``;
``imbalance``
    the load-skew tail ``(p95 - mean) / makespan`` over the per-core
    active-cycle vector: the critical-path fraction the tail cores add
    over a perfectly balanced run (degrades to ``(busiest - mean) /
    makespan`` when only headline metrics are available).

Every fraction is an *occupancy* — resource busy time over available
time (``lanes x makespan`` for cores, ``num_units x makespan`` for
vaults and crossbars, ``makespan`` for the single hottest link).  The
primary class is the arg-max with a fixed tie order, ``confidence`` is
the relative margin over the runner-up, and the DAMOV two-axis
placement is (memory intensity = charged stall share of busy time) x
(imbalance = p95/mean active-cycle skew, falling back to the row's
max/mean ratio).

Attribution is read-only and deterministic: same inputs, same profile,
byte-identical JSON.  Nothing here touches run keys or simulation
semantics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.config import SystemConfig, experiment_config

#: classification order — also the deterministic tie-break: on equal
#: scores the earlier class wins.
BOTTLENECK_CLASSES = ("compute", "dram", "noc", "camp", "imbalance")

#: memory-intensity threshold between the DAMOV "compute" and "memory"
#: half-planes.
MEMORY_AXIS_THRESHOLD = 0.5

#: active-cycle skew (p95/mean) above which a run sits in the
#: "imbalanced" half-plane: the tail cores carry 50% more work than
#: the average core.
SKEW_THRESHOLD = 1.5

_ROUND = 6


@dataclass
class BottleneckProfile:
    """The deterministic attribution verdict for one run."""

    primary: str
    confidence: float
    occupancy: Dict[str, float] = field(default_factory=dict)
    memory_intensity: float = 0.0
    imbalance: float = 1.0
    quadrant: str = "compute/balanced"
    hottest_link: Optional[str] = None
    inputs: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "primary": self.primary,
            "confidence": self.confidence,
            "occupancy": {k: self.occupancy.get(k, 0.0)
                          for k in BOTTLENECK_CLASSES},
            "memory_intensity": self.memory_intensity,
            "imbalance": self.imbalance,
            "quadrant": self.quadrant,
            "hottest_link": self.hottest_link,
            "inputs": list(self.inputs),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BottleneckProfile":
        return cls(
            primary=str(data.get("primary", "compute")),
            confidence=float(data.get("confidence", 0.0)),
            occupancy=dict(data.get("occupancy", {})),
            memory_intensity=float(data.get("memory_intensity", 0.0)),
            imbalance=float(data.get("imbalance", 1.0)),
            quadrant=str(data.get("quadrant", "compute/balanced")),
            hottest_link=data.get("hottest_link"),
            inputs=list(data.get("inputs", [])),
        )

    def describe(self) -> str:
        """One human line: class, margin, placement, hottest link."""
        parts = [f"{self.primary}-bound "
                 f"({self.confidence:.0%} margin, {self.quadrant})"]
        if self.hottest_link:
            parts.append(f"hottest link {self.hottest_link}")
        return ", ".join(parts)


# ----------------------------------------------------------------------
# mesh-link accounting (matches LinkMeter's XY dimension order)
# ----------------------------------------------------------------------
def mesh_link_count(rows: int, cols: int) -> int:
    """Directed adjacent-link count of a ``rows x cols`` mesh."""
    if rows < 1 or cols < 1:
        return 0
    return 2 * (rows * (cols - 1) + cols * (rows - 1))


def _xy_route(src: int, dst: int, cols: int) -> Iterator[Tuple[int, int]]:
    """Directed links of the XY (columns-first) route between stacks."""
    r, c = divmod(src, cols)
    r_dst, c_dst = divmod(dst, cols)
    here = src
    while (r, c) != (r_dst, c_dst):
        if c != c_dst:
            c += 1 if c_dst > c else -1
        else:
            r += 1 if r_dst > r else -1
        nxt = r * cols + c
        yield here, nxt
        here = nxt


def link_loads_from_unit_matrix(
    matrix: Sequence[Sequence[float]], units_per_stack: int,
    mesh_rows: int, mesh_cols: int,
) -> Dict[Tuple[int, int], float]:
    """Per-directed-link message loads from a unit-pair message matrix.

    Aggregates the ``(num_units, num_units)`` telemetry ``link_matrix``
    to stack pairs and walks each pair's XY route, attributing the
    pair's message count to every link it traverses — the software
    mirror of :meth:`repro.arch.noc.LinkMeter.record` for summaries
    that only persisted the unit matrix.
    """
    loads: Dict[Tuple[int, int], float] = {}
    per = max(1, units_per_stack)
    stack_pair: Dict[Tuple[int, int], float] = {}
    for src, row in enumerate(matrix):
        s_src = src // per
        for dst, count in enumerate(row):
            if not count:
                continue
            s_dst = dst // per
            if s_src == s_dst:
                continue
            pair = (s_src, s_dst)
            stack_pair[pair] = stack_pair.get(pair, 0.0) + float(count)
    for (s_src, s_dst), count in stack_pair.items():
        for link in _xy_route(s_src, s_dst, mesh_cols):
            loads[link] = loads.get(link, 0.0) + count
    return loads


# ----------------------------------------------------------------------
# attribution
# ----------------------------------------------------------------------
def _get(metrics: Mapping[str, Any], name: str, default: float = 0.0) -> float:
    value = metrics.get(name, default)
    try:
        value = float(value)
    except (TypeError, ValueError):
        return default
    return value if math.isfinite(value) else default


def _percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile without numpy (deterministic)."""
    ordered = sorted(float(v) for v in values)
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    pos = (len(ordered) - 1) * q
    lo = int(math.floor(pos))
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def attribute_point(
    metrics: Mapping[str, Any],
    telemetry: Optional[Mapping[str, Any]] = None,
    config: Optional[SystemConfig] = None,
    active_cycles: Optional[Sequence[float]] = None,
) -> BottleneckProfile:
    """Attribute one run's makespan to resource occupancy fractions.

    ``metrics`` is a :func:`~repro.analysis.export.result_row`-style
    mapping (missing keys degrade gracefully — a ledger record's
    headline subset still classifies, with the degraded signals noted
    in ``profile.inputs``).  ``telemetry`` is a TelemetrySummary dict
    (the ``<key>.telemetry.json`` sidecar); ``active_cycles`` the
    per-core busy-cycle vector from the cached result.  ``config``
    supplies timing constants and topology; defaults to the paper's
    :func:`~repro.config.experiment_config`.
    """
    cfg = config if config is not None else experiment_config()
    inputs = ["row"]

    makespan = _get(metrics, "makespan_cycles")
    if makespan <= 0.0:
        return BottleneckProfile(
            primary="compute", confidence=0.0,
            occupancy={k: 0.0 for k in BOTTLENECK_CLASSES},
            inputs=inputs + ["empty"],
        )

    freq = cfg.core.frequency_ghz
    units = cfg.num_units
    tel_counters: Mapping[str, Any] = {}
    tel_matrix: Optional[Sequence[Sequence[float]]] = None
    if telemetry:
        meta = telemetry.get("meta") or {}
        tel_units = meta.get("num_units")
        if tel_units:
            units = int(tel_units)
        tel_counters = telemetry.get("counters") or {}
        tel_matrix = telemetry.get("link_matrix")
        inputs.append("telemetry")
    units = max(1, units)
    lanes = units * max(1, cfg.core.cores_per_unit)
    hide_keep = 1.0 - cfg.scheduler.prefetch_hide_fraction

    # -- raw traffic counts --------------------------------------------
    dram_accesses = (_get(metrics, "dram_reads")
                     + _get(metrics, "dram_writes")
                     + _get(metrics, "cache_fills"))
    inter_hops = _get(metrics, "inter_hops")
    intra_transfers = _get(metrics, "intra_transfers")
    if intra_transfers <= 0.0:
        # Headline-only rows: camp round trips ride the crossbar twice.
        intra_transfers = 2.0 * _get(metrics, "cache_hits")
    l1_accesses = _get(tel_counters, "sram.l1_accesses")

    # -- charged stall cycles: the executor's duration model -----------
    # Tasks pay compute_cycles + stall_ns * freq * (1 - hide); the
    # stall latency of an access is its DRAM row access plus its NoC
    # hops plus its crossbar traversals, so charging the same raw
    # latencies times hide_keep reconstructs what actually landed in
    # the per-core busy time.
    dram_charge = dram_accesses * cfg.memory.access_latency_ns * freq
    noc_charge = inter_hops * cfg.noc.inter_hop_ns * freq
    camp_busy = (intra_transfers * cfg.noc.intra_hop_ns * freq
                 + l1_accesses * cfg.sram.l1_hit_ns * freq)
    capacity = lanes * makespan
    stall_occ = ((dram_charge + noc_charge + camp_busy)
                 * hide_keep / capacity)

    # -- DRAM: vault channel service occupancy -------------------------
    service_ns = cfg.memory.service_ns or cfg.memory.line_transfer_ns
    dram_occ = dram_accesses * service_ns * freq / (units * makespan)

    # -- camp / L1: per-unit crossbar occupancy ------------------------
    camp_occ = camp_busy / (units * makespan)

    # -- NoC: hottest-link serialization (telemetry) or mean link ------
    topo = cfg.topology
    hop_cycles = cfg.noc.inter_hop_ns * freq
    links = mesh_link_count(topo.mesh_rows, topo.mesh_cols)
    hottest_link: Optional[str] = None
    noc_occ = 0.0
    if links:
        matrix_units = len(tel_matrix) if tel_matrix else 0
        if tel_matrix and matrix_units == topo.num_units:
            loads = link_loads_from_unit_matrix(
                tel_matrix, topo.units_per_stack,
                topo.mesh_rows, topo.mesh_cols,
            )
            if loads:
                (a, b), load = max(
                    loads.items(), key=lambda kv: (kv[1], (-kv[0][0],
                                                           -kv[0][1])))
                noc_occ = load * hop_cycles / makespan
                hottest_link = f"s{a}->s{b}"
                inputs.append("link_matrix")
        if noc_occ == 0.0:
            noc_occ = inter_hops * hop_cycles / (links * makespan)

    # -- compute: busy time net of the charged memory stalls -----------
    mean_core = _get(metrics, "mean_core_cycles")
    busiest = _get(metrics, "busiest_core_cycles")
    row_skew = _get(metrics, "load_imbalance", 1.0)
    if mean_core <= 0.0 and row_skew > 0.0:
        # Ledger-degraded path: the busiest unit tracks the makespan on
        # a barrier-synchronized run, so mean ~= makespan / (max/mean).
        mean_core = makespan / row_skew
        busiest = makespan
        inputs.append("approx_cycles")
    util = mean_core / makespan
    compute_occ = max(0.0, util - stall_occ)

    # -- imbalance: the critical-path tail above the mean --------------
    cycle_vector: Optional[List[float]] = None
    if active_cycles is not None and len(active_cycles) > 0:
        cycle_vector = [float(v) for v in active_cycles]
        inputs.append("active_cycles")
    elif tel_counters:
        unit_cycles = [
            float(v) for k, v in sorted(tel_counters.items())
            if k.startswith("unit.") and k.endswith(".active_cycles")
        ]
        if unit_cycles:
            cycle_vector = unit_cycles
            inputs.append("unit_cycles")
    if cycle_vector:
        mean_ac = sum(cycle_vector) / len(cycle_vector)
        p95 = _percentile(cycle_vector, 0.95)
        skew = p95 / mean_ac if mean_ac > 0 else 1.0
        # Normalize to the row's core-level mean so the tail fraction
        # stays consistent when the vector is per *unit* (telemetry).
        imbalance_occ = max(0.0, (skew - 1.0) * mean_core / makespan)
    else:
        if busiest <= 0.0:
            busiest = mean_core * max(1.0, row_skew)
        skew = max(1.0, row_skew)
        imbalance_occ = max(0.0, (busiest - mean_core) / makespan)
        inputs.append("approx_skew")

    occupancy = {
        "compute": round(compute_occ, _ROUND),
        "dram": round(dram_occ, _ROUND),
        "noc": round(noc_occ, _ROUND),
        "camp": round(camp_occ, _ROUND),
        "imbalance": round(imbalance_occ, _ROUND),
    }
    ranked = sorted(
        occupancy.items(),
        key=lambda kv: (-kv[1], BOTTLENECK_CLASSES.index(kv[0])),
    )
    top_name, top = ranked[0]
    second = ranked[1][1]
    confidence = (top - second) / top if top > 0 else 0.0

    memory_intensity = min(1.0, stall_occ / util) if util > 0 else 0.0
    half = ("memory" if memory_intensity >= MEMORY_AXIS_THRESHOLD
            else "compute")
    balance = "imbalanced" if skew >= SKEW_THRESHOLD else "balanced"

    return BottleneckProfile(
        primary=top_name,
        confidence=round(confidence, _ROUND),
        occupancy=occupancy,
        memory_intensity=round(memory_intensity, _ROUND),
        imbalance=round(skew, _ROUND),
        quadrant=f"{half}/{balance}",
        hottest_link=hottest_link,
        inputs=inputs,
    )
