"""Bottleneck attribution and the unified observability plane.

``repro.insight`` answers the question the rest of the telemetry stack
only gathers evidence for: *which resource bounds this run?*  It is
strictly read-only over existing artifacts — metric rows, telemetry
sidecars, campaign reports, the run-history ledger — and therefore
strictly non-semantic: run keys, cached result JSON and the
``abndp-sim-1`` version salt are untouched by everything in here.

* :mod:`~repro.insight.attribution` — per-run resource occupancy
  fractions and the DAMOV-style :class:`BottleneckProfile`;
* :mod:`~repro.insight.report` — ``repro report``: workload x design
  classification matrices over campaign / sweep / ledger inputs;
* :mod:`~repro.insight.metrics_plane` — Prometheus text exposition for
  ``GET /v1/metrics`` (stdlib only) plus warm-runtime counter export;
* :mod:`~repro.insight.trace` — ``trace_id`` minting and Chrome-trace
  merging for end-to-end correlation.
"""

from repro.insight.attribution import (  # noqa: F401
    BOTTLENECK_CLASSES,
    BottleneckProfile,
    attribute_point,
)
from repro.insight.report import InsightReport, build_report  # noqa: F401
from repro.insight.trace import mint_trace_id  # noqa: F401
