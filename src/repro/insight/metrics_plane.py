"""Prometheus text exposition for ``GET /v1/metrics`` (stdlib only).

The experiment server and the warm worker runtime both keep plain-int
counters; this module renders them in the Prometheus text format
(version 0.0.4 — ``# HELP`` / ``# TYPE`` headers, escaped labels) so
any off-the-shelf scraper can watch a long-running ``repro serve``
without new dependencies.

Two layers:

* :class:`MetricFamily` + :func:`render_exposition` — the generic
  renderer (also unit-testable without a server);
* :func:`runtime_metric_families` — the warm-runtime view: per-process
  memo hit/miss counters (:class:`~repro.sweep.runtime.ProcessMemos`),
  shared-workload-store segment accounting, and LPT-dispatch counts,
  all read from :func:`repro.sweep.runtime.runtime_counters`.  These
  are *server-process* numbers: pool workers keep their own memos, so
  the exported memo counters describe the parent's warm scope (the
  honest scope for a pull endpoint).

Everything here is read-only observability — scraping allocates
nothing in the simulator and cannot perturb run keys or results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

#: the content type Prometheus scrapers expect for text exposition.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


@dataclass
class MetricFamily:
    """One exported metric family (name, type, help, samples)."""

    name: str
    kind: str  # "counter" | "gauge"
    help: str
    samples: List[Tuple[Dict[str, str], float]] = field(
        default_factory=list)

    def add(self, value: float, **labels: str) -> "MetricFamily":
        self.samples.append(
            ({k: str(v) for k, v in labels.items()}, float(value)))
        return self


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(text: str) -> str:
    return (text.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_exposition(families: Iterable[MetricFamily]) -> str:
    """Render families as Prometheus text exposition (format 0.0.4)."""
    lines: List[str] = []
    for fam in families:
        lines.append(f"# HELP {fam.name} {_escape_help(fam.help)}")
        lines.append(f"# TYPE {fam.name} {fam.kind}")
        samples = fam.samples or [({}, 0.0)]
        for labels, value in samples:
            if labels:
                body = ",".join(
                    f'{k}="{_escape_label(v)}"'
                    for k, v in sorted(labels.items()))
                lines.append(f"{fam.name}{{{body}}} "
                             f"{_format_value(value)}")
            else:
                lines.append(f"{fam.name} {_format_value(value)}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# warm-runtime counters
# ----------------------------------------------------------------------
def runtime_metric_families() -> List[MetricFamily]:
    """The warm runtime's counters as metric families.

    Reads the passive snapshot :func:`repro.sweep.runtime.
    runtime_counters` — never instantiates memos or pools, so a scrape
    of an idle server reports zeros instead of allocating state.
    """
    from repro.sweep.runtime import runtime_counters

    snap = runtime_counters()
    memo_events = MetricFamily(
        "repro_runtime_memo_events_total", "counter",
        "Warm-scope memo events by kind — MemoStats field names "
        "(this process only; pool workers keep their own memos).")
    for kind in ("workload_hits", "workload_misses", "topology_hits",
                 "topology_misses", "noc_hits", "camp_seeds",
                 "camp_harvests", "line_seeds", "line_harvests",
                 "vector_hits", "vector_donations"):
        memo_events.add(snap.get(f"memo_{kind}", 0), kind=kind)
    families = [
        memo_events,
        MetricFamily(
            "repro_runtime_shm_segments", "gauge",
            "Shared-workload-store segments currently alive."
        ).add(snap.get("shm_segments_open", 0)),
        MetricFamily(
            "repro_runtime_shm_segments_created_total", "counter",
            "Shared-workload-store segments created since start."
        ).add(snap.get("shm_segments_created", 0)),
        MetricFamily(
            "repro_runtime_shm_bytes", "gauge",
            "Bytes currently pinned in shared workload segments."
        ).add(snap.get("shm_bytes_open", 0)),
        MetricFamily(
            "repro_runtime_lpt_orders_total", "counter",
            "LPT dispatch orderings computed from the history ledger."
        ).add(snap.get("lpt_orders", 0)),
        MetricFamily(
            "repro_runtime_lpt_predicted_points_total", "counter",
            "Points whose wall time the LPT planner predicted."
        ).add(snap.get("lpt_predicted_points", 0)),
        MetricFamily(
            "repro_runtime_warm_pools_started_total", "counter",
            "Persistent worker pools started by WorkerRuntime."
        ).add(snap.get("warm_pools_started", 0)),
    ]
    return families
