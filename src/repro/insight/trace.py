"""End-to-end trace correlation: ``trace_id`` minting + trace merging.

A ``trace_id`` is minted once, at submission time (``repro campaign``
/ ``repro run --server`` / :meth:`ServiceClient.run_specs`), and rides
along every hand-off as *pure annotation*:

``ExperimentSpec.trace_id`` -> server ``Job`` -> worker
``ProgressEvent.trace_id`` -> per-run timeline instants.

It never enters a run key, a cached result entry, or a campaign
expansion fingerprint — correlation is observability, and
observability is non-semantic by repo contract.

The merger turns the per-point record of a campaign report (plus any
on-disk per-worker Chrome traces) into one correlated Chrome
``trace_event`` JSON: one process track per design, one thread lane
per worker assignment, one complete span per point, every span
carrying its run key and the shared ``trace_id`` — a 48-point campaign
as a single flamegraph-style view.  Synthetic span placement uses only
data recorded in the report (per-point ``elapsed_s``, point order), so
the merged trace is as deterministic as its inputs.
"""

from __future__ import annotations

import json
import uuid
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence


def mint_trace_id() -> str:
    """A fresh 16-hex-digit correlation id."""
    return uuid.uuid4().hex[:16]


# ----------------------------------------------------------------------
# campaign report -> one correlated timeline
# ----------------------------------------------------------------------
def campaign_trace_events(report: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """Chrome ``traceEvents`` for one campaign report payload.

    Lanes: pid = design (stable sort order), tid = the point's worker
    assignment when the report recorded one, else a per-design lane
    packed first-fit by elapsed time.  Timestamps are synthetic
    (cumulative per lane, microseconds) — the *shape* of the schedule,
    not wall-clock truth, which the report deliberately does not store.
    """
    points = [p for p in report.get("points", [])
              if isinstance(p, dict)]
    trace_id = str(report.get("trace_id") or "")
    designs = sorted({str((p.get("spec") or {}).get("design")
                          or str(p.get("label", "?")).split("/")[0])
                      for p in points})
    pid_of = {design: i + 1 for i, design in enumerate(designs)}

    events: List[Dict[str, Any]] = []
    for pid, design in zip(pid_of.values(), designs):
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "tid": 0, "args": {"name": f"design {design}"}})

    lane_clock: Dict[tuple, float] = {}
    for index, point in enumerate(points):
        spec = point.get("spec") or {}
        design = str(spec.get("design")
                     or str(point.get("label", "?")).split("/")[0])
        pid = pid_of.get(design, 0)
        assignment = point.get("assignments")
        if isinstance(assignment, list) and assignment:
            assignment = assignment[0]
        try:
            tid = int(assignment)
        except (TypeError, ValueError):
            tid = index % 4
        dur_us = max(1.0, float(point.get("elapsed_s") or 0.0) * 1e6)
        lane = (pid, tid)
        ts = lane_clock.get(lane, 0.0)
        lane_clock[lane] = ts + dur_us
        args: Dict[str, Any] = {
            "key": point.get("key"),
            "source": point.get("source"),
        }
        tid_trace = str(spec.get("trace_id") or trace_id)
        if tid_trace:
            args["trace_id"] = tid_trace
        if point.get("error"):
            args["error"] = str(point["error"]).strip().splitlines()[-1]
        events.append({
            "name": str(point.get("label") or f"point {index}"),
            "ph": "X", "ts": round(ts, 3), "dur": round(dur_us, 3),
            "pid": pid, "tid": tid, "args": args,
        })
    return events


def merge_chrome_traces(
    base_events: Sequence[Mapping[str, Any]],
    extra_traces: Sequence[Mapping[str, Any]] = (),
    metadata: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Merge trace fragments into one Chrome ``trace_event`` payload.

    ``extra_traces`` are whole Chrome trace dicts (e.g. per-run
    ``repro trace`` outputs); each gets its events re-homed onto a
    fresh pid block so process tracks never collide with the base
    campaign lanes or each other.
    """
    events: List[Dict[str, Any]] = [dict(ev) for ev in base_events]
    next_pid = 1 + max(
        [int(ev.get("pid", 0)) for ev in events], default=0)
    for trace in extra_traces:
        sub = trace.get("traceEvents")
        if not isinstance(sub, list):
            continue
        pid_map: Dict[int, int] = {}
        for ev in sub:
            if not isinstance(ev, dict):
                continue
            moved = dict(ev)
            old_pid = int(moved.get("pid", 0))
            if old_pid not in pid_map:
                pid_map[old_pid] = next_pid
                next_pid += 1
            moved["pid"] = pid_map[old_pid]
            events.append(moved)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": dict(metadata or {}),
    }


def write_campaign_trace(
    report: Mapping[str, Any], out_path: Any,
    extra_trace_paths: Sequence[Any] = (),
) -> Path:
    """Render one correlated campaign trace to ``out_path``.

    ``extra_trace_paths`` name per-run Chrome traces (``repro trace``
    outputs) to fold in; unreadable fragments are skipped — merging is
    observability and must not fail on a half-written file.
    """
    extras: List[Dict[str, Any]] = []
    for path in extra_trace_paths:
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, ValueError):
            continue
        if isinstance(payload, dict):
            extras.append(payload)
    metadata = {
        "campaign": report.get("name"),
        "fingerprint": report.get("fingerprint"),
        "trace_id": report.get("trace_id") or "",
    }
    payload = merge_chrome_traces(
        campaign_trace_events(report), extras, metadata=metadata)
    out = Path(out_path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, sort_keys=True) + "\n",
                   encoding="utf-8")
    return out
