#!/usr/bin/env python
"""Weak-scaling study: ABNDP vs the baseline on growing machines.

Reproduces the Figure 10 experiment interactively: Page Rank on 2x2,
4x4 and (optionally) 8x8 stack meshes, with the dataset growing
proportionally to the machine.  Shows that the baseline's load
imbalance worsens with scale while ABNDP holds its advantage, and that
Traveller's SRAM tag budget stays constant (Section 4.3).

Run:  python examples/scaling_study.py [--big]
      (--big adds the 8x8 mesh; it takes a few minutes)
"""

import sys

import repro
from repro.config import experiment_config
from repro.workloads.pagerank import PageRankWorkload

VERTICES_PER_UNIT = 16


def main() -> None:
    meshes = [(2, 2), (4, 4)]
    if "--big" in sys.argv:
        meshes.append((8, 8))

    print(f"{'mesh':6} {'units':>6} {'vertices':>9} {'B imbal':>8} "
          f"{'O imbal':>8} {'O vs B':>7} {'tag kB':>7}")
    for rows, cols in meshes:
        cfg = experiment_config().scaled(rows, cols)
        n = VERTICES_PER_UNIT * cfg.num_units
        workload = PageRankWorkload(num_vertices=n, iterations=3)

        base = repro.simulate("B", workload, cfg)
        abndp = repro.simulate("O", workload, cfg)
        tags = repro.build_system("O", cfg).camp_mapper.tag_storage_bytes()

        print(f"{rows}x{cols:<4} {cfg.num_units:6} {n:9,} "
              f"{base.load_imbalance():8.2f} {abndp.load_imbalance():8.2f} "
              f"{abndp.speedup_over(base):6.2f}x {tags / 1024:7.0f}")

    print("\nNote how the per-unit SRAM tag budget is identical at every "
          "scale\n(the Section 4.3 scalability argument for Traveller's "
          "metadata).")


if __name__ == "__main__":
    main()
