#!/usr/bin/env python
"""Quickstart: simulate Page Rank on the baseline and on full ABNDP.

Builds the paper's Table 1 machine twice — once as the co-locating
baseline **B** and once as full ABNDP **O** (Traveller Cache + hybrid
scheduling) — runs the same Page Rank dataset on both, verifies the
computed ranks against a dense reference, and prints the headline
comparison: speedup, remote-access hops, load balance, and energy.

Run:  python examples/quickstart.py
"""

import repro


def main() -> None:
    print("Building the Table 1 machine (4x4 stacks, 128 NDP units)...")
    print(repro.describe_config(repro.default_config()))
    print()

    # One workload instance = one dataset, shared by both designs.
    pagerank = repro.make_workload("pr")

    print("Running Page Rank on design B (co-locating baseline)...")
    baseline = repro.simulate("B", pagerank, verify=True)
    print(" ", baseline.summary())

    print("Running Page Rank on design O (full ABNDP)...")
    abndp = repro.simulate("O", pagerank, verify=True)
    print(" ", abndp.summary())

    print()
    print(f"speedup (O vs B)        : {abndp.speedup_over(baseline):.2f}x")
    print(f"remote hops (O / B)     : {abndp.hops_ratio_over(baseline):.2f}")
    print(f"load imbalance  B       : {baseline.load_imbalance():.2f}")
    print(f"load imbalance  O       : {abndp.load_imbalance():.2f}")
    print(f"energy (O / B)          : {abndp.energy_ratio_over(baseline):.2f}")
    print(f"Traveller Cache hit rate: {abndp.cache.hit_rate:.0%}")
    print()
    print("Both runs verified against the dense reference Page Rank.")


if __name__ == "__main__":
    main()
