#!/usr/bin/env python
"""What does an instrumented run look like from the inside?

Runs PageRank on the full ABNDP design (O) with telemetry enabled and
renders two of the time-resolved views the aggregate RunResult cannot
show:

* the **Traveller hit-rate ramp** — every timestamp barrier bulk-
  invalidates the cache, so within each timestamp the hit rate climbs
  from cold to warm; the per-timestamp samples show how quickly the
  camps re-capture the working set;
* the **NoC link heatmap** — per-stack traffic attributed to physical
  mesh links by XY-route decomposition, exposing which part of the
  mesh carries the remote-access load.

The same data exports to Chrome/Perfetto with
``python -m repro trace O pr --out trace.json``.

Run:  python examples/telemetry_plots.py
"""

import numpy as np

import repro
from repro.analysis.plotting import heatmap, line_series, sparkline
from repro.config import experiment_config
from repro.telemetry import Telemetry


def main() -> None:
    config = experiment_config().scaled(2, 2)
    telemetry = Telemetry(sample_interval=1)
    print("Running PageRank on design O with telemetry enabled...\n")
    result = repro.simulate("O", "pr", config=config, telemetry=telemetry)
    print(result.summary())
    print()

    # 1. the traveller hit-rate ramp, one sample per timestamp.
    # The counters are cumulative, so per-timestamp rates come from
    # the sample-to-sample increments.
    hits = telemetry.sampler.series("traveller.hits").deltas()
    misses = telemetry.sampler.series("traveller.misses").deltas()
    cumulative = telemetry.sampler.series("traveller.hit_rate")
    # Skip idle rows (the run-end flush repeats the last totals).
    active = [(t, h, m) for t, h, m in
              zip(cumulative.timestamps, hits, misses) if h + m > 0]
    ts = [str(t) for t, _, _ in active]
    ramp = [h / (h + m) for _, h, m in active]
    print(line_series(
        "traveller hit rate per timestamp (bulk-invalidated at barriers)",
        ts,
        {"hit rate": ramp},
    ))
    print(f"\n  cumulative hit rate: {cumulative.values[-1]:.1%}")
    print(f"\n  hits per timestamp:   {sparkline(hits)}")
    print(f"  misses per timestamp: {sparkline(misses)}")
    print()

    # 2. the per-link NoC heatmap, stacks as rows/columns
    meter = telemetry.link_meter
    stacks = meter.stack_matrix()
    labels = [f"s{i}" for i in range(stacks.shape[0])]
    print(heatmap(
        "inter-stack NoC flits (row = source stack, column = destination)",
        stacks, row_labels=labels, col_labels=labels,
    ))
    print()
    print("hottest directed mesh links (XY-routed):")
    for src, dst, flits in meter.hottest_links(top=5):
        print(f"  stack {src} -> stack {dst}: {flits:,} flits")

    # 3. queue-depth skew over time, from the sampled vector series
    depth = telemetry.sampler.series("queue.depth")
    skew = [float(np.max(row) / np.mean(row)) if np.mean(row) > 0 else 1.0
            for row in depth.rows]
    print(f"\n  queue-depth skew (max/mean) per timestamp: {sparkline(skew)}")


if __name__ == "__main__":
    main()
