#!/usr/bin/env python
"""Design-space exploration: the Table 2 matrix on a chosen workload.

Runs every evaluated design (B, Sm, Sl, Sh, C, O) on one workload and
prints the paper's key metrics side by side — the quickest way to see
the remote-access / load-balance tradeoff the paper is about:

* Sm (lowest-distance) trims hops but concentrates load;
* Sl (work stealing) balances load but pays hops back;
* Sh (hybrid) balances with a bounded distance budget;
* C  (Traveller Cache alone) has the fewest hops but no balance;
* O  (ABNDP) combines both.

Run:  python examples/design_space.py [workload]
      (workload is one of pr, bfs, sssp, astar, gcn, kmeans, knn, spmv;
       default: knn — the most design-sensitive one)
"""

import sys

import repro


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "knn"
    if name not in repro.ALL_WORKLOADS:
        raise SystemExit(
            f"unknown workload {name!r}; pick one of {repro.ALL_WORKLOADS}"
        )

    print(f"Exploring the Table 2 design space on {name!r}...")
    workload = repro.make_workload(name)
    results = repro.compare_designs(repro.ALL_DESIGNS, workload)
    base = results["B"]

    header = (f"{'design':7} {'speedup':>8} {'hops/B':>8} {'imbal':>7} "
              f"{'energy/B':>9} {'cache hit':>10} {'steals':>8}")
    print()
    print(header)
    print("-" * len(header))
    for design, r in results.items():
        hops = r.hops_ratio_over(base) if base.inter_hops else 0.0
        print(f"{design:7} {r.speedup_over(base):8.2f} {hops:8.2f} "
              f"{r.load_imbalance():7.2f} {r.energy_ratio_over(base):9.2f} "
              f"{r.cache.hit_rate:10.0%} {r.steals:8}")

    print()
    for design, r in results.items():
        point = repro.DESIGN_POINTS[design]
        print(f"  {design:3} = {point.description}")


if __name__ == "__main__":
    main()
