#!/usr/bin/env python
"""Resilience study: slowdown vs. failed units, baseline vs. ABNDP.

Kills 0, 2, 4, ... NDP units (same seeded victims for every design)
and plots how much each run slows down relative to its own healthy
reference.  Both designs keep the zero-lost-tasks guarantee; the
interesting readout is *how* they absorb the loss — the co-locating
baseline (B) re-places stranded tasks near their (now unreachable)
homes and pays timeout penalties, while full ABNDP (O) folds the
re-placed work into its normal hybrid balancing.

Every point runs through the sweep cache, so re-running the study is
nearly free; the fault schedules are seed-derived and reproducible.

Run:  python examples/fault_campaign.py [workload] [--no-cache]
      (default workload: pr)
"""

import sys

import repro
from repro.analysis.plotting import line_series
from repro.arch.topology import Topology
from repro.faults import make_random_schedule, run_fault_campaign

DESIGNS = ("B", "O")
FAILURE_COUNTS = (0, 2, 4, 8, 12)


def main() -> None:
    args = [a for a in sys.argv[1:] if not a.startswith("-")]
    cache = False if "--no-cache" in sys.argv[1:] else "default"
    name = args[0] if args else "pr"
    if name not in repro.ALL_WORKLOADS:
        raise SystemExit(
            f"unknown workload {name!r}; pick one of {repro.ALL_WORKLOADS}"
        )

    cfg = repro.experiment_config()
    topo = Topology(cfg.topology, num_groups=cfg.cache.num_groups())
    workload = repro.make_workload(name)

    print(f"Failing units under {name!r} (seed {cfg.seed}, "
          f"{topo.num_units} units)...\n")
    slowdowns = {d: [] for d in DESIGNS}
    for design in DESIGNS:
        for fails in FAILURE_COUNTS:
            if fails == 0:
                slowdowns[design].append(1.0)
                continue
            schedule = make_random_schedule(
                topo.num_units, topo.mesh_links(),
                unit_fails=fails, seed=cfg.seed,
            )
            campaign = run_fault_campaign(
                design, workload, schedule, config=cfg, cache=cache,
            )
            assert campaign.total_lost_tasks == 0, "tasks were lost!"
            s = campaign.slowdown("f0")
            res = campaign.faulted["f0"].resilience
            slowdowns[design].append(s)
            print(f"  {design}: {fails:3d} failed -> slowdown {s:5.2f}  "
                  f"(reexecuted {res.tasks_reexecuted}, "
                  f"unreachable {res.unreachable_accesses})")

    print()
    print(line_series(
        f"slowdown vs. failed units ({name}, zero lost tasks everywhere)",
        list(FAILURE_COUNTS),
        {f"{d} ({'baseline' if d == 'B' else 'ABNDP'})": slowdowns[d]
         for d in DESIGNS},
        height=12,
    ))
    print()
    b_tail, o_tail = slowdowns["B"][-1], slowdowns["O"][-1]
    print(f"With {FAILURE_COUNTS[-1]} dead units: B slows {b_tail:.2f}x, "
          f"O slows {o_tail:.2f}x — and neither lost a single task.")


if __name__ == "__main__":
    main()
