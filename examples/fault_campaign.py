#!/usr/bin/env python
"""Resilience study: slowdown vs. failed units, baseline vs. ABNDP.

Kills 0, 2, 4, ... NDP units (same seeded victims for every design)
and plots how much each run slows down relative to its own healthy
reference.  Both designs keep the zero-lost-tasks guarantee; the
interesting readout is *how* they absorb the loss — the co-locating
baseline (B) re-places stranded tasks near their (now unreachable)
homes and pays timeout penalties, while full ABNDP (O) folds the
re-placed work into its normal hybrid balancing.

The study itself is the committed ``campaigns/fault_study.json``
campaign — designs, failure counts and seed-derived schedules all live
in that one file (this script only renders the plot).  Every point
runs through the sweep cache, so re-running the study is nearly free
and ``repro campaign run campaigns/fault_study.json`` shares the same
cache entries.

Run:  python examples/fault_campaign.py [workload] [--no-cache]
      (default workload: pr)
"""

import sys
from pathlib import Path

import repro
from repro.analysis.plotting import line_series
from repro.campaign import load_campaign, run_campaign

CAMPAIGN_FILE = Path(__file__).resolve().parent.parent / "campaigns" \
    / "fault_study.json"


def main() -> None:
    args = [a for a in sys.argv[1:] if not a.startswith("-")]
    cache = False if "--no-cache" in sys.argv[1:] else "default"
    name = args[0] if args else "pr"
    if name not in repro.ALL_WORKLOADS:
        raise SystemExit(
            f"unknown workload {name!r}; pick one of {repro.ALL_WORKLOADS}"
        )

    campaign = load_campaign(CAMPAIGN_FILE)
    expansion = campaign.expand(sets={"base.workload": name})
    designs = campaign.doc["axes"]["design"]
    fault_axis = campaign.doc["axes"]["faults"]
    counts = [(v or {}).get("random", {}).get("unit_fails", 0)
              for v in fault_axis]
    seed = repro.experiment_config().seed

    print(f"Failing units under {name!r} (seed {seed}, "
          f"campaign {campaign.name!r})...\n")
    report = run_campaign(campaign, expansion, cache=cache)
    if report.failures:
        for o in report.failures:
            print(f"FAILED {o.point.label}: {o.error}")
        raise SystemExit(1)

    by_design = {d: {} for d in designs}
    for outcome in report.outcomes:
        fails = (outcome.point.spec.faults or {"events": []})
        fails = sum(1 for e in fails["events"]
                    if e.get("kind") == "unit_fail")
        by_design[outcome.point.spec.design][fails] = outcome.result

    slowdowns = {d: [] for d in designs}
    for design in designs:
        healthy = by_design[design][0]
        for fails in counts:
            r = by_design[design][fails]
            lost = healthy.tasks_executed - r.tasks_executed
            assert lost == 0, "tasks were lost!"
            s = r.makespan_cycles / healthy.makespan_cycles
            slowdowns[design].append(s)
            if fails:
                res = r.resilience
                print(f"  {design}: {fails:3d} failed -> slowdown "
                      f"{s:5.2f}  "
                      f"(reexecuted {res.tasks_reexecuted}, "
                      f"unreachable {res.unreachable_accesses})")

    print()
    print(line_series(
        f"slowdown vs. failed units ({name}, zero lost tasks everywhere)",
        counts,
        {f"{d} ({'baseline' if d == 'B' else 'ABNDP'})": slowdowns[d]
         for d in designs},
        height=12,
    ))
    print()
    b_tail, o_tail = slowdowns["B"][-1], slowdowns["O"][-1]
    print(f"With {counts[-1]} dead units: B slows {b_tail:.2f}x, "
          f"O slows {o_tail:.2f}x — and neither lost a single task.")


if __name__ == "__main__":
    main()
