#!/usr/bin/env python
"""Where does the scheduler actually put the work?

Attaches a :class:`~repro.runtime.trace.TaskTraceRecorder` to three
designs running the same skewed KNN workload and compares, per design:

* how many tasks ran away from the unit that spawned them,
* how far (in distance cost) the scheduler moved them, and
* the per-unit *active cycle* distribution (Figure 9's metric), as a
  box plot — note B's task COUNTS are flat (one task per query) while
  its cycles are not: the imbalance lives in the task durations.

This is the mechanism view behind Figure 9: B leaves tasks at their
data and inherits the dataset's skew; Sl steals them blindly; O spreads
them deliberately across the camps.

Run:  python examples/trace_analysis.py
"""

import numpy as np

import repro
from repro.analysis.plotting import box_plot, sparkline
from repro.config import experiment_config
from repro.core.system import build_system
from repro.runtime.trace import TaskTraceRecorder


def traced_run(design: str, workload):
    system = build_system(design, experiment_config())
    recorder = TaskTraceRecorder()
    system.executor.recorder = recorder
    state = workload.setup(system)
    system.executor.run(workload.root_tasks(state), state=state,
                        on_barrier=workload.on_barrier)
    cycles = np.array([u.active_cycles for u in system.units])
    return system, recorder, cycles


def main() -> None:
    distributions = {}
    print("Tracing task placement on the skewed KNN workload...\n")
    print(f"{'design':7} {'tasks':>6} {'migrated':>9} {'stolen':>7} "
          f"{'avg move (ns)':>14}")
    for design in ("B", "Sl", "O"):
        workload = repro.make_workload("knn")
        system, recorder, cycles = traced_run(design, workload)
        cost = system.interconnect.cost_matrix
        print(f"{design:7} {len(recorder):6} "
              f"{recorder.migrated_fraction():9.0%} "
              f"{recorder.stolen_fraction():7.0%} "
              f"{recorder.mean_placement_distance(cost):14.1f}")
        distributions[design] = cycles

    print()
    print(box_plot(
        "per-unit active cycles (same workload, three designs)",
        distributions,
    ))
    print()
    for design, cycles in distributions.items():
        print(f"  {design} unit cycles: {sparkline(np.sort(cycles))}")
    print("\nB's cycle distribution mirrors the query skew (hot leaves =")
    print("long tasks); Sl and O flatten it, O while keeping moves short.")


if __name__ == "__main__":
    main()
