#!/usr/bin/env python
"""Porting your own application onto the ABNDP task model.

Implements a small *histogram* workload from scratch against the public
API: tasks scan chunks of a skewed record array and increment shared
bucket counters.  The buckets are Zipf-popular, so a few bucket
cachelines are read by most tasks — exactly the hot-data pattern the
Traveller Cache targets.

The walkthrough shows everything a port needs:

1. allocate primary data through ``system.allocator()``;
2. build root tasks whose hints list the exact addresses they touch;
3. let task bodies do the real computation (and optionally spawn
   children with ``ctx.enqueue_task``);
4. apply bulk updates in ``on_barrier``;
5. ``verify`` against an independent reference.

Run:  python examples/custom_workload.py
"""

from dataclasses import dataclass, field
from typing import List

import numpy as np

import repro
from repro.runtime.task import Task, TaskHint
from repro.workloads.base import Workload
from repro.workloads.datasets import zipf_choices


@dataclass
class HistogramState:
    values: np.ndarray          # record -> bucket id
    record_addrs: np.ndarray
    bucket_addrs: np.ndarray
    counts: np.ndarray
    chunk: int
    passes: int
    home_of_chunk: List[int] = field(default_factory=list)


def _task_histogram(ctx, start: int) -> None:
    st: HistogramState = ctx.state
    stop = min(len(st.values), start + st.chunk)
    for bucket in st.values[start:stop]:
        st.counts[bucket] += 1
    if ctx.timestamp + 1 < st.passes:
        ctx.enqueue_task(
            _task_histogram,
            ctx.timestamp + 1,
            _hint_for(st, start),
            start,
            compute_cycles=30.0 + 4.0 * (stop - start),
        )


def _hint_for(st: HistogramState, start: int) -> TaskHint:
    stop = min(len(st.values), start + st.chunk)
    buckets = np.unique(st.values[start:stop])
    addrs = np.concatenate(
        ([st.record_addrs[start]], st.bucket_addrs[buckets])
    )
    return TaskHint(addresses=addrs)


class HistogramWorkload(Workload):
    """Chunked histogram over Zipf-distributed bucket ids."""

    name = "histogram"

    def __init__(self, records: int = 65536, buckets: int = 512,
                 chunk: int = 32, passes: int = 3, skew: float = 1.1,
                 seed: int = 99):
        rng = np.random.default_rng(seed)
        self.values = zipf_choices(buckets, records, skew, rng)
        self.buckets = buckets
        self.chunk = chunk
        self.passes = passes

    def setup(self, system) -> HistogramState:
        alloc = system.allocator()
        # Records: blocked ranges (each chunk lives in one unit).
        records = alloc.alloc(
            "hist_records", len(self.values), elem_bytes=8, layout="blocked"
        )
        # Buckets: spread round-robin; the popular ones become hot.
        buckets = alloc.alloc(
            "hist_buckets", self.buckets, elem_bytes=8, layout="round_robin"
        )
        return HistogramState(
            values=self.values,
            record_addrs=records.addresses,
            bucket_addrs=buckets.addresses,
            counts=np.zeros(self.buckets, dtype=np.int64),
            chunk=self.chunk,
            passes=self.passes,
        )

    def root_tasks(self, state: HistogramState) -> List[Task]:
        tasks = []
        for start in range(0, len(state.values), state.chunk):
            hint = _hint_for(state, start)
            tasks.append(Task(
                func=_task_histogram,
                timestamp=0,
                hint=hint,
                args=(start,),
                compute_cycles=30.0 + 4.0 * state.chunk,
            ))
        return tasks

    def verify(self, state: HistogramState) -> None:
        expected = np.bincount(self.values, minlength=self.buckets)
        expected = expected * self.passes
        if not np.array_equal(state.counts, expected):
            raise AssertionError("histogram counts are wrong")


def main() -> None:
    workload = HistogramWorkload()
    print("Custom histogram workload on the Table 2 designs:")
    results = repro.compare_designs(("B", "Sl", "O"), workload)
    base = results["B"]
    for design, r in results.items():
        print(f"  {design:3} speedup={r.speedup_over(base):5.2f}  "
              f"hops={r.inter_hops:9,}  imbalance={r.load_imbalance():5.2f}  "
              f"hit={r.cache.hit_rate:.0%}")

    # Check the answer on a fresh run of the most complex design.
    repro.simulate("O", HistogramWorkload(), verify=True)
    print("\nO run verified against numpy's bincount reference.")


if __name__ == "__main__":
    main()
