"""Figure 18: impact of the workload-exchange interval.

The paper sweeps 25k..800k cycles on its full-size datasets and finds
performance essentially flat — the exchange can be very infrequent.
This reproduction's datasets (and therefore phase lengths) are a few
hundred times shorter, so the sweep covers the same *ratio* range
around the scaled default of 250 cycles (see EXPERIMENTS.md).

Shape to reproduce: performance is insensitive across a wide range of
intervals.
"""

from .common import DETAIL_WORKLOADS, once, run, scheduler_config

INTERVALS = (62, 125, 250, 500, 1000, 2000)


def test_fig18_exchange_interval(benchmark):
    configs = {
        i: scheduler_config(exchange_interval_cycles=i) for i in INTERVALS
    }

    def simulate():
        out = {}
        for w in DETAIL_WORKLOADS:
            out[w] = {
                i: run("O", w, configs[i], config_key=(f"interval{i}",))
                for i in INTERVALS
            }
        return out

    res = once(benchmark, simulate)

    print("\nFigure 18: speedup vs exchange interval "
          "(normalized to the shortest interval)")
    print("workload " + "".join(f"{i:>7}" for i in INTERVALS))
    for w in DETAIL_WORKLOADS:
        base = res[w][INTERVALS[0]]
        print(f"{w:8} " + "".join(
            f"{res[w][i].speedup_over(base):7.2f}" for i in INTERVALS))

    # --- shape assertions -------------------------------------------
    # Performance is insensitive across the sweep: every point within
    # a modest band of the best for that workload.
    for w in DETAIL_WORKLOADS:
        makespans = [res[w][i].makespan_cycles for i in INTERVALS]
        assert max(makespans) / min(makespans) < 1.4, (w, makespans)
