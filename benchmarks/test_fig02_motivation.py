"""Figure 2: the motivating tradeoff, on Page Rank.

Left panel: interconnect hops under B (baseline), Sm (lowest-distance
mapping, "LDM") and Sl (work stealing, "WS").  Right panel: the
distribution of execution cycles across the NDP units (box plot).

Shape to reproduce: LDM reduces hops relative to the baseline but
*worsens* the busiest unit; WS flattens the distribution (lower max)
but moves tasks away from their data, so its hops exceed LDM's.
"""

import numpy as np

from repro.analysis.stats import quartiles

from .common import once, run


def test_fig02_motivation_tradeoff(benchmark):
    def simulate():
        return {d: run(d, "pr") for d in ("B", "Sm", "Sl")}

    res = once(benchmark, simulate)
    base, ldm, ws = res["B"], res["Sm"], res["Sl"]

    print("\nFigure 2 (left): interconnect hops, Page Rank")
    for name, r in [("BASE", base), ("LDM", ldm), ("WS", ws)]:
        print(f"  {name:5} {r.inter_hops:12,} hops "
              f"({r.hops_ratio_over(base):.2f}x of BASE)")

    print("Figure 2 (right): per-unit execution cycles (box stats)")
    for name, r in [("BASE", base), ("LDM", ldm), ("WS", ws)]:
        per_unit = r.active_cycles_per_core.reshape(-1, 2).sum(axis=1)
        q = quartiles(per_unit)
        print(f"  {name:5} min={q['min']:9,.0f} q25={q['q25']:9,.0f} "
              f"med={q['median']:9,.0f} q75={q['q75']:9,.0f} "
              f"max={q['max']:9,.0f}")

    # --- shape assertions -------------------------------------------
    # LDM cuts remote accesses below the baseline...
    assert ldm.inter_hops < base.inter_hops
    # ...but concentrates work: its busiest unit is at least as busy.
    assert ldm.busiest_core_cycles() >= 0.95 * base.busiest_core_cycles()
    # WS flattens the distribution (strictly better balance than LDM)...
    assert ws.load_imbalance() < ldm.load_imbalance()
    # ...at the price of more remote accesses than LDM.
    assert ws.inter_hops > ldm.inter_hops
