"""Figure 6: overall performance of all designs on all eight workloads.

Prints the full speedup matrix (normalized to design B) plus the
geometric mean, and the host-CPU reference point H.

Shape to reproduce: the hybrid designs (Sh, O) and work stealing (Sl)
beat the baseline on the load-imbalanced workloads; ABNDP (O) leads by
the largest margin where hot data dominates (knn, spmv); kmeans is
insensitive to the design; Sm and C collapse on knn/spmv because they
lack any load balancing.
"""

import repro
from repro.analysis.stats import geomean
from repro.core.host import HostModel

from .common import ALL_WORKLOADS, DESIGNS, once, run_all_designs


def test_fig06_overall_speedup(benchmark):
    def simulate():
        return {w: run_all_designs(w) for w in ALL_WORKLOADS}

    rows = once(benchmark, simulate)

    print("\nFigure 6: speedup over B")
    header = "workload " + "".join(f"{d:>7}" for d in DESIGNS)
    print(header)
    speedups = {d: [] for d in DESIGNS}
    for w in ALL_WORKLOADS:
        base = rows[w]["B"]
        line = f"{w:8} "
        for d in DESIGNS:
            s = rows[w][d].speedup_over(base)
            speedups[d].append(s)
            line += f"{s:7.2f}"
        print(line)
    print("geomean  " + "".join(
        f"{geomean(speedups[d]):7.2f}" for d in DESIGNS))

    host = HostModel()
    b_vs_h = host.speedup_of(rows["pr"]["B"])
    o_vs_h = b_vs_h * rows["pr"]["O"].speedup_over(rows["pr"]["B"])
    print(f"\nhost reference (pr): B = {b_vs_h:.2f}x over H, "
          f"O = {o_vs_h:.2f}x over H")

    # --- shape assertions -------------------------------------------
    gm = {d: geomean(speedups[d]) for d in DESIGNS}
    # The load-balancing designs beat the baseline overall.
    assert gm["Sl"] > 1.0
    assert gm["Sh"] > 1.0
    assert gm["O"] > 1.0
    # Designs without load balance do not (knn/spmv drag them down).
    assert gm["Sm"] < 1.0
    # ABNDP leads where hot data dominates.
    knn = rows["knn"]
    assert knn["O"].speedup_over(knn["B"]) == max(
        knn[d].speedup_over(knn["B"]) for d in DESIGNS
    )
    assert knn["O"].speedup_over(knn["B"]) > 1.5
    spmv = rows["spmv"]
    assert spmv["O"].speedup_over(spmv["B"]) == max(
        spmv[d].speedup_over(spmv["B"]) for d in DESIGNS
    )
    # knn punishes the no-balance designs hardest (Section 7.1).
    assert knn["Sm"].speedup_over(knn["B"]) < 0.7
    assert knn["C"].speedup_over(knn["B"]) < 0.7
    # kmeans is design-insensitive (fully local, independent tasks).
    km = rows["kmeans"]
    for d in DESIGNS:
        assert abs(km[d].speedup_over(km["B"]) - 1.0) < 0.1, d
    # NDP beats the host by a sizable factor.
    assert b_vs_h > 2.0
