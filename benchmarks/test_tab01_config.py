"""Table 1: system configuration.

Renders the Table 1 summary from the live configuration objects and
checks every headline number against the paper's text.
"""

import pytest

import repro
from repro.config import GB, MB, default_config, describe_config

from .common import once


def test_tab01_system_configuration(benchmark):
    cfg = default_config()

    def render():
        text = describe_config(cfg)
        print("\n" + text)
        return text

    text = once(benchmark, render)

    # The quantities Table 1 prints, verified against the live objects.
    assert cfg.topology.num_stacks == 16
    assert cfg.topology.units_per_stack == 8
    assert cfg.num_units == 128
    assert cfg.total_capacity == 64 * GB
    assert cfg.memory.capacity_per_unit == 512 * MB
    assert cfg.core.frequency_ghz == 2.0
    assert cfg.num_units * cfg.core.cores_per_unit == 256
    assert cfg.memory.t_cas_ns == cfg.memory.t_rcd_ns == cfg.memory.t_rp_ns == 17.0
    assert cfg.memory.rdwr_pj_per_bit == 5.0
    assert cfg.memory.act_pre_pj == 535.8
    assert cfg.noc.intra_hop_ns == 1.5 and cfg.noc.intra_pj_per_bit == 0.4
    assert cfg.noc.inter_hop_ns == 10.0 and cfg.noc.inter_pj_per_bit == 4.0
    assert cfg.cache.capacity_ratio == 64
    assert cfg.cache.associativity == 4
    assert cfg.cache.num_camps == 3
    assert cfg.cache.bypass_probability == 0.4
    assert cfg.scheduler.exchange_interval_cycles == 100_000
    assert cfg.scheduler.hybrid_weight(cfg.topology, cfg.noc) == 30.0
    assert "4x4 stacks" in text


def test_tab01_tag_storage_matches_section_4_3(benchmark):
    """Section 4.3's arithmetic: 32768 sets, 10-bit tags, ~160 kB SRAM."""

    def compute():
        system = repro.build_system("O", default_config())
        mapper = system.camp_mapper
        print(f"\nsets/unit        : {mapper.num_sets}")
        print(f"tag bits/block   : {mapper.tag_bits_per_block()}")
        print(f"tag SRAM per unit: {mapper.tag_storage_bytes() / 1024:.0f} kB")
        print(f"tag SRAM area    : {system.sram.tag_area_mm2():.2f} mm^2")
        return mapper

    mapper = once(benchmark, compute)
    assert mapper.num_sets == 32768
    assert mapper.tag_bits_per_block() == 10
    assert 150 <= mapper.tag_storage_bytes() / 1024 <= 170
