"""Figure 7: energy of all designs, broken into four components.

Prints the stacked-bar data (static / DRAM / interconnect / core+SRAM),
normalized to design B, for every workload.

Shape to reproduce: the interconnect component tracks the remote-access
hops of Figure 8; Traveller-Cache designs trade extra DRAM (cache
insertions) for interconnect savings; ABNDP's energy is lowest on the
hot-data workloads where the cache wins big (the paper reports a 24.6%
mean reduction across its full-size runs).
"""

from .common import ALL_WORKLOADS, DESIGNS, once, run_all_designs


def test_fig07_energy_breakdown(benchmark):
    def simulate():
        return {w: run_all_designs(w) for w in ALL_WORKLOADS}

    rows = once(benchmark, simulate)

    print("\nFigure 7: energy normalized to B "
          "(core+SRAM / DRAM / interconnect / static)")
    for w in ALL_WORKLOADS:
        base = rows[w]["B"]
        print(f"{w}:")
        for d in DESIGNS:
            parts = rows[w][d].energy.normalized_to(base.energy)
            print(f"  {d:3} total={parts['total']:.3f}  "
                  f"core={parts['core_sram']:.3f} dram={parts['dram']:.3f} "
                  f"noc={parts['interconnect']:.3f} "
                  f"static={parts['static']:.3f}")

    # --- shape assertions -------------------------------------------
    for w in ("knn", "spmv"):
        base = rows[w]["B"]
        o = rows[w]["O"]
        c = rows[w]["C"]
        # ABNDP saves energy where the cache absorbs hot traffic.
        assert o.energy_ratio_over(base) < 1.0, w
        # The Traveller Cache cuts the interconnect component.
        assert (o.energy.interconnect_pj
                < base.energy.interconnect_pj), w
        assert (c.energy.interconnect_pj
                < base.energy.interconnect_pj), w
        # ...while adding DRAM energy for the cache insertions.
        assert c.energy.dram_pj > 0.95 * base.energy.dram_pj, w

    # kmeans: no remote traffic, so every design's energy is equal.
    km = rows["kmeans"]
    for d in DESIGNS:
        assert abs(km[d].energy_ratio_over(km["B"]) - 1.0) < 0.1, d

    # The interconnect component correlates with the hop counts.
    pr = rows["pr"]
    assert (pr["C"].energy.interconnect_pj
            < pr["Sl"].energy.interconnect_pj)
