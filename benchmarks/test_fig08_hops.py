"""Figure 8: remote accesses, measured as total inter-stack mesh hops.

Shape to reproduce (Section 7.1): Sm trims hops below B by considering
all of a task's elements; Sl adds hops back through stealing; the
Traveller Cache designs (C, O) cut hops the most — C by ~21% in the
paper — with O slightly above C because its load balancing moves some
tasks off the shortest-distance unit.
"""

from .common import DETAIL_WORKLOADS, DESIGNS, once, run_all_designs


def test_fig08_remote_access_hops(benchmark):
    def simulate():
        return {w: run_all_designs(w) for w in DETAIL_WORKLOADS}

    rows = once(benchmark, simulate)

    print("\nFigure 8: inter-stack hops normalized to B")
    print("workload " + "".join(f"{d:>7}" for d in DESIGNS))
    for w in DETAIL_WORKLOADS:
        base = rows[w]["B"]
        print(f"{w:8} " + "".join(
            f"{rows[w][d].hops_ratio_over(base):7.2f}" for d in DESIGNS))

    # --- shape assertions -------------------------------------------
    for w in DETAIL_WORKLOADS:
        base = rows[w]["B"]
        # Lowest-distance mapping never increases remote accesses.
        assert rows[w]["Sm"].inter_hops <= base.inter_hops * 1.01, w
        # Work stealing adds hops back on top of Sm's placement.
        assert rows[w]["Sl"].inter_hops >= rows[w]["Sm"].inter_hops, w
        # The Traveller Cache gives C the fewest hops of all designs.
        assert rows[w]["C"].inter_hops == min(
            rows[w][d].inter_hops for d in DESIGNS
        ), w
        assert rows[w]["C"].hops_ratio_over(base) < 0.9, w

    # O keeps most of the cache's hop savings despite balancing
    # (clearly below the stealing design on the hot-data workloads).
    for w in ("knn", "spmv", "pr"):
        assert (rows[w]["O"].inter_hops
                < rows[w]["Sl"].inter_hops), w
