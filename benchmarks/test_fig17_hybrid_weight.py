"""Figure 17: impact of the hybrid scheduling weight B = alpha*D_inter.

Sweeps alpha from 0 (pure distance scheduling) to the topology diameter
6, on design O.

Shape to reproduce: remote hops grow with alpha (a larger weight lets
tasks travel further for balance), while performance first improves
and then saturates around the paper's default alpha = d/2 = 3.
"""

from .common import DETAIL_WORKLOADS, once, run, scheduler_config

ALPHAS = (0.0, 1.0, 2.0, 3.0, 4.0, 6.0)


def test_fig17_hybrid_weight(benchmark):
    configs = {a: scheduler_config(hybrid_alpha=a) for a in ALPHAS}

    def simulate():
        out = {}
        for w in DETAIL_WORKLOADS:
            out[w] = {
                a: run("O", w, configs[a], config_key=(f"alpha{a}",))
                for a in ALPHAS
            }
        return out

    res = once(benchmark, simulate)

    print("\nFigure 17: hops and speedup vs alpha (normalized to alpha=0)")
    for w in DETAIL_WORKLOADS:
        base = res[w][0.0]
        hops = " ".join(
            f"{res[w][a].hops_ratio_over(base):5.2f}" for a in ALPHAS)
        spd = " ".join(
            f"{res[w][a].speedup_over(base):5.2f}" for a in ALPHAS)
        print(f"{w:7} hops {hops}")
        print(f"{'':7} spd  {spd}")

    # --- shape assertions -------------------------------------------
    # The hot-data workloads gain from the load term, and the default
    # alpha = 3 captures most of the benefit (the paper's saturation).
    for w in ("knn", "spmv"):
        base = res[w][0.0]
        best = max(res[w][a].speedup_over(base) for a in ALPHAS[1:])
        assert best > 1.05, w
        assert res[w][3.0].speedup_over(base) > 0.8 * best, w
    # Larger alpha lets tasks travel further: remote accesses never
    # drop below the alpha=0 level anywhere.
    for w in DETAIL_WORKLOADS:
        assert (res[w][6.0].inter_hops
                >= res[w][0.0].inter_hops * 0.9), w
    # The load term always buys balance, even where (pr at this
    # reduced scale) the camp-aware distance placement is already
    # balanced enough that the extra hops outweigh the makespan gain.
    for w in ("pr", "knn", "spmv"):
        assert (res[w][3.0].load_imbalance()
                <= res[w][0.0].load_imbalance() * 1.05), w
