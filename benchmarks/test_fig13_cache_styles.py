"""Figure 13: Traveller Cache vs a pure SRAM cache vs a DRAM-tag cache.

All three share the camp-location organisation and data capacity; they
differ in where data and tags live:

* Traveller — data in DRAM, tags in SRAM (the paper's design);
* SRAM      — data and tags in SRAM: fastest and most efficient, but
              needs an absurd ~16 mm^2 of logic-die area per unit;
* DRAM-tag  — tags stored with the data in DRAM: no SRAM cost, but
              every probe pays a DRAM access before hit/miss is known
              (the paper measures a 21% slowdown, 54% more energy).
"""

import repro
from repro.config import CacheStyle

from .common import DETAIL_WORKLOADS, cache_config, once, run

STYLES = (CacheStyle.TRAVELLER, CacheStyle.SRAM, CacheStyle.DRAM_TAG)


def test_fig13_cache_style_comparison(benchmark):
    configs = {s: cache_config(style=s) for s in STYLES}

    def simulate():
        out = {}
        for w in DETAIL_WORKLOADS:
            out[w] = {
                s: run("O", w, configs[s], config_key=(s.value,))
                for s in STYLES
            }
        return out

    res = once(benchmark, simulate)

    print("\nFigure 13a/b: speedup and DRAM energy vs the Traveller Cache")
    for w in DETAIL_WORKLOADS:
        trav = res[w][CacheStyle.TRAVELLER]
        line = f"{w:7}"
        for s in STYLES:
            r = res[w][s]
            dram_ratio = (r.energy.dram_pj / trav.energy.dram_pj
                          if trav.energy.dram_pj else 1.0)
            line += (f"  {s.value}: spd={r.speedup_over(trav):.2f}"
                     f"/dramE={dram_ratio:.2f}")
        print(line)

    # Area story (Section 7.2): the reason Traveller wins overall.
    system = repro.build_system("O")
    from repro.arch.sram import sram_area_mm2
    sram_data_area = sram_area_mm2(
        system.config.cache.cache_bytes(system.config.memory))
    tag_area = system.sram.tag_area_mm2()
    print(f"\nper-unit die area: SRAM data cache = {sram_data_area:.2f} mm^2"
          f"  vs  Traveller tags = {tag_area:.2f} mm^2")

    # --- shape assertions -------------------------------------------
    for w in DETAIL_WORKLOADS:
        trav = res[w][CacheStyle.TRAVELLER]
        sram = res[w][CacheStyle.SRAM]
        dtag = res[w][CacheStyle.DRAM_TAG]
        # SRAM caching is at least as fast as Traveller...
        assert sram.speedup_over(trav) >= 0.98, w
        # ...and uses less DRAM energy (no cache fills/reads in DRAM).
        assert sram.energy.dram_pj <= trav.energy.dram_pj, w
        # DRAM tags are never faster than SRAM tags.
        assert dtag.speedup_over(trav) <= 1.02, w
        # The tag probes show up as extra DRAM events.
        assert dtag.dram.tag_accesses_in_dram > 0, w
    # The area argument: the SRAM data array is orders of magnitude
    # bigger than Traveller's tag array (paper: 16.12 vs 0.32 mm^2).
    assert sram_data_area > 10.0
    assert tag_area < 1.0
