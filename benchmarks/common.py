"""Shared infrastructure for the per-figure benchmark modules.

Every module in ``benchmarks/`` regenerates one table or figure of the
paper: it runs the required (design, workload, config) simulations,
prints the same rows/series the paper plots, and sanity-checks the
qualitative *shape* (who wins, roughly by how much, where the trend
bends).  Absolute numbers are not expected to match the paper — the
substrate is a reduced-scale Python simulator, not the authors' zsim
testbed; see EXPERIMENTS.md for the per-figure comparison.

Simulations are memoized at two levels: per session (the overview
figures 6/7/8/9 share one run matrix instead of re-simulating) and on
disk through the content-addressed result cache in ``.repro_cache/``
(``repro.sweep``), so a re-run of the whole benchmark suite with
unchanged configs replays from the cache in seconds.  Set
``REPRO_NO_CACHE`` to force live simulations.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

import repro
from repro.analysis.metrics import RunResult
from repro.config import SystemConfig, experiment_config
from repro.sweep import cached_simulate
from repro.workloads.base import Workload

#: figure order used throughout the paper
DESIGNS = ("B", "Sm", "Sl", "Sh", "C", "O")
ALL_WORKLOADS = repro.ALL_WORKLOADS
DETAIL_WORKLOADS = repro.DETAIL_WORKLOADS

_run_cache: Dict[Tuple, RunResult] = {}
_workload_cache: Dict[str, Workload] = {}


def get_workload(name: str) -> Workload:
    """One shared workload instance per name (same dataset everywhere)."""
    if name not in _workload_cache:
        _workload_cache[name] = repro.make_workload(name)
    return _workload_cache[name]


def run(design: str, workload: str,
        config: Optional[SystemConfig] = None,
        config_key: Tuple = ()) -> RunResult:
    """Memoized simulation of one (design, workload, config) point.

    ``config_key`` only distinguishes the in-session memo entries; the
    on-disk cache keys on the full config content, so it needs no help.
    """
    key = (design, workload) + tuple(config_key)
    if key not in _run_cache:
        _run_cache[key] = cached_simulate(
            design, get_workload(workload), config
        )
    return _run_cache[key]


def run_all_designs(workload: str) -> Dict[str, RunResult]:
    """The default-config run matrix row for one workload."""
    return {d: run(d, workload) for d in DESIGNS}


def scheduler_config(**kwargs) -> SystemConfig:
    """experiment_config with scheduler fields overridden."""
    cfg = experiment_config()
    return cfg.with_(
        scheduler=dataclasses.replace(cfg.scheduler, **kwargs)
    ).validate()


def cache_config(**kwargs) -> SystemConfig:
    """experiment_config with Traveller Cache fields overridden."""
    cfg = experiment_config()
    return cfg.with_(
        cache=dataclasses.replace(cfg.cache, **kwargs)
    ).validate()


#: Per-unit memory used by the cache-pressure sweeps (Figures 11/14/15).
#: At the reproduction's dataset sizes, full 512 MB units leave even the
#: smallest cache fraction overprovisioned; scaling the memory puts the
#: cache/working-set ratio back in the paper's regime (EXPERIMENTS.md).
SCALED_UNIT_BYTES = 512 * 1024


def pressured_cache_config(**cache_overrides) -> SystemConfig:
    """experiment_config with scaled per-unit memory (cache-set
    pressure) and optional Traveller Cache overrides."""
    from repro.config import MemoryConfig

    cfg = experiment_config(
        memory=MemoryConfig(
            capacity_per_unit=SCALED_UNIT_BYTES, service_ns=0.0
        )
    )
    if cache_overrides:
        cfg = cfg.with_(
            cache=dataclasses.replace(cfg.cache, **cache_overrides)
        )
    return cfg.validate()


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The simulations are long (seconds); statistical repetition would
    multiply the suite's runtime for no insight.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
