"""Figure 15: impact of the Traveller Cache associativity (1..16-way).

Uses the same scaled per-unit memory as the capacity sweep (Figure 14)
so that sets actually conflict at this dataset scale.

Shape to reproduce: direct-mapped caches lose hops to conflicts; a
4-way configuration is "sufficiently good" (the paper's default), with
little further gain at 8/16 ways.
"""

from .common import DETAIL_WORKLOADS, once, pressured_cache_config, run

WAYS = (1, 2, 4, 8, 16)


def _config(ways: int):
    return pressured_cache_config(associativity=ways)


def test_fig15_associativity(benchmark):
    configs = {a: _config(a) for a in WAYS}

    def simulate():
        out = {}
        for w in DETAIL_WORKLOADS:
            out[w] = {
                a: run("O", w, configs[a], config_key=(f"assoc{a}",))
                for a in WAYS
            }
        return out

    res = once(benchmark, simulate)

    print("\nFigure 15: hops vs associativity (normalized to 1-way)")
    print("workload " + "".join(f"{a:>7}w" for a in WAYS))
    for w in DETAIL_WORKLOADS:
        denom = res[w][WAYS[0]].inter_hops or 1
        print(f"{w:8} " + "".join(
            f"{res[w][a].inter_hops / denom:8.3f}" for a in WAYS))

    # --- shape assertions -------------------------------------------
    for w in ("pr", "knn"):
        one = res[w][1]
        four = res[w][4]
        sixteen = res[w][16]
        # Higher associativity never hurts the hit rate meaningfully.
        assert four.cache.hit_rate >= one.cache.hit_rate - 0.02, w
        # 4-way captures almost all of the benefit of 16-way
        # ("a 4-way configuration is sufficiently good").
        assert four.inter_hops <= sixteen.inter_hops * 1.05, w
