"""Figure 10: scalability with 2x2, 4x4 and 8x8 stack meshes (Page Rank).

The dataset grows with the machine (constant vertices per NDP unit),
as in weak-scaling studies.  The camp-group count stays at C+1 = 4
(Section 4.3: the tag size per unit is then scale-invariant).

Shape to reproduce: the baseline's load imbalance worsens and remote
accesses get more expensive as the machine grows, so ABNDP's advantage
over B widens with scale.
"""

import repro
from repro.config import experiment_config
from repro.workloads.pagerank import PageRankWorkload

from .common import once

MESHES = ((2, 2), (4, 4), (8, 8))
VERTICES_PER_UNIT = 16
DESIGNS = ("B", "Sl", "O")


def test_fig10_scalability(benchmark):
    def simulate():
        out = {}
        for rows, cols in MESHES:
            cfg = experiment_config().scaled(rows, cols)
            n = VERTICES_PER_UNIT * cfg.num_units
            wl = PageRankWorkload(num_vertices=n, iterations=3)
            out[(rows, cols)] = {
                d: repro.simulate(d, wl, cfg) for d in DESIGNS
            }
        return out

    res = once(benchmark, simulate)

    print("\nFigure 10a: speedup over B at each scale")
    print("mesh     " + "".join(f"{d:>7}" for d in DESIGNS))
    gaps = {}
    for mesh in MESHES:
        base = res[mesh]["B"]
        line = f"{mesh[0]}x{mesh[1]:<6} "
        for d in DESIGNS:
            line += f"{res[mesh][d].speedup_over(base):7.2f}"
        gaps[mesh] = res[mesh]["O"].speedup_over(base)
        print(line)

    print("Figure 10b: energy normalized to B at each scale")
    for mesh in MESHES:
        base = res[mesh]["B"]
        print(f"{mesh[0]}x{mesh[1]:<6} " + "".join(
            f"{res[mesh][d].energy_ratio_over(base):7.2f}"
            for d in DESIGNS))

    print("baseline imbalance by scale: " + " ".join(
        f"{m[0]}x{m[1]}:{res[m]['B'].load_imbalance():.1f}" for m in MESHES))

    # --- shape assertions -------------------------------------------
    # The baseline's load imbalance grows with the machine.
    assert (res[(8, 8)]["B"].load_imbalance()
            > res[(2, 2)]["B"].load_imbalance())
    # ABNDP keeps a real advantage at every scale, and it does not
    # shrink from the default mesh to the large one.  (The paper's gap
    # widens monotonically; at reduced dataset sizes ours is roughly
    # flat — see EXPERIMENTS.md.)
    assert all(gaps[m] > 1.05 for m in MESHES)
    assert gaps[(8, 8)] >= gaps[(4, 4)] * 0.95
    # Tag storage is scale-invariant at constant C (Section 4.3).
    small = repro.build_system("O", experiment_config().scaled(2, 2))
    big = repro.build_system("O", experiment_config().scaled(8, 8))
    assert (small.camp_mapper.tag_storage_bytes()
            == big.camp_mapper.tag_storage_bytes())
