"""Figure 9: workload distribution across all NDP cores.

The paper plots, per design, the active cycles of every core sorted in
ascending order.  We print a compact summary of each curve (selected
percentiles of the sorted curve, normalized to B's mean) and assert
the balance ordering.

Shape to reproduce: B/Sm/C curves end in a steep tail (hotspots); Sl
and the hybrid designs are much flatter; on knn the no-balance designs
have extreme tails.
"""

import numpy as np

from .common import DETAIL_WORKLOADS, DESIGNS, once, run_all_designs

_PERCENTILES = (0, 25, 50, 75, 100)


def test_fig09_active_cycle_distribution(benchmark):
    def simulate():
        return {w: run_all_designs(w) for w in DETAIL_WORKLOADS}

    rows = once(benchmark, simulate)

    print("\nFigure 9: sorted per-core active cycles (normalized to "
          "B's mean core)")
    for w in DETAIL_WORKLOADS:
        norm = rows[w]["B"].active_cycles_per_core.mean() or 1.0
        print(f"{w}:  (percentiles {_PERCENTILES})")
        for d in DESIGNS:
            curve = rows[w][d].sorted_active_cycles() / norm
            pts = [curve[int(p / 100 * (len(curve) - 1))]
                   for p in _PERCENTILES]
            print(f"  {d:3} " + " ".join(f"{v:6.2f}" for v in pts)
                  + f"   imbalance={rows[w][d].load_imbalance():5.2f}")

    # --- shape assertions -------------------------------------------
    for w in ("pr", "knn", "spmv"):
        r = rows[w]
        # The hybrid flattens the distribution relative to the
        # no-balance designs.
        assert r["O"].load_imbalance() < r["Sm"].load_imbalance(), w
        assert r["O"].load_imbalance() < r["C"].load_imbalance(), w
        assert r["Sh"].load_imbalance() < r["Sm"].load_imbalance(), w
        # Work stealing also balances (the paper: O's balance is
        # "close to the dynamic work-stealing Sl design").
        assert r["Sl"].load_imbalance() < r["Sm"].load_imbalance(), w

    # knn: the most extreme tails for the no-balance designs.
    knn = rows["knn"]
    assert knn["Sm"].load_imbalance() > 2 * knn["O"].load_imbalance()
