"""Figure 14: impact of the Traveller Cache capacity (1/512 .. 1/16).

Capacity pressure only exists when the cache is small relative to the
cached working set.  The paper's 512 MB units see pressure at its
full-size datasets; this reproduction's datasets are ~1000x smaller, so
the sweep scales the per-unit memory down by the same factor (512 kB)
to land the cache/working-set ratio in the same regime — otherwise
even 1/512 of the memory would hold every line and the sweep would be
flat (see EXPERIMENTS.md).

Shape to reproduce: larger caches keep more data and cut more remote
hops, with diminishing returns once the hot set fits.
"""

from .common import DETAIL_WORKLOADS, once, pressured_cache_config, run

RATIOS = (512, 256, 128, 64, 32, 16)


def _config(ratio: int):
    return pressured_cache_config(capacity_ratio=ratio)


def test_fig14_cache_capacity(benchmark):
    configs = {r: _config(r) for r in RATIOS}

    def simulate():
        out = {}
        for w in DETAIL_WORKLOADS:
            out[w] = {
                r: run("O", w, configs[r], config_key=(f"cap{r}",))
                for r in RATIOS
            }
        return out

    res = once(benchmark, simulate)

    print("\nFigure 14: hops vs cache capacity (normalized to 1/512)")
    print("workload " + "".join(f"{'1/' + str(r):>8}" for r in RATIOS))
    for w in DETAIL_WORKLOADS:
        denom = res[w][RATIOS[0]].inter_hops or 1
        print(f"{w:8} " + "".join(
            f"{res[w][r].inter_hops / denom:8.3f}" for r in RATIOS))
    print("hit rates (pr): " + " ".join(
        f"1/{r}:{res['pr'][r].cache.hit_rate:.2f}" for r in RATIOS))

    # --- shape assertions -------------------------------------------
    for w in ("pr", "knn", "spmv"):
        small = res[w][512]   # 1/512 of memory
        large = res[w][16]    # 1/16 of memory
        # A much larger cache never has more remote hops...
        assert large.inter_hops <= small.inter_hops * 1.02, w
        # ...and achieves a better hit rate.
        assert large.cache.hit_rate >= small.cache.hit_rate - 0.02, w
    # Somewhere in the sweep capacity actually matters.
    assert any(
        res[w][16].inter_hops < 0.97 * res[w][512].inter_hops
        for w in DETAIL_WORKLOADS
    )
