"""Figure 11: skewed vs identical camp-location mappings.

The skewed mapping's benefit is *conflict avoidance*: when two hot
lines collide in one group's cache sets, a different per-group hash
usually separates them in the other groups.  That mechanism only has
something to save when cache sets are actually contended, so this
sweep runs under the same scaled per-unit memory as the capacity sweep
(Figure 14) — at this reproduction's reduced dataset sizes the default
8 MB cache regions are so overprovisioned that conflicts never occur
and the two mappings tie (see EXPERIMENTS.md).

Shape to reproduce: under set pressure, the skewed mapping evicts less
and never loses to the identical mapping; the paper measures a 12%
average hop saving at its full-scale working sets.
"""

from repro.config import CampMapping

from .common import DETAIL_WORKLOADS, once, pressured_cache_config, run

_RATIO = 256  # 2 kB cache region per unit: real set pressure


def _config(mapping: CampMapping):
    return pressured_cache_config(camp_mapping=mapping,
                                  capacity_ratio=_RATIO)


def test_fig11_skewed_vs_identical(benchmark):
    skewed_cfg = _config(CampMapping.SKEWED)
    identical_cfg = _config(CampMapping.IDENTICAL)

    def simulate():
        out = {}
        for w in DETAIL_WORKLOADS:
            out[w] = (
                run("C", w, skewed_cfg, config_key=("skewed-press",)),
                run("C", w, identical_cfg, config_key=("identical-press",)),
            )
        return out

    res = once(benchmark, simulate)

    print("\nFigure 11: hops with skewed mapping, normalized to identical "
          "(under cache-set pressure)")
    ratios = []
    for w in DETAIL_WORKLOADS:
        skewed, identical = res[w]
        denom = identical.inter_hops or 1
        ratio = skewed.inter_hops / denom
        ratios.append(ratio)
        print(f"  {w:7} ratio={ratio:.3f}  "
              f"evictions: skewed={skewed.cache.evictions:7,} "
              f"identical={identical.cache.evictions:7,}  "
              f"hit: {skewed.cache.hit_rate:.2f} vs "
              f"{identical.cache.hit_rate:.2f}")
    mean_ratio = sum(ratios) / len(ratios)
    print(f"  mean ratio: {mean_ratio:.3f} "
          f"(paper at full-scale working sets: ~0.88)")

    # --- shape assertions -------------------------------------------
    # On average, skewing does not lose under conflict pressure.
    assert mean_ratio <= 1.02
    # The workload with the hardest set contention (knn's tree+points
    # footprint) shows the paper's saving directly.
    knn_skewed, knn_identical = res["knn"]
    assert knn_skewed.inter_hops < knn_identical.inter_hops
    assert knn_skewed.cache.evictions <= knn_identical.cache.evictions
