"""Table 2: the evaluated system designs.

Checks that each design point wires the scheduling policy and cache the
paper's matrix specifies, and that the machines actually assemble.
"""

import repro
from repro.config import CacheStyle, SchedulingPolicy
from repro.core.scheduler.colocate import ColocateScheduler
from repro.core.scheduler.hybrid import HybridScheduler
from repro.core.scheduler.lowest_distance import LowestDistanceScheduler
from repro.core.scheduler.work_stealing import WorkStealingScheduler

from .common import once

EXPECTED = {
    "B": (SchedulingPolicy.COLOCATE, CacheStyle.NONE, ColocateScheduler),
    "Sm": (SchedulingPolicy.LOWEST_DISTANCE, CacheStyle.NONE,
           LowestDistanceScheduler),
    "Sl": (SchedulingPolicy.WORK_STEALING, CacheStyle.NONE,
           WorkStealingScheduler),
    "Sh": (SchedulingPolicy.HYBRID, CacheStyle.NONE, HybridScheduler),
    "C": (SchedulingPolicy.LOWEST_DISTANCE, CacheStyle.TRAVELLER,
          LowestDistanceScheduler),
    "O": (SchedulingPolicy.HYBRID, CacheStyle.TRAVELLER, HybridScheduler),
}


def test_tab02_design_matrix(benchmark):
    def build_all():
        systems = {}
        print()
        for name, point in repro.DESIGN_POINTS.items():
            system = repro.build_system(name)
            systems[name] = system
            print(f"{name:3} {point.policy.value:16} "
                  f"cache={point.cache.value:10} {point.description}")
        return systems

    systems = once(benchmark, build_all)

    for name, (policy, cache, sched_cls) in EXPECTED.items():
        point = repro.DESIGN_POINTS[name]
        assert point.policy is policy
        assert point.cache is cache
        system = systems[name]
        assert isinstance(system.scheduler, sched_cls), name
        has_cache = any(c is not None for c in system.memory_system.caches)
        assert has_cache == (cache is CacheStyle.TRAVELLER), name

    # O exploits the camps in its cost model; Sh cannot (no cache).
    assert systems["O"].scheduler.use_camps
    assert not systems["Sh"].scheduler.use_camps
    # Sl is Sm's placement plus run-time stealing.
    assert isinstance(systems["Sl"].scheduler, LowestDistanceScheduler)
    assert systems["Sl"].scheduler.uses_work_stealing
