"""Figure 12: impact of the camp-location count C.

Sweeps C over {1, 3, 7, 15} (so the units divide into C+1 groups) on
design O and reports DRAM vs interconnect energy, normalized to C=1.

Shape to reproduce: more camps cache more data and trim interconnect
energy, but add DRAM cache insertions; the combined effect is small,
and C=3 is a good middle point (the paper's default).
"""

from .common import DETAIL_WORKLOADS, cache_config, once, run

CAMPS = (1, 3, 7, 15)


def test_fig12_camp_location_count(benchmark):
    configs = {c: cache_config(num_camps=c) for c in CAMPS}

    def simulate():
        out = {}
        for w in DETAIL_WORKLOADS:
            out[w] = {
                c: run("O", w, configs[c], config_key=(f"camps{c}",))
                for c in CAMPS
            }
        return out

    res = once(benchmark, simulate)

    print("\nFigure 12: DRAM + interconnect energy vs camp count "
          "(normalized to C=1)")
    for w in DETAIL_WORKLOADS:
        base = res[w][CAMPS[0]].energy
        denom = (base.dram_pj + base.interconnect_pj) or 1.0
        print(f"{w}:")
        for c in CAMPS:
            e = res[w][c].energy
            print(f"  C={c:<3} dram={e.dram_pj / denom:.3f} "
                  f"noc={e.interconnect_pj / denom:.3f} "
                  f"sum={(e.dram_pj + e.interconnect_pj) / denom:.3f}")

    # --- shape assertions -------------------------------------------
    for w in ("pr", "knn", "spmv"):
        base = res[w][CAMPS[0]].energy
        denom = (base.dram_pj + base.interconnect_pj) or 1.0
        sums = {
            c: (res[w][c].energy.dram_pj
                + res[w][c].energy.interconnect_pj) / denom
            for c in CAMPS
        }
        # The combined effect is minor through the paper's default and
        # beyond: C in {1, 3, 7} stays within ~25% of C=1.  At C=15
        # the per-camp reuse of our reduced datasets drops low enough
        # that fill overheads start to show (a scale effect; the paper
        # still sees small differences there).
        assert all(0.6 < sums[c] < 1.25 for c in (1, 3, 7)), (w, sums)
        assert sums[15] < 1.5, (w, sums)
    # More camps means more insertions, hence more DRAM events.
    for w in ("pr", "knn"):
        assert (res[w][15].dram.cache_fills
                >= res[w][1].dram.cache_fills), w
