"""Figure 16: impact of the probabilistic-insertion bypass probability.

Sweeps the bypass probability over 0 .. 0.8 on design O and reports the
DRAM and interconnect energy split.

Shape to reproduce: more bypassing avoids cache-fill writes (less DRAM
energy) but misses more reuse (slightly more interconnect hops); the
design is overall insensitive, and 40% is a reasonable balance — which
is exactly why the paper picks it.
"""

from .common import DETAIL_WORKLOADS, cache_config, once, run

BYPASS = (0.0, 0.2, 0.4, 0.6, 0.8)


def test_fig16_bypass_probability(benchmark):
    configs = {b: cache_config(bypass_probability=b) for b in BYPASS}

    def simulate():
        out = {}
        for w in DETAIL_WORKLOADS:
            out[w] = {
                b: run("O", w, configs[b], config_key=(f"bypass{b}",))
                for b in BYPASS
            }
        return out

    res = once(benchmark, simulate)

    print("\nFigure 16: DRAM / interconnect energy vs bypass probability "
          "(normalized to bypass=0)")
    for w in DETAIL_WORKLOADS:
        base = res[w][0.0].energy
        denom = (base.dram_pj + base.interconnect_pj) or 1.0
        print(f"{w}:")
        for b in BYPASS:
            e = res[w][b].energy
            fills = res[w][b].dram.cache_fills
            print(f"  p={b:.1f} dram={e.dram_pj / denom:.3f} "
                  f"noc={e.interconnect_pj / denom:.3f} fills={fills:,}")

    # --- shape assertions -------------------------------------------
    for w in ("pr", "knn", "spmv"):
        # More bypassing -> fewer cache-fill writes.
        assert (res[w][0.8].dram.cache_fills
                < res[w][0.0].dram.cache_fills), w
        # The design is insensitive overall: total energy varies little
        # across the whole sweep.
        base = res[w][0.0].total_energy_pj
        for b in BYPASS:
            assert abs(res[w][b].total_energy_pj / base - 1.0) < 0.15, (w, b)
