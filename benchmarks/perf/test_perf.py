"""Cross-engine perf smoke (the gate CI's bench job applies).

One small seeded point under both access engines: the RunResults must
be bit-identical and the batched engine must not be slower.  Full
matrix timing goes through ``python -m repro bench`` (see README.md);
this test keeps the gate runnable as plain pytest.
"""

from __future__ import annotations

import json
import time

from repro.bench import bench_points, engine_config
from repro.config import experiment_config
from repro.simulate import simulate
from repro.sweep.serialize import result_to_dict
from repro.workloads.base import make_workload


def test_engines_identical_and_batched_not_slower():
    base = experiment_config().scaled(2, 2)
    workload = make_workload("pr")
    best = {}
    payloads = {}
    for engine in ("scalar", "batched"):
        cfg = engine_config(engine, base)
        simulate("O", workload, config=cfg)  # warmup
        best[engine] = float("inf")
        for _ in range(3):
            t0 = time.process_time()
            result = simulate("O", workload, config=cfg)
            best[engine] = min(best[engine], time.process_time() - t0)
        payloads[engine] = json.dumps(result_to_dict(result),
                                      sort_keys=True)
    assert payloads["scalar"] == payloads["batched"]
    assert best["batched"] <= best["scalar"], (
        f"batched engine slower: {best['batched']:.2f}s vs "
        f"{best['scalar']:.2f}s scalar"
    )


def test_bench_points_payload_shape():
    payload = bench_points(
        "batched", ["B"], ["pr"],
        config=experiment_config().scaled(2, 2), repeats=1,
    )
    assert payload["engine"] == "batched"
    (point,) = payload["points"]
    assert point["design"] == "B" and point["workload"] == "pr"
    assert point["wall_s"] > 0 and point["tasks"] > 0
    assert point["accesses"] > point["tasks"]  # many lines per task
    assert payload["totals"]["tasks_per_s"] > 0
